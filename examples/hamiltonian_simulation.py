"""Compile 2-local Hamiltonian simulation kernels (Table 3 workloads).

The NNN 1D-Ising, 2D-XY and 3D-Heisenberg interaction graphs (64 spins
each) are compiled onto a 64-qubit heavy-hex device with our compiler and
the 2QAN-like baseline.

Run:  python examples/hamiltonian_simulation.py
"""

from repro.analysis import format_table, reduction
from repro.arch import heavyhex_for
from repro.baselines import compile_twoqan
from repro.compiler import compile_qaoa
from repro.problems import hamiltonian_benchmarks


def main() -> None:
    rows = []
    for problem in hamiltonian_benchmarks():
        coupling = heavyhex_for(problem.n_vertices)
        ours = compile_qaoa(coupling, problem, method="hybrid")
        ours.validate(coupling, problem)
        twoqan = compile_twoqan(coupling, problem)
        twoqan.validate(coupling, problem)
        rows.append([
            problem.name,
            ours.depth(), twoqan.depth(),
            f"{reduction(ours.depth(), twoqan.depth()):+.0%}",
            ours.gate_count, twoqan.gate_count,
            f"{reduction(ours.gate_count, twoqan.gate_count):+.0%}",
        ])
    print(format_table(
        ["model", "ours depth", "2qan depth", "d-red",
         "ours CX", "2qan CX", "cx-red"],
        rows,
        title="2-local Hamiltonian simulation on 64-qubit heavy-hex "
              "(Table 3 workloads)"))


if __name__ == "__main__":
    main()
