"""Factor III end-to-end: variability-aware compilation under two noise models.

Part 1 — on a *mildly* varying calibration, compact placement wins: the
extra routing that quality-chasing costs outweighs per-gate error gains.

Part 2 — on a *damaged* device (a patch of terrible links and readout,
as after a bad calibration cycle), the noise-aware pipeline routes around
the patch and wins in ESP and TVD.

Both the ESP-depolarizing substitute and the Pauli-trajectory model are
reported; they must point the same way.

Run:  python examples/noise_study.py
"""

from repro.analysis import format_table
from repro.arch import NoiseModel, mumbai
from repro.compiler import compile_qaoa
from repro.problems import QaoaProblem, random_problem_graph
from repro.sim import QaoaRunner, tvd
from repro.sim.trajectories import trajectory_probabilities


def damaged_calibration(coupling, seed: int = 6) -> NoiseModel:
    """A device whose central region went bad (where compact placement
    would naturally live)."""
    noise = NoiseModel(coupling, seed=seed)
    bad_patch = {10, 12, 13, 14, 15}
    for (u, v) in coupling.edges:
        if u in bad_patch or v in bad_patch:
            noise.cx_error[(u, v)] = 0.08
    for q in bad_patch:
        noise.readout_error[q] = 0.12
    return noise


def compare(problem, coupling, noise, title) -> None:
    blind = compile_qaoa(coupling, problem.graph, method="hybrid")
    aware = compile_qaoa(coupling, problem.graph, method="hybrid",
                         noise=noise, placement="noise")
    rows = []
    for name, compiled in (("noise-blind", blind), ("noise-aware", aware)):
        compiled.validate(coupling, problem.graph)
        runner = QaoaRunner(problem, compiled, noise=noise, seed=3,
                            include_readout=True)
        ideal = runner.ideal_probabilities(0.5, 0.4)
        esp_noisy = runner.noisy_probabilities(0.5, 0.4)
        traj = trajectory_probabilities(compiled, problem, 0.5, 0.4,
                                        noise, n_trajectories=150, seed=4)
        rows.append([name, compiled.depth(), compiled.gate_count,
                     noise.esp(compiled.circuit),
                     tvd(esp_noisy, ideal), tvd(traj, ideal)])
    print(format_table(
        ["compilation", "depth", "CX", "ESP", "TVD (ESP)", "TVD (traj)"],
        rows, title=title))
    print()


def main() -> None:
    problem = QaoaProblem(random_problem_graph(10, 0.35, seed=9))
    coupling = mumbai()
    compare(problem, coupling, NoiseModel(coupling, seed=6),
            "1. Mild calibration: compact (noise-blind) placement wins")
    compare(problem, coupling, damaged_calibration(coupling),
            "2. Damaged central patch: noise-aware routes around it")
    print("Takeaway: quality-aware placement is a hedge against bad")
    print("regions, not a free win — which is why the paper folds noise")
    print("into the greedy component rather than the rigid pattern.")


if __name__ == "__main__":
    main()
