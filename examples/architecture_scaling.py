"""Clique compilation across architectures: the linear-depth guarantee.

Compiles full cliques (the paper's Definition 1 special case) of growing
size on each regular architecture and reports depth per qubit — flat
curves demonstrate the worst-case linear bound of Section 3.

Run:  python examples/architecture_scaling.py
"""

from repro.analysis import format_table
from repro.arch import grid, heavyhex, hexagon, line, sycamore
from repro.ata import compile_with_pattern, get_pattern
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import clique


INSTANCES = {
    "line": [line(8), line(16), line(24)],
    "grid": [grid(3, 3), grid(4, 4), grid(5, 5)],
    "sycamore": [sycamore(3, 3), sycamore(4, 4), sycamore(5, 5)],
    "hexagon": [hexagon(4, 2), hexagon(4, 4), hexagon(6, 4)],
    "heavyhex": [heavyhex(2, 6), heavyhex(3, 6), heavyhex(3, 10)],
}


def main() -> None:
    rows = []
    for family, instances in INSTANCES.items():
        for coupling in instances:
            n = coupling.n_qubits
            problem = clique(n)
            mapping = Mapping.trivial(n)
            circuit, _ = compile_with_pattern(
                coupling, get_pattern(coupling), problem.edges, mapping)
            validate_compiled(circuit, coupling.edges, mapping,
                              problem.edges)
            rows.append([family, coupling.name, n, circuit.depth(),
                         circuit.depth() / n,
                         circuit.cx_count(unify=True)])
    print(format_table(
        ["family", "device", "qubits", "depth", "depth/qubit", "CX"],
        rows,
        title="All-to-all (clique) compilation: depth stays linear"))


if __name__ == "__main__":
    main()
