"""End-to-end QAOA on a noisy Mumbai-like device (Figs 24/25 pipeline).

Compiles a 10-qubit random MaxCut instance with our compiler and the
2QAN-like baseline, then runs the full variational loop (COBYLA, 8000
shots per round) on the depolarizing noise substitute.  The compiler that
produces fewer CX retains more signal and converges to a lower energy.

Run:  python examples/qaoa_maxcut_end_to_end.py
"""

from repro.arch import NoiseModel, mumbai
from repro.baselines import compile_twoqan
from repro.compiler import compile_qaoa
from repro.problems import QaoaProblem, random_problem_graph
from repro.sim import QaoaRunner


def main() -> None:
    problem = QaoaProblem(random_problem_graph(10, 0.3, seed=7))
    coupling = mumbai()
    noise = NoiseModel(coupling, seed=3)
    print(f"problem: {problem.graph}, optimum cut = "
          f"{problem.max_cut_brute_force()}")

    runs = {}
    for name, compiled in (
        ("ours", compile_qaoa(coupling, problem.graph, method="hybrid",
                              noise=noise)),
        ("2qan", compile_twoqan(coupling, problem.graph)),
    ):
        compiled.validate(coupling, problem.graph)
        runner = QaoaRunner(problem, compiled, noise=noise, shots=8000,
                            seed=11)
        result = runner.optimize(max_rounds=30)
        runs[name] = result
        print(f"\n{name}: depth={compiled.depth()} cx={compiled.gate_count} "
              f"ESP={result.esp:.3f}")
        trace = result.best_so_far()
        for round_index in range(0, len(trace), 5):
            print(f"  round {round_index:2d}: best energy "
                  f"{trace[round_index]: .3f}")
        print(f"  final best energy {result.best_energy: .3f} "
              f"(ideal optimum {-problem.max_cut_brute_force():.0f})")

    better = min(runs, key=lambda k: runs[k].best_energy)
    print(f"\nLower (better) converged energy: {better}")


if __name__ == "__main__":
    main()
