"""Extensions beyond the paper's evaluation.

1. The Fig 13 generalisation made concrete: clique compilation on a 3D
   cubic lattice via plane-level unit transposition (linear depth).
2. Depth-2 QAOA on the noisy device substitute: the compiled cost block
   is reused per layer; deeper circuits trade expressivity against noise.

Run:  python examples/beyond_the_paper.py
"""

from repro.analysis import format_table
from repro.arch import NoiseModel, cube, mumbai
from repro.ata import compile_with_pattern, get_pattern
from repro.compiler import compile_qaoa
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import QaoaProblem, clique, random_problem_graph
from repro.sim import QaoaRunner


def three_dimensional_lattice() -> None:
    print("1. Clique compilation on 3D cubic lattices (Fig 13):\n")
    rows = []
    for dims in [(2, 2, 2), (3, 3, 2), (3, 3, 3), (4, 3, 3)]:
        coupling = cube(*dims)
        n = coupling.n_qubits
        mapping = Mapping.trivial(n)
        circuit, _ = compile_with_pattern(
            coupling, get_pattern(coupling), clique(n).edges, mapping)
        validate_compiled(circuit, coupling.edges, mapping, clique(n).edges)
        rows.append([coupling.name, n, circuit.depth(),
                     circuit.depth() / n, circuit.cx_count()])
    print(format_table(["lattice", "qubits", "depth", "depth/qubit", "CX"],
                       rows))


def deeper_qaoa() -> None:
    print("\n2. Depth-1 vs depth-2 QAOA on the noisy Mumbai substitute:\n")
    problem = QaoaProblem(random_problem_graph(10, 0.3, seed=7))
    coupling = mumbai()
    noise = NoiseModel(coupling, seed=3)
    compiled = compile_qaoa(coupling, problem.graph, method="hybrid",
                            noise=noise)
    compiled.validate(coupling, problem.graph)
    rows = []
    for p in (1, 2):
        runner = QaoaRunner(problem, compiled, noise=noise, shots=8000,
                            seed=11, p=p)
        result = runner.optimize(max_rounds=25)
        rows.append([p, runner.esp, result.best_energy,
                     -problem.max_cut_brute_force()])
    print(format_table(["p", "ESP", "best energy", "ideal optimum"], rows))
    print("\nDeeper QAOA improves the noise-free ansatz but squares the")
    print("ESP — on noisy hardware the optimum p is finite, which is why")
    print("cutting CX count (the paper's contribution) buys ansatz depth.")


if __name__ == "__main__":
    three_dimensional_lattice()
    deeper_qaoa()
