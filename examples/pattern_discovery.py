"""Rediscover the structured patterns with the depth-optimal solver.

This replays the paper's methodology (Section 3): run the A* solver on a
small clique / bi-clique instance and compare its optimal depth with the
generalised structured pattern on the same instance.

Run:  python examples/pattern_discovery.py
"""

from repro.arch import grid, line
from repro.ata import BipartitePattern, LinePattern, execute_pattern
from repro.ir.mapping import Mapping
from repro.problems import clique
from repro.solver import solve_depth_optimal


def line_instance(n: int) -> None:
    problem = clique(n)
    result = solve_depth_optimal(line(n), sorted(problem.edges))
    pattern_circuit, _, _ = execute_pattern(
        LinePattern(list(range(n))), Mapping.trivial(n), problem.edges)
    print(f"1x{n} line, clique-{n}: optimal depth {result.depth} "
          f"({result.nodes_expanded} nodes expanded), "
          f"generalised pattern depth {pattern_circuit.depth()}")


def bipartite_instance(n: int) -> None:
    rows_a = list(range(n))
    rows_b = list(range(n, 2 * n))
    edges = [(a, b) for a in rows_a for b in rows_b]
    result = solve_depth_optimal(grid(2, n), edges)
    pattern_circuit, _, _ = execute_pattern(
        BipartitePattern(rows_a, rows_b), Mapping.trivial(2 * n), edges)
    print(f"2x{n} grid, bi-clique: optimal depth {result.depth} "
          f"({result.nodes_expanded} nodes expanded), "
          f"2xUnit pattern depth {pattern_circuit.depth()}")


def main() -> None:
    print("Replaying the paper's pattern discovery (Section 3):\n")
    for n in (3, 4, 5):
        line_instance(n)
    print()
    for n in (2, 3):
        bipartite_instance(n)
    print("\nThe structured patterns match the solver's optimum on their")
    print("home instances and generalise to any size with linear depth.")


if __name__ == "__main__":
    main()
