"""Quickstart: compile a QAOA-MaxCut circuit onto IBM heavy-hex.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table, result_metrics
from repro.arch import NoiseModel, heavyhex_for
from repro.compiler import compile_qaoa
from repro.problems import random_problem_graph


def main() -> None:
    # A 32-vertex random MaxCut instance at density 0.3 (Section 7.1 style).
    problem = random_problem_graph(32, 0.3, seed=42)
    coupling = heavyhex_for(problem.n_vertices)
    noise = NoiseModel(coupling, seed=1)
    print(f"problem: {problem}")
    print(f"device:  {coupling}\n")

    rows = []
    for method in ("greedy", "ata", "hybrid"):
        result = compile_qaoa(coupling, problem, method=method, noise=noise)
        result.validate(coupling, problem)  # raises if anything is off
        m = result_metrics(result, noise)
        rows.append([method, m["depth"], m["cx"], m["swaps"],
                     m["esp"], m["time_s"]])

    print(format_table(
        ["method", "depth", "CX", "SWAPs", "ESP", "compile s"], rows,
        title="greedy vs rigid-ATA vs hybrid (the paper's 'ours')"))
    print("\nThe hybrid circuit is never worse than the structured (ATA)")
    print("solution — Theorem 6.1 — and usually beats both components.")


if __name__ == "__main__":
    main()
