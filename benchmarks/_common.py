"""Shared infrastructure for the per-table/per-figure benchmarks.

Scale control
-------------
By default every benchmark reproduces the *shape* of its paper table at
64-128 qubits (pure Python is ~100x slower than the authors' toolchain).
Set ``REPRO_FULL_SCALE=1`` to run the paper's full sizes (256 and 1024
qubits) — budget several hours.

Each benchmark prints its table (visible with ``pytest -s``) and also
writes it under ``benchmarks/results/`` so the numbers survive the run.
EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Sequence

from repro.analysis import format_table
from repro.arch import architecture_for
from repro.batch import BatchJob, compile_many, resolve_compiler
from repro.problems import (ProblemGraph, random_problem_graph,
                            regular_for_density)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seeds averaged per data point (the paper averages 10 random cases; two
#: keep the default run short while still smoothing variance).
SEEDS = (0, 1)

#: Benchmark column name -> batch-engine compiler method.  All compilation
#: now routes through :mod:`repro.batch`, so every point benefits from the
#: process-local distance-matrix/pattern caches and, with
#: ``REPRO_BATCH_WORKERS=N``, from process-pool fan-out.
COMPILER_METHODS: Dict[str, str] = {
    "ours": "hybrid",
    "greedy": "greedy",
    "solver": "ata",
    "qaim": "qaim",
    "paulihedral": "paulihedral",
    "2qan": "2qan",
    "olsq": "olsq",
    "satmap": "satmap",
}

#: Legacy-compatible callables (kept for ad-hoc use by benchmark files).
COMPILERS = {
    name: (lambda coupling, problem, noise=None, _m=method:
           resolve_compiler(_m)(coupling, problem, noise=noise))
    for name, method in COMPILER_METHODS.items()
}


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def batch_workers() -> int:
    """Worker processes for averaged points (``REPRO_BATCH_WORKERS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_BATCH_WORKERS", "1")))
    except ValueError:
        return 1


def benchmark_sizes() -> List[int]:
    return [64, 256, 1024] if full_scale() else [64, 128]


def problem_for(kind: str, n: int, density: float, seed: int) -> ProblemGraph:
    if kind == "rand":
        return random_problem_graph(n, density, seed=seed)
    if kind == "reg":
        return regular_for_density(n, density, seed=seed)
    raise ValueError(f"unknown problem kind {kind!r}")


def run_point(arch_kind: str, problem: ProblemGraph,
              compilers: Sequence[str],
              validate: bool = True) -> Dict[str, Dict[str, float]]:
    """Compile one concrete problem with several compilers (in-process;
    used by benchmarks that build non-random problem graphs)."""
    coupling = architecture_for(arch_kind, problem.n_vertices)
    out: Dict[str, Dict[str, float]] = {}
    for name in compilers:
        result = COMPILERS[name](coupling, problem)
        if validate:
            result.validate(coupling, problem)
        out[name] = {
            "depth": result.depth(),
            "cx": result.gate_count,
            "time_s": result.wall_time_s,
        }
    return out


def averaged_point(arch_kind: str, kind: str, n: int, density: float,
                   compilers: Sequence[str],
                   seeds: Sequence[int] = SEEDS) -> Dict[str, Dict[str, float]]:
    """Average metrics over several random instances (paper methodology).

    Runs through the batch engine: serial by default, fanned out over
    ``REPRO_BATCH_WORKERS`` processes when set.  A failed instance raises
    with the captured per-job error.
    """
    jobs = [
        BatchJob(arch=arch_kind, n_qubits=n, workload=kind, density=density,
                 seed=seed, method=COMPILER_METHODS[name])
        for name in compilers for seed in seeds]
    workers = batch_workers()
    report = compile_many(
        jobs, workers=workers,
        executor="process" if workers > 1 else "serial")
    if report.failures:
        failed = report.failures[0]
        raise RuntimeError(f"benchmark point failed — {failed.summary()}")
    totals: Dict[str, Dict[str, float]] = {}
    for name, result in zip(
            [n_ for n_ in compilers for _ in seeds], report.results):
        bucket = totals.setdefault(
            name, {"depth": 0.0, "cx": 0.0, "time_s": 0.0})
        bucket["depth"] += result.record["depth"]
        bucket["cx"] += result.record["cx"]
        bucket["time_s"] += result.record["wall_time_s"]
    for metrics in totals.values():
        for key in metrics:
            metrics[key] /= len(seeds)
    return totals


def emit(name: str, table: str) -> None:
    """Print a benchmark table and persist it under benchmarks/results/."""
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")


def table(name: str, title: str, headers: Sequence[str],
          rows: Sequence[Sequence[object]]) -> None:
    emit(name, format_table(headers, rows, title=title))
