"""Shared infrastructure for the per-table/per-figure benchmarks.

Scale control
-------------
By default every benchmark reproduces the *shape* of its paper table at
64-128 qubits (pure Python is ~100x slower than the authors' toolchain).
Set ``REPRO_FULL_SCALE=1`` to run the paper's full sizes (256 and 1024
qubits) — budget several hours.

Each benchmark prints its table (visible with ``pytest -s``) and also
writes it under ``benchmarks/results/`` so the numbers survive the run.
EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import os
import pathlib
from typing import Callable, Dict, List, Sequence

from repro.analysis import format_table
from repro.arch import NoiseModel, architecture_for
from repro.baselines import (compile_olsq, compile_paulihedral, compile_qaim,
                             compile_satmap, compile_twoqan)
from repro.compiler import compile_qaoa
from repro.problems import (ProblemGraph, random_problem_graph,
                            regular_for_density)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Seeds averaged per data point (the paper averages 10 random cases; two
#: keep the default run short while still smoothing variance).
SEEDS = (0, 1)


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def benchmark_sizes() -> List[int]:
    return [64, 256, 1024] if full_scale() else [64, 128]


def problem_for(kind: str, n: int, density: float, seed: int) -> ProblemGraph:
    if kind == "rand":
        return random_problem_graph(n, density, seed=seed)
    if kind == "reg":
        return regular_for_density(n, density, seed=seed)
    raise ValueError(f"unknown problem kind {kind!r}")


COMPILERS: Dict[str, Callable] = {
    "ours": lambda coupling, problem, noise=None:
        compile_qaoa(coupling, problem, method="hybrid", noise=noise),
    "greedy": lambda coupling, problem, noise=None:
        compile_qaoa(coupling, problem, method="greedy", noise=noise),
    "solver": lambda coupling, problem, noise=None:
        compile_qaoa(coupling, problem, method="ata"),
    "qaim": lambda coupling, problem, noise=None:
        compile_qaim(coupling, problem),
    "paulihedral": lambda coupling, problem, noise=None:
        compile_paulihedral(coupling, problem),
    "2qan": lambda coupling, problem, noise=None:
        compile_twoqan(coupling, problem),
    "olsq": lambda coupling, problem, noise=None:
        compile_olsq(coupling, problem),
    "satmap": lambda coupling, problem, noise=None:
        compile_satmap(coupling, problem),
}


def run_point(arch_kind: str, problem: ProblemGraph,
              compilers: Sequence[str],
              validate: bool = True) -> Dict[str, Dict[str, float]]:
    """Compile one problem with several compilers; return metric rows."""
    coupling = architecture_for(arch_kind, problem.n_vertices)
    out: Dict[str, Dict[str, float]] = {}
    for name in compilers:
        result = COMPILERS[name](coupling, problem)
        if validate:
            result.validate(coupling, problem)
        out[name] = {
            "depth": result.depth(),
            "cx": result.gate_count,
            "time_s": result.wall_time_s,
        }
    return out


def averaged_point(arch_kind: str, kind: str, n: int, density: float,
                   compilers: Sequence[str],
                   seeds: Sequence[int] = SEEDS) -> Dict[str, Dict[str, float]]:
    """Average metrics over several random instances (paper methodology)."""
    totals: Dict[str, Dict[str, float]] = {}
    for seed in seeds:
        problem = problem_for(kind, n, density, seed)
        point = run_point(arch_kind, problem, compilers)
        for name, metrics in point.items():
            bucket = totals.setdefault(
                name, {key: 0.0 for key in metrics})
            for key, value in metrics.items():
                bucket[key] += value
    for metrics in totals.values():
        for key in metrics:
            metrics[key] /= len(seeds)
    return totals


def emit(name: str, table: str) -> None:
    """Print a benchmark table and persist it under benchmarks/results/."""
    print("\n" + table + "\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")


def table(name: str, title: str, headers: Sequence[str],
          rows: Sequence[Sequence[object]]) -> None:
    emit(name, format_table(headers, rows, title=title))
