"""Benchmark harness: one module per paper table/figure (see DESIGN.md).

Run with ``pytest benchmarks/ --benchmark-only -s``; tables print to
stdout and persist under ``benchmarks/results/``.  ``REPRO_FULL_SCALE=1``
enables the paper's 256/1024-qubit rows.
"""
