"""Figures 24/25 and the Section 7.4 TVD study — end-to-end QAOA on the
noisy Mumbai-like device.

Paper: 10-qubit and 20-qubit random-0.3 MaxCut with COBYLA, 8000 shots per
round, comparing our compiled circuit against the 2QAN baseline.  Expected
shape: our circuit has higher ESP, lower TVD, and converges to a lower
(better) expected energy within the same number of rounds.

The 20-qubit run simulates a 2^20 statevector per round; it runs by
default but can be skipped with ``REPRO_SKIP_20Q=1`` on slow machines.
"""

import os

import pytest

from benchmarks._common import table
from repro.arch import NoiseModel, mumbai
from repro.baselines import compile_twoqan
from repro.compiler import compile_qaoa
from repro.problems import QaoaProblem, random_problem_graph
from repro.sim import QaoaRunner


def _run_size(n: int, rounds: int):
    problem = QaoaProblem(random_problem_graph(n, 0.3, seed=7))
    coupling = mumbai()
    noise = NoiseModel(coupling, seed=3)
    outcome = {}
    for name, compiled in (
        ("ours", compile_qaoa(coupling, problem.graph, method="hybrid",
                              noise=noise)),
        ("2qan", compile_twoqan(coupling, problem.graph)),
    ):
        compiled.validate(coupling, problem.graph)
        runner = QaoaRunner(problem, compiled, noise=noise, shots=8000,
                            seed=11)
        run = runner.optimize(max_rounds=rounds)
        outcome[name] = {
            "depth": compiled.depth(),
            "cx": compiled.gate_count,
            "esp": runner.esp,
            "tvd": runner.tvd_vs_ideal(0.5, 0.4),
            "best_energy": run.best_energy,
            "trace": run.best_so_far(),
        }
    return outcome


def _compute():
    rows = []
    sizes = [10]
    if os.environ.get("REPRO_SKIP_20Q", "") in ("", "0"):
        sizes.append(20)
    ok = True
    for n in sizes:
        rounds = 30 if n == 10 else 25
        outcome = _run_size(n, rounds)
        for name in ("ours", "2qan"):
            o = outcome[name]
            rows.append([f"{n}-0.3", name, o["depth"], o["cx"],
                         o["esp"], o["tvd"], o["best_energy"]])
        ok &= outcome["ours"]["tvd"] <= outcome["2qan"]["tvd"] + 0.02
        ok &= (outcome["ours"]["best_energy"]
               <= outcome["2qan"]["best_energy"] + 0.25)
    table("fig24_25_real_machine",
          "Figs 24/25 + §7.4: end-to-end QAOA on noisy Mumbai substitute",
          ["graph", "compiler", "depth", "CX", "ESP", "TVD",
           "best energy"],
          rows)
    assert ok, "our circuit should retain more signal than the baseline"


@pytest.mark.benchmark(group="fig24-25")
def test_fig24_25_qaoa_convergence(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
