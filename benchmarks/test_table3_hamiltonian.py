"""Table 3 — 2-local Hamiltonian simulation vs 2QAN on 64-qubit heavy-hex.

Paper: NNN 1D-Ising / 2D-XY / 3D-Heisenberg, ours ahead of 2QAN in both
depth and CX count.
"""

import pytest

from benchmarks._common import table
from repro.arch import heavyhex_for
from repro.baselines import compile_twoqan
from repro.compiler import compile_qaoa
from repro.problems import hamiltonian_benchmarks


def _compute():
    rows = []
    wins = 0
    for problem in hamiltonian_benchmarks():
        coupling = heavyhex_for(problem.n_vertices)
        ours = compile_qaoa(coupling, problem, method="hybrid")
        ours.validate(coupling, problem)
        twoqan = compile_twoqan(coupling, problem)
        twoqan.validate(coupling, problem)
        rows.append([problem.name,
                     ours.depth(), twoqan.depth(),
                     ours.gate_count, twoqan.gate_count])
        wins += (ours.depth() <= twoqan.depth()
                 and ours.gate_count <= twoqan.gate_count * 1.05)
    table("table3_hamiltonian",
          "Table 3: 2-local Hamiltonian at 64-qubit heavy-hex",
          ["model", "ours D", "2qan D", "ours CX", "2qan CX"], rows)
    assert wins >= 2, "ours should lead 2QAN on most Hamiltonian models"


@pytest.mark.benchmark(group="table3")
def test_table3_hamiltonian(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
