"""Ablations over the design choices DESIGN.md calls out.

1. Structured grid composition vs snake-line fallback (Appendix A claims
   the structured schedule is a constant factor better).
2. CPHASE+SWAP gate unification on/off (the 3-CX fusion).
3. Hybrid selector on/off (pure greedy / pure ATA vs selected).
4. Noise-aware swap weighting on/off (ESP impact of Factor III).
"""

import pytest

from benchmarks._common import table
from repro.arch import NoiseModel, grid, heavyhex_for
from repro.ata import compile_with_pattern, get_pattern, snake_pattern
from repro.compiler import compile_qaoa
from repro.ir.decompose import count_cx
from repro.ir.mapping import Mapping
from repro.problems import clique, random_problem_graph


def _ablation_structured_vs_snake():
    # Three grid schedules for the same clique: the Appendix-A *merged*
    # composition (~1.5n, the default), the unmerged Section-3.1
    # composition (~2n + O(sqrt n)) and the snake line (exactly 2n).
    # The merged schedule must beat the snake on depth — the paper's 25%
    # claim; the unmerged one loses to the snake by a small constant
    # (an honest negative result we keep visible).
    from repro.ata.grid_pattern import GridCliquePattern
    coupling = grid(6, 6)
    problem = clique(36)
    mapping = Mapping.trivial(36)
    merged, _ = compile_with_pattern(
        coupling, get_pattern(coupling), problem.edges, mapping)
    unmerged, _ = compile_with_pattern(
        coupling, GridCliquePattern(coupling.metadata["units"]),
        problem.edges, mapping)
    snake, _ = compile_with_pattern(
        coupling, snake_pattern(coupling), problem.edges, mapping)
    assert merged.depth() < snake.depth() < unmerged.depth()
    return [["grid-6x6 clique merged (App A)", merged.depth(),
             count_cx(merged)],
            ["grid-6x6 clique unmerged", unmerged.depth(),
             count_cx(unmerged)],
            ["grid-6x6 clique snake-line", snake.depth(), count_cx(snake)]]


def _ablation_unification():
    coupling = grid(6, 6)
    problem = clique(36)
    mapping = Mapping.trivial(36)
    circuit, _ = compile_with_pattern(
        coupling, get_pattern(coupling), problem.edges, mapping)
    fused = count_cx(circuit, unify=True)
    unfused = count_cx(circuit, unify=False)
    assert fused < unfused
    return [["ATA clique, unified", circuit.depth(), fused],
            ["ATA clique, no unification", circuit.depth(), unfused]]


def _ablation_selector():
    coupling = heavyhex_for(64)
    problem = random_problem_graph(64, 0.3, seed=5)
    rows = []
    depths = {}
    for method in ("greedy", "ata", "hybrid"):
        result = compile_qaoa(coupling, problem, method=method)
        depths[method] = result.depth()
        rows.append([f"heavyhex 64-0.3 {method}", result.depth(),
                     result.gate_count])
    assert depths["hybrid"] <= min(depths["greedy"], depths["ata"]) * 1.1 + 1
    return rows


def _ablation_noise_awareness():
    coupling = heavyhex_for(32)
    noise = NoiseModel(coupling, seed=2)
    problem = random_problem_graph(32, 0.3, seed=5)
    aware = compile_qaoa(coupling, problem, method="greedy", noise=noise)
    blind = compile_qaoa(coupling, problem, method="greedy")
    return [["greedy noise-aware", aware.depth(), aware.gate_count,
             noise.esp(aware.circuit)],
            ["greedy noise-blind", blind.depth(), blind.gate_count,
             noise.esp(blind.circuit)]]


def _compute():
    rows = []
    rows += [r + [""] for r in _ablation_structured_vs_snake()]
    rows += [r + [""] for r in _ablation_unification()]
    rows += [r + [""] for r in _ablation_selector()]
    rows += _ablation_noise_awareness()
    table("ablations", "Design-choice ablations",
          ["configuration", "depth", "CX", "ESP"], rows)


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
