"""Table 1 — comparison with 2QAN and QAIM (depth and CX count).

Paper: heavy-hex and Sycamore, random graphs, densities 0.3/0.5, sizes
64-256 (2QAN missing beyond 128 because its quadratic mapping search takes
over a day).  Expected shape: ours ahead of QAIM everywhere and ahead of
or close to 2QAN, with 2QAN's compile time growing much faster.
"""

import pytest

from benchmarks._common import averaged_point, benchmark_sizes, table

COMPILERS = ("ours", "2qan", "qaim")


def _compute():
    rows = []
    ordering_ok = True
    for arch in ("heavyhex", "sycamore"):
        for density in (0.3, 0.5):
            for n in benchmark_sizes():
                point = averaged_point(arch, "rand", n, density, COMPILERS)
                rows.append([
                    f"{arch} {n}-{density:g}",
                    point["ours"]["depth"], point["2qan"]["depth"],
                    point["qaim"]["depth"],
                    point["ours"]["cx"], point["2qan"]["cx"],
                    point["qaim"]["cx"],
                    point["ours"]["time_s"], point["2qan"]["time_s"],
                ])
                ordering_ok &= (point["ours"]["depth"]
                                <= point["qaim"]["depth"] * 1.05 + 1)
    table("table1_2qan_qaim",
          "Table 1: Ours vs 2QAN vs QAIM",
          ["instance", "ours D", "2qan D", "qaim D",
           "ours CX", "2qan CX", "qaim CX", "ours s", "2qan s"],
          rows)
    assert ordering_ok, "ours lost to QAIM on depth somewhere"


@pytest.mark.benchmark(group="table1")
def test_table1_2qan_qaim(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
