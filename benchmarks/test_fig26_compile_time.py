"""Figure 26 — compilation time vs problem size.

Paper: random-0.3 QAOA graphs, 64 to 1024 qubits; compile time grows
near-linearly (~30 s at 1024 for the authors' implementation; pure Python
is slower by a constant factor, which is irrelevant to the scaling claim).

Shape check: doubling the qubit count must not blow the time up by more
than ~6x (quadratic would be 4x on the dominant term plus routing growth).
"""

import time

import pytest

from benchmarks._common import full_scale, table
from repro.arch import heavyhex_for
from repro.compiler import compile_qaoa
from repro.problems import random_problem_graph


def _compute():
    sizes = [64, 128, 256, 512, 1024] if full_scale() else [32, 64, 128]
    rows = []
    times = []
    for n in sizes:
        problem = random_problem_graph(n, 0.3, seed=0)
        coupling = heavyhex_for(n)
        start = time.perf_counter()
        result = compile_qaoa(coupling, problem, method="hybrid")
        elapsed = time.perf_counter() - start
        times.append(elapsed)
        rows.append([n, problem.n_edges, elapsed,
                     elapsed / n * 1000.0])
    table("fig26_compile_time",
          "Fig 26: compilation time vs QAOA graph size (heavy-hex)",
          ["qubits", "edges", "seconds", "ms/qubit"], rows)
    for prev, cur in zip(times, times[1:]):
        assert cur <= max(prev, 0.05) * 8, "compile time growing too fast"


@pytest.mark.benchmark(group="fig26")
def test_fig26_compile_time_scaling(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
