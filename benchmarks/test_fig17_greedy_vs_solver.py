"""Figure 17 — pure greedy vs solver-guided (ATA) vs our hybrid.

Paper: normalized depth and gate count on heavy-hex and Sycamore, random
graphs at densities 0.1 and 0.3, sizes 64/256/1024.  Expected shape:
greedy wins on small sparse inputs, the structured solution wins on large
dense ones, and the hybrid ("ours") matches or beats the better of the
two everywhere.
"""

import pytest

from benchmarks._common import averaged_point, benchmark_sizes, table

METHODS = ("greedy", "solver", "ours")
DENSITIES = (0.1, 0.3)
ARCHES = ("heavyhex", "sycamore")


def _compute():
    rows_depth, rows_cx = [], []
    hybrid_ok = True
    for arch in ARCHES:
        for density in DENSITIES:
            for n in benchmark_sizes():
                point = averaged_point(arch, "rand", n, density, METHODS)
                greedy = point["greedy"]
                label = f"{arch} {n}-{density:g}"
                rows_depth.append(
                    [label] + [point[m]["depth"] / greedy["depth"]
                               for m in METHODS])
                rows_cx.append(
                    [label] + [point[m]["cx"] / greedy["cx"]
                               for m in METHODS])
                best = min(point[m]["depth"] for m in ("greedy", "solver"))
                # Section 5.4: ours is at least the better of the two
                # (selector mixes depth and gates, allow 10% slack).
                hybrid_ok &= point["ours"]["depth"] <= 1.1 * best + 1
    table("fig17_depth", "Fig 17 (a/c): depth normalized to greedy",
          ["instance", *METHODS], rows_depth)
    table("fig17_gates", "Fig 17 (b/d): gate count normalized to greedy",
          ["instance", *METHODS], rows_cx)
    assert hybrid_ok, "hybrid lost to both components somewhere"


@pytest.mark.benchmark(group="fig17")
def test_fig17_greedy_vs_solver_vs_ours(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
