"""Figures 22 & 23 — depth and gate count on Google Sycamore.

Same sweep as Figs 20/21 on the better-connected Sycamore lattice; the
baselines fare relatively better here (more routing freedom), but ours
still leads, especially at larger sizes.
"""

import pytest

from benchmarks._common import averaged_point, benchmark_sizes, table

COMPILERS = ("ours", "qaim", "paulihedral")


def _compute():
    rows_depth, rows_cx = [], []
    ordering_ok = True
    for kind in ("rand", "reg"):
        for density in (0.3, 0.5):
            for n in benchmark_sizes():
                point = averaged_point("sycamore", kind, n, density,
                                       COMPILERS)
                label = f"{kind}-{n}-{density:g}"
                rows_depth.append(
                    [label] + [point[c]["depth"] for c in COMPILERS])
                rows_cx.append(
                    [label] + [point[c]["cx"] for c in COMPILERS])
                ordering_ok &= (point["ours"]["depth"]
                                <= point["paulihedral"]["depth"])
                ordering_ok &= (point["ours"]["cx"]
                                <= point["paulihedral"]["cx"])
    table("fig22_depth_sycamore", "Fig 22: depth on Google Sycamore",
          ["instance", *COMPILERS], rows_depth)
    table("fig23_gates_sycamore", "Fig 23: CX count on Google Sycamore",
          ["instance", *COMPILERS], rows_cx)
    assert ordering_ok, "ours lost to Paulihedral somewhere"


@pytest.mark.benchmark(group="fig22-23")
def test_fig22_23_sycamore(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
