"""Table 2 — 1024-qubit graphs vs Paulihedral.

Paper: heavy-hex and Sycamore, 1024-qubit random (d 0.3/0.5) and regular
(deg 320/480) graphs; only Paulihedral scales that far among the
baselines.  Expected shape: ours ~3x lower depth and ~2.5x fewer CX.

Default scale runs the same sweep at 256 qubits (pure Python); set
``REPRO_FULL_SCALE=1`` for the true 1024-qubit rows.
"""

import pytest

from benchmarks._common import full_scale, problem_for, run_point, table
from repro.problems import regular_problem_graph


def _compute():
    n = 1024 if full_scale() else 256
    workloads = [
        ("rand", f"{n}-0.3", problem_for("rand", n, 0.3, seed=0)),
        ("rand", f"{n}-0.5", problem_for("rand", n, 0.5, seed=0)),
        ("reg", f"{n}-{int(0.3 * n)}",
         regular_problem_graph(n, int(0.3 * n), seed=0)),
        ("reg", f"{n}-{int(0.46 * n)}",
         regular_problem_graph(n, int(0.46 * n), seed=0)),
    ]
    rows = []
    ok = True
    for arch in ("heavyhex", "sycamore"):
        for _, label, problem in workloads:
            point = run_point(arch, problem, ("ours", "paulihedral"))
            ours, pauli = point["ours"], point["paulihedral"]
            rows.append([f"{arch} {label}",
                         ours["depth"], pauli["depth"],
                         ours["cx"], pauli["cx"]])
            ok &= ours["depth"] < pauli["depth"]
            ok &= ours["cx"] < pauli["cx"]
    table("table2_large_scale",
          f"Table 2: {n}-qubit graphs, ours vs Paulihedral",
          ["instance", "ours D", "pauli D", "ours CX", "pauli CX"], rows)
    assert ok, "ours must dominate Paulihedral at scale"


@pytest.mark.benchmark(group="table2")
def test_table2_large_graphs(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
