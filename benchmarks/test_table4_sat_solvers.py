"""Table 4 — comparison with SAT-solver-based OLSQ and SATMAP on 2D grids.

Paper: tiny random graphs "10-2" .. "15-4" (n qubits, density/10) on the
smallest fitting grid.  Expected shape: ours compiles orders of magnitude
faster with comparable depth; the search-based tools edge out gate count
on some instances.
"""

import pytest

from benchmarks._common import table
from repro.arch import square_grid_for
from repro.baselines import compile_olsq, compile_satmap
from repro.compiler import compile_qaoa
from repro.problems import random_problem_graph

#: (n, density) pairs named as in the paper ("15-4" = 15 qubits, d=0.4).
INSTANCES = [(10, 0.2), (10, 0.3), (10, 0.4),
             (12, 0.2), (12, 0.3), (12, 0.4),
             (15, 0.2), (15, 0.4)]


def _compute():
    rows = []
    speed_ok = True
    for n, density in INSTANCES:
        problem = random_problem_graph(n, density, seed=0)
        coupling = square_grid_for(n)
        ours = compile_qaoa(coupling, problem, method="hybrid")
        ours.validate(coupling, problem)
        olsq = compile_olsq(coupling, problem, exact_node_budget=40_000,
                            beam_width=128, children_per_state=96)
        olsq.validate(coupling, problem)
        satmap = compile_satmap(coupling, problem)
        satmap.validate(coupling, problem)
        rows.append([
            f"{n}-{int(density * 10)}",
            ours.depth(), olsq.depth(), satmap.depth(),
            ours.gate_count, olsq.gate_count, satmap.gate_count,
            ours.wall_time_s, olsq.wall_time_s, satmap.wall_time_s,
        ])
        speed_ok &= ours.wall_time_s <= olsq.wall_time_s + 1.0
    table("table4_sat_solvers",
          "Table 4: Ours vs OLSQ-like vs SATMAP-like (2D grid)",
          ["graph", "ours D", "olsq D", "satmap D",
           "ours CX", "olsq CX", "satmap CX",
           "ours s", "olsq s", "satmap s"],
          rows)
    assert speed_ok, "ours should compile faster than the search baselines"


@pytest.mark.benchmark(group="table4")
def test_table4_sat_solver_comparison(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
