"""Figures 20 & 21 — depth and gate count on IBM heavy-hex.

Paper: ours vs QAIM vs Paulihedral on random and regular graphs at
densities 0.3 and 0.5, 64-256 qubits.  Expected shape: ours lowest in
both metrics, with the margin growing with qubit count; Paulihedral worst.
"""

import pytest

from benchmarks._common import averaged_point, benchmark_sizes, table

COMPILERS = ("ours", "qaim", "paulihedral")


def _compute():
    rows_depth, rows_cx = [], []
    ordering_ok = True
    for kind in ("rand", "reg"):
        for density in (0.3, 0.5):
            for n in benchmark_sizes():
                point = averaged_point("heavyhex", kind, n, density,
                                       COMPILERS)
                label = f"{kind}-{n}-{density:g}"
                rows_depth.append(
                    [label] + [point[c]["depth"] for c in COMPILERS])
                rows_cx.append(
                    [label] + [point[c]["cx"] for c in COMPILERS])
                ordering_ok &= (point["ours"]["depth"]
                                <= point["paulihedral"]["depth"])
                ordering_ok &= (point["ours"]["cx"]
                                <= point["paulihedral"]["cx"])
    table("fig20_depth_heavyhex", "Fig 20: depth on IBM heavy-hex",
          ["instance", *COMPILERS], rows_depth)
    table("fig21_gates_heavyhex", "Fig 21: CX count on IBM heavy-hex",
          ["instance", *COMPILERS], rows_cx)
    assert ordering_ok, "ours lost to Paulihedral somewhere"


@pytest.mark.benchmark(group="fig20-21")
def test_fig20_21_heavyhex(benchmark):
    benchmark.pedantic(_compute, rounds=1, iterations=1)
