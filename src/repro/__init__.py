"""repro — reproduction of Jin et al., ASPLOS 2023.

"Exploiting the Regular Structure of Modern Quantum Architectures for
Compiling and Optimizing Programs with Permutable Operators."

Public API highlights
---------------------

* :func:`repro.compile_qaoa` — the paper's hybrid compiler (greedy + ATA).
* :mod:`repro.pipeline` — the composable pass-pipeline core behind it:
  ``CompilationContext`` threaded through ``Pass`` objects run by a
  ``Pipeline``, plus the single method registry
  (:func:`repro.available_methods`) that names every compiler — paper
  methods and baselines alike.
* :func:`repro.compile_many` / :mod:`repro.batch` — batch compilation over
  a process pool with shared caches, per-job timeouts and telemetry.
* :func:`repro.lint_circuit` / :mod:`repro.lint` — the diagnostics-based
  static analyzer for compiled circuits (rule codes ``RL0xx``; see
  ``docs/linting.md``), also available as a ``LintPass``, the batch
  engine's ``lint=True`` and the ``python -m repro lint`` subcommand.
* :mod:`repro.arch` — line / grid / Sycamore / hexagon / heavy-hex coupling
  graphs with synthetic noise calibration.
* :mod:`repro.ata` — structured all-to-all swap-network patterns.
* :mod:`repro.solver` — the depth-optimal A* solver for small instances.
* :mod:`repro.baselines` — Paulihedral-, QAIM-, 2QAN-, OLSQ- and
  SATMAP-like reference compilers.
* :mod:`repro.sim` — statevector simulation, noise substitution, and the
  end-to-end QAOA/COBYLA loop.
"""

__version__ = "1.0.0"

from .exceptions import (ArchitectureError, CompilationError, ReproError,
                         SolverError, SpecificationError, ValidationError)
from .ir import Circuit, Mapping, Op, validate_compiled


def compile_qaoa(*args, **kwargs):
    """Compile a permutable-operator program (lazy import of the compiler).

    See :func:`repro.compiler.compile_qaoa` for the full signature.
    """
    from .compiler import compile_qaoa as _compile

    return _compile(*args, **kwargs)


def compile_many(*args, **kwargs):
    """Batch-compile many job specs (lazy import of the batch engine).

    See :func:`repro.batch.compile_many` for the full signature.
    """
    from .batch import compile_many as _many

    return _many(*args, **kwargs)


def available_methods():
    """Names of every registered compiler method (paper + baselines).

    See :mod:`repro.pipeline.registry`; adding a method there makes it
    resolvable here, in ``compile_qaoa(method=...)``, in the batch
    engine, in sweeps, and on the CLI at once.
    """
    from .pipeline.registry import available_methods as _methods

    return _methods()


def lint_circuit(*args, **kwargs):
    """Statically analyze a compiled circuit (lazy import of the linter).

    See :func:`repro.lint.lint_circuit` for the full signature.
    """
    from .lint import lint_circuit as _lint

    return _lint(*args, **kwargs)


def lint_result(*args, **kwargs):
    """Statically analyze a :class:`CompiledResult` (lazy import).

    See :func:`repro.lint.lint_result` for the full signature.
    """
    from .lint import lint_result as _lint

    return _lint(*args, **kwargs)


_LAZY_PIPELINE_EXPORTS = (
    "CompilationContext", "Pass", "Pipeline", "MethodSpec",
    "register_method", "get_method", "build_pipeline", "LintPass",
    "ValidatePass",
)


def __getattr__(name):
    """Lazy re-exports of the pipeline core (PEP 562)."""
    if name in _LAZY_PIPELINE_EXPORTS:
        from . import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "compile_qaoa",
    "compile_many",
    "available_methods",
    "lint_circuit",
    "lint_result",
    *_LAZY_PIPELINE_EXPORTS,
    "Circuit",
    "Mapping",
    "Op",
    "validate_compiled",
    "ReproError",
    "ValidationError",
    "ArchitectureError",
    "CompilationError",
    "SolverError",
    "SpecificationError",
    "__version__",
]
