"""Problem graphs — the inputs to QAOA / 2-local Hamiltonian compilation.

A problem graph has one vertex per logical qubit and one edge per two-qubit
permutable operator (Section 2.1, Fig 2).  Benchmarks follow Section 7.1:
NetworkX random graphs at a target density and random regular graphs at a
target degree.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..ir.gates import canonical_edge, canonical_edges


class ProblemGraph:
    """Immutable undirected problem graph over ``n_vertices`` logical qubits.

    ``weights`` (optional) attaches a real weight to each edge — weighted
    MaxCut, where the weight scales both the CPHASE angle and the edge's
    contribution to the cut value.  ``weights=None`` is the unweighted
    problem and every weight reads as 1.0; nothing downstream changes.
    """

    def __init__(self, n_vertices: int,
                 edges: Iterable[Tuple[int, int]],
                 name: str = "",
                 weights: Optional[Mapping[Tuple[int, int], float]] = None,
                 ) -> None:
        if n_vertices <= 0:
            raise ValueError("problem graph needs at least one vertex")
        self.n_vertices = n_vertices
        self.edges: FrozenSet[Tuple[int, int]] = canonical_edges(edges)
        for u, v in self.edges:
            if u == v or not (0 <= u < n_vertices and 0 <= v < n_vertices):
                raise ValueError(f"invalid edge ({u}, {v})")
        self.weights: Optional[Dict[Tuple[int, int], float]] = None
        if weights is not None:
            canon = {canonical_edge(*edge): float(w)
                     for edge, w in weights.items()}
            missing = self.edges - canon.keys()
            if missing:
                raise ValueError(
                    f"weights missing for edges {sorted(missing)}")
            stray = canon.keys() - self.edges
            if stray:
                raise ValueError(
                    f"weights given for non-edges {sorted(stray)}")
            self.weights = canon
        self.name = name or f"graph-{n_vertices}-{len(self.edges)}"

    @property
    def is_weighted(self) -> bool:
        return self.weights is not None

    def weight(self, u: int, v: int) -> float:
        """The edge's weight (1.0 for every edge of an unweighted graph)."""
        edge = canonical_edge(u, v)
        if edge not in self.edges:
            raise KeyError(f"({u}, {v}) is not an edge")
        if self.weights is None:
            return 1.0
        return self.weights[edge]

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def density(self) -> float:
        if self.n_vertices < 2:
            return 0.0
        max_edges = self.n_vertices * (self.n_vertices - 1) / 2
        return self.n_edges / max_edges

    def degrees(self) -> Dict[int, int]:
        degs = {v: 0 for v in range(self.n_vertices)}
        for u, v in self.edges:
            degs[u] += 1
            degs[v] += 1
        return degs

    def neighbors(self, v: int) -> List[int]:
        out = []
        for a, b in self.edges:
            if a == v:
                out.append(b)
            elif b == v:
                out.append(a)
        return sorted(out)

    def connected_components(self) -> List[FrozenSet[int]]:
        """Components of the *edge-supported* subgraph; isolated vertices
        (no pending gates) are omitted."""
        parent = {}

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self.edges:
            parent.setdefault(u, u)
            parent.setdefault(v, v)
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
        groups: Dict[int, set] = {}
        for vertex in parent:
            groups.setdefault(find(vertex), set()).add(vertex)
        return [frozenset(g) for g in groups.values()]

    def __repr__(self) -> str:
        tail = ", weighted" if self.is_weighted else ""
        return (f"ProblemGraph({self.name!r}, n={self.n_vertices}, "
                f"edges={self.n_edges}{tail})")


def clique(n_vertices: int) -> ProblemGraph:
    """The special case of Definition 1: one gate between every qubit pair."""
    edges = [(i, j) for i in range(n_vertices) for j in range(i + 1, n_vertices)]
    return ProblemGraph(n_vertices, edges, name=f"clique-{n_vertices}")


def biclique(a: int, b: int) -> ProblemGraph:
    """Complete bipartite graph ``K_{a,b}``: one gate between every
    cross-side pair.  This is the workload the paper uses to discover the
    row-exchange pattern on 2xN grids (Section 5), and the solver
    benchmark's grid instance."""
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    return ProblemGraph(a + b, edges, name=f"biclique-{a}x{b}")


def random_problem_graph(n_vertices: int, density: float,
                         seed: int = 0) -> ProblemGraph:
    """Erdős–Rényi G(n, m) graph with ``m = density * n*(n-1)/2`` edges."""
    import networkx as nx

    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    max_edges = n_vertices * (n_vertices - 1) // 2
    m = int(round(density * max_edges))
    graph = nx.gnm_random_graph(n_vertices, m, seed=seed)
    return ProblemGraph(n_vertices, graph.edges(),
                        name=f"rand-{n_vertices}-{density:g}-s{seed}")


def regular_problem_graph(n_vertices: int, degree: int,
                          seed: int = 0) -> ProblemGraph:
    """Random regular graph; ``degree * n`` must be even (NetworkX rule)."""
    import networkx as nx

    if (degree * n_vertices) % 2 != 0:
        degree += 1
    graph = nx.random_regular_graph(degree, n_vertices, seed=seed)
    return ProblemGraph(n_vertices, graph.edges(),
                        name=f"reg-{n_vertices}-d{degree}-s{seed}")


def weighted_random_problem_graph(n_vertices: int, density: float,
                                  seed: int = 0,
                                  low: float = 0.2,
                                  high: float = 1.0) -> ProblemGraph:
    """Weighted MaxCut instance: the :func:`random_problem_graph` topology
    with uniform ``[low, high)`` edge weights from the same seed."""
    import random as _random

    base = random_problem_graph(n_vertices, density, seed=seed)
    rng = _random.Random(seed)
    weights = {edge: low + (high - low) * rng.random()
               for edge in sorted(base.edges)}
    return ProblemGraph(n_vertices, base.edges,
                        name=f"wrand-{n_vertices}-{density:g}-s{seed}",
                        weights=weights)


def regular_for_density(n_vertices: int, density: float,
                        seed: int = 0) -> ProblemGraph:
    """Regular graph whose density is close to ``density`` (Section 7.1:
    'set the density of regular graph close to 0.3 or 0.5 by varying the
    degree of each vertex')."""
    degree = max(1, int(round(density * (n_vertices - 1))))
    if degree >= n_vertices:
        degree = n_vertices - 1
    return regular_problem_graph(n_vertices, degree, seed=seed)
