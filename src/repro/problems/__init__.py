"""Problem graphs and applications (QAOA, 2-local Hamiltonian simulation)."""

from .graphs import (ProblemGraph, biclique, clique, random_problem_graph,
                     regular_for_density, regular_problem_graph,
                     weighted_random_problem_graph)
from .hamiltonian import (hamiltonian_benchmarks, nnn_heisenberg_3d,
                          nnn_ising_1d, nnn_xy_2d)
from .qaoa import QaoaProblem, maxcut_expectation_energy
from .suite import (random_suite, regular_suite, table4_instances)

__all__ = [
    "ProblemGraph",
    "biclique",
    "clique",
    "random_problem_graph",
    "regular_problem_graph",
    "regular_for_density",
    "weighted_random_problem_graph",
    "QaoaProblem",
    "maxcut_expectation_energy",
    "nnn_ising_1d",
    "nnn_xy_2d",
    "nnn_heisenberg_3d",
    "hamiltonian_benchmarks",
    "random_suite",
    "regular_suite",
    "table4_instances",
]
