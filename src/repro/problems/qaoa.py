"""QAOA-MaxCut problem definition and logical circuit construction.

A depth-p QAOA-MaxCut circuit (Fig 2) is::

    H on every qubit
    for each layer k:
        CPHASE-block: one ZZ-phase interaction per problem edge (angle gamma_k)
        RX(2*beta_k) on every qubit

All the CPHASE gates inside one block commute, which is the degree of
freedom the compiler exploits.  The cost operator here is the MaxCut
Hamiltonian ``C = sum_{(u,v) in E} (1 - Z_u Z_v) / 2``; the expected cut of
a bitstring distribution is computed by :meth:`QaoaProblem.expected_cut`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ir.circuit import Circuit
from ..ir.gates import Op
from .graphs import ProblemGraph


class QaoaProblem:
    """MaxCut QAOA instance over a problem graph."""

    def __init__(self, graph: ProblemGraph) -> None:
        self.graph = graph

    @property
    def n_qubits(self) -> int:
        return self.graph.n_vertices

    # -- circuit construction -------------------------------------------------

    def logical_circuit(self, gammas: Sequence[float],
                        betas: Sequence[float]) -> Circuit:
        """The uncompiled (all-to-all connectivity) QAOA circuit.

        On a weighted graph each edge's CPHASE angle is ``gamma_k * w``,
        so heavier edges rotate proportionally further (weighted MaxCut).
        """
        if len(gammas) != len(betas):
            raise ValueError("gammas and betas must have equal length")
        circuit = Circuit(self.n_qubits)
        for q in range(self.n_qubits):
            circuit.append(Op.h(q))
        for gamma, beta in zip(gammas, betas):
            for u, v in sorted(self.graph.edges):
                angle = gamma * self.graph.weight(u, v)
                circuit.append(Op.cphase(u, v, angle, tag=(u, v)))
            for q in range(self.n_qubits):
                circuit.append(Op.rx(q, 2.0 * beta))
        return circuit

    # -- cost function ---------------------------------------------------------

    def cut_value(self, bits: Sequence[int]) -> float:
        """(Weighted) cut size of one assignment (bit per vertex).

        Returns an exact ``int``-valued float on unweighted graphs.
        """
        return sum(self.graph.weight(u, v)
                   for u, v in self.graph.edges if bits[u] != bits[v])

    def cut_values_all(self) -> np.ndarray:
        """Cut value for every basis state (index bit order: qubit 0 is the
        most significant bit, matching :mod:`repro.sim`).  ``int64`` for
        unweighted graphs, ``float64`` when edge weights are attached."""
        n = self.n_qubits
        dtype = np.float64 if self.graph.is_weighted else np.int64
        values = np.zeros(2 ** n, dtype=dtype)
        indices = np.arange(2 ** n)
        for u, v in self.graph.edges:
            bit_u = 1 << (n - 1 - u)
            bit_v = 1 << (n - 1 - v)
            differ = ((indices & bit_u) > 0) != ((indices & bit_v) > 0)
            if self.graph.is_weighted:
                values += differ * self.graph.weight(u, v)
            else:
                values += differ
        return values

    def expected_cut(self, probabilities: np.ndarray) -> float:
        """Expected cut of a probability distribution over basis states."""
        return float(np.dot(probabilities, self.cut_values_all()))

    def max_cut_brute_force(self) -> float:
        """Exact optimum for small graphs (exponential; n <= 24)."""
        if self.n_qubits > 24:
            raise ValueError("brute force limited to 24 qubits")
        if self.graph.is_weighted:
            return float(self.cut_values_all().max())
        return int(self.cut_values_all().max())


def maxcut_expectation_energy(problem: QaoaProblem,
                              probabilities: np.ndarray) -> float:
    """The quantity plotted in Figs 24/25: minus the expected cut (the
    classical optimizer minimises this)."""
    return -problem.expected_cut(probabilities)
