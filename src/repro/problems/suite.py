"""Named benchmark suites matching the paper's Section 7.1 setup."""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from .graphs import (ProblemGraph, random_problem_graph, regular_for_density)
from .hamiltonian import hamiltonian_benchmarks

#: The paper's random-graph sweep: densities 0.3/0.5, sizes 64..1024.
PAPER_DENSITIES = (0.3, 0.5)
PAPER_SIZES = (64, 128, 256, 1024)
#: The Fig 17 sweep uses sparser graphs.
FIG17_DENSITIES = (0.1, 0.3)
#: Cases averaged per point in the paper.
PAPER_CASES_PER_POINT = 10


def random_suite(sizes: Sequence[int] = PAPER_SIZES,
                 densities: Sequence[float] = PAPER_DENSITIES,
                 n_cases: int = 2) -> Iterator[ProblemGraph]:
    """Random-graph benchmark instances (seeded, reproducible)."""
    for n in sizes:
        for density in densities:
            for seed in range(n_cases):
                yield random_problem_graph(n, density, seed=seed)


def regular_suite(sizes: Sequence[int] = PAPER_SIZES,
                  densities: Sequence[float] = PAPER_DENSITIES,
                  n_cases: int = 2) -> Iterator[ProblemGraph]:
    """Regular-graph benchmark instances with density-matched degrees."""
    for n in sizes:
        for density in densities:
            for seed in range(n_cases):
                yield regular_for_density(n, density, seed=seed)


def table4_instances() -> List[Tuple[str, ProblemGraph]]:
    """The tiny (n, density) pairs of Table 4 ("10-2" .. "15-4")."""
    spec = [(10, 0.2), (10, 0.3), (10, 0.4),
            (12, 0.2), (12, 0.3), (12, 0.4),
            (15, 0.2), (15, 0.4)]
    return [(f"{n}-{int(d * 10)}", random_problem_graph(n, d, seed=0))
            for n, d in spec]


def all_suites_summary() -> List[Tuple[str, int]]:
    """Instance counts per suite (for docs / sanity checks)."""
    return [
        ("random", len(list(random_suite(sizes=(64,), n_cases=1)))),
        ("regular", len(list(regular_suite(sizes=(64,), n_cases=1)))),
        ("hamiltonian", len(hamiltonian_benchmarks())),
        ("table4", len(table4_instances())),
    ]
