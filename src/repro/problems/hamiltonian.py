"""2-local Hamiltonian simulation benchmarks (Table 3).

The paper evaluates next-nearest-neighbour (NNN) interaction graphs of three
physical models, each with 64 spins, following 2QAN:

* **NNN 1D Ising** — a chain with ``(i, i+1)`` and ``(i, i+2)`` couplings.
* **NNN 2D XY** — an ``L x L`` square lattice with nearest-neighbour and
  diagonal (next-nearest) couplings.
* **NNN 3D Heisenberg** — an ``L x L x L`` cubic lattice with
  nearest-neighbour and face-diagonal couplings.

For compilation purposes each interaction term is one permutable two-qubit
block (one Trotter step); the model only determines the *interaction graph*,
which is all the router consumes.  (An XY or Heisenberg term decomposes into
2-3 ZZ-style interactions on the *same* qubit pair, which multiplies gate
counts uniformly across all compilers and therefore cancels in comparisons.)
"""

from __future__ import annotations

from typing import List, Tuple

from .graphs import ProblemGraph


def nnn_ising_1d(n_spins: int = 64) -> ProblemGraph:
    """Next-nearest-neighbour 1D Ising chain."""
    edges: List[Tuple[int, int]] = []
    for i in range(n_spins - 1):
        edges.append((i, i + 1))
    for i in range(n_spins - 2):
        edges.append((i, i + 2))
    return ProblemGraph(n_spins, edges, name=f"nnn-1d-ising-{n_spins}")


def nnn_xy_2d(side: int = 8) -> ProblemGraph:
    """Next-nearest-neighbour 2D XY model on a ``side x side`` lattice."""
    def node(r: int, c: int) -> int:
        return r * side + c

    edges: List[Tuple[int, int]] = []
    for r in range(side):
        for c in range(side):
            if c + 1 < side:
                edges.append((node(r, c), node(r, c + 1)))
            if r + 1 < side:
                edges.append((node(r, c), node(r + 1, c)))
            if r + 1 < side and c + 1 < side:
                edges.append((node(r, c), node(r + 1, c + 1)))
            if r + 1 < side and c - 1 >= 0:
                edges.append((node(r, c), node(r + 1, c - 1)))
    return ProblemGraph(side * side, edges, name=f"nnn-2d-xy-{side}x{side}")


def nnn_heisenberg_3d(side: int = 4) -> ProblemGraph:
    """NNN 3D Heisenberg model on a ``side^3`` cubic lattice."""
    def node(x: int, y: int, z: int) -> int:
        return (x * side + y) * side + z

    edges: List[Tuple[int, int]] = []
    axes = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    diagonals = [(1, 1, 0), (1, -1, 0), (1, 0, 1), (1, 0, -1),
                 (0, 1, 1), (0, 1, -1)]
    for x in range(side):
        for y in range(side):
            for z in range(side):
                for dx, dy, dz in axes + diagonals:
                    nx_, ny_, nz_ = x + dx, y + dy, z + dz
                    if 0 <= nx_ < side and 0 <= ny_ < side and 0 <= nz_ < side:
                        edges.append((node(x, y, z), node(nx_, ny_, nz_)))
    return ProblemGraph(side ** 3, edges,
                        name=f"nnn-3d-heisenberg-{side}^3")


def hamiltonian_benchmarks() -> List[ProblemGraph]:
    """The three Table-3 benchmarks at their paper sizes (64 qubits each)."""
    return [nnn_ising_1d(64), nnn_xy_2d(8), nnn_heisenberg_3d(4)]
