"""Full-clique ATA for Sycamore and hexagon — Section 3.2.

Both architectures share one composition mechanism, built on the paper's
observation that "for every two neighboring units, we can connect a line
that covers all nodes in these two units" (Fig 10(c) for Sycamore, Section
3.2.2 for hexagon):

* unit-level odd-even transposition over ``U`` units;
* when two units are paired in a round, run the **line pattern with
  reversal** over their joint Hamiltonian path.  The line pattern covers
  every pair inside the union (inter-unit and intra-unit alike), and the
  final reversal maps each unit's position set exactly onto the other's —
  a complete *unit exchange* for free.

Every adjacent unit pair exchanges every round, so unit populations follow
a full swap network: after ``U`` rounds each pair of populations has been
paired exactly once and all logical pairs are covered.  Depth ~ 4n,
linear; the paper's hand-optimised Sycamore schedule (Appendix B) reaches
2n by interleaving — DESIGN.md records the constant-factor gap.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Tuple

from .base import Action, AtaPattern, merge_parallel
from .line_pattern import LinePattern


class _UnitTranspositionPattern(AtaPattern):
    """Shared round structure: pair adjacent units, run pair-line ATA."""

    def _n_units(self) -> int:
        raise NotImplementedError

    def _pair_path(self, unit_index: int) -> List[int]:
        """Even-length Hamiltonian path over units ``i`` and ``i+1`` whose
        reversal exchanges the two units' position sets."""
        raise NotImplementedError

    def _single_unit_path(self) -> List[int]:
        """Chain through the single unit, when one exists (else raises)."""
        raise NotImplementedError

    def cycles(self) -> Iterator[List[Action]]:
        n_units = self._n_units()
        if n_units == 1:
            yield from LinePattern(self._single_unit_path()).cycles()
            return
        for round_index in range(n_units):
            parity = round_index % 2
            pairs = list(range(parity, n_units - 1, 2))
            if not pairs:
                continue
            yield from merge_parallel(
                [LinePattern(self._pair_path(i)).cycles() for i in pairs])


class SycamorePattern(_UnitTranspositionPattern):
    """Clique schedule for a Sycamore sub-rectangle.

    Units are the horizontal rows of :func:`repro.arch.sycamore`; the pair
    path is the zig-zag of Fig 10(c).  A Sycamore row has no internal
    couplings, so regions are always at least two rows tall
    (:meth:`restrict` widens single-row regions).
    """

    def __init__(self, cols: int, row_range: Tuple[int, int],
                 col_range: Tuple[int, int]) -> None:
        self.cols = cols  # full-architecture width, for node arithmetic
        self.row_range = row_range
        self.col_range = col_range
        if row_range[1] - row_range[0] < 1:
            raise ValueError("Sycamore pattern needs at least two rows")

    @classmethod
    def for_architecture(cls, coupling) -> "SycamorePattern":
        rows = coupling.metadata["rows"]
        cols = coupling.metadata["cols"]
        return cls(cols, (0, rows - 1), (0, cols - 1))

    def _node(self, r: int, c: int) -> int:
        return r * self.cols + c

    @property
    def region(self) -> FrozenSet[int]:
        r0, r1 = self.row_range
        c0, c1 = self.col_range
        return frozenset(self._node(r, c)
                         for r in range(r0, r1 + 1)
                         for c in range(c0, c1 + 1))

    def _n_units(self) -> int:
        return self.row_range[1] - self.row_range[0] + 1

    def _pair_path(self, unit_index: int) -> List[int]:
        r = self.row_range[0] + unit_index
        c0, c1 = self.col_range
        path: List[int] = []
        for c in range(c0, c1 + 1):
            if r % 2 == 0:
                path.append(self._node(r + 1, c))
                path.append(self._node(r, c))
            else:
                path.append(self._node(r, c))
                path.append(self._node(r + 1, c))
        return path

    def _single_unit_path(self) -> List[int]:
        raise ValueError("a single Sycamore row has no internal couplings")

    def restrict(self, qubits) -> "SycamorePattern":
        rows = [q // self.cols for q in qubits]
        cols_hit = [q % self.cols for q in qubits]
        r0, r1 = min(rows), max(rows)
        c0, c1 = min(cols_hit), max(cols_hit)
        if r0 == r1:  # widen: one row is internally disconnected
            if r0 > 0:
                r0 -= 1
            else:
                r1 += 1
        if (r0, r1) == self.row_range and (c0, c1) == self.col_range:
            return self
        return self._memoized_restrict(
            (r0, r1, c0, c1),
            lambda: SycamorePattern(self.cols, (r0, r1), (c0, c1)))

    def __repr__(self) -> str:
        return (f"SycamorePattern(rows={self.row_range}, "
                f"cols={self.col_range})")


class HexagonPattern(_UnitTranspositionPattern):
    """Clique schedule for a hexagon sub-rectangle.

    Units are the vertical columns of :func:`repro.arch.hexagon`; the pair
    path walks one full column, crosses the single end link, and walks the
    other (Section 3.2.2).  Row ranges are kept even-length so that every
    column pair has an end link at the top or the bottom of the range.
    """

    def __init__(self, rows: int, col_range: Tuple[int, int],
                 row_range: Tuple[int, int]) -> None:
        self.rows = rows  # full-architecture column height, for node ids
        self.col_range = col_range
        self.row_range = row_range
        if (row_range[1] - row_range[0]) % 2 == 0 and col_range[0] != col_range[1]:
            raise ValueError("hexagon pattern row range must have even length")

    @classmethod
    def for_architecture(cls, coupling) -> "HexagonPattern":
        rows = coupling.metadata["rows"]
        cols = coupling.metadata["cols"]
        return cls(rows, (0, cols - 1), (0, rows - 1))

    def _node(self, r: int, c: int) -> int:
        return c * self.rows + r

    @property
    def region(self) -> FrozenSet[int]:
        c0, c1 = self.col_range
        r0, r1 = self.row_range
        return frozenset(self._node(r, c)
                         for c in range(c0, c1 + 1)
                         for r in range(r0, r1 + 1))

    def _n_units(self) -> int:
        return self.col_range[1] - self.col_range[0] + 1

    def _pair_path(self, unit_index: int) -> List[int]:
        c = self.col_range[0] + unit_index
        r0, r1 = self.row_range
        if (r0 + c) % 2 == 0:  # top link exists
            first = [self._node(r, c) for r in range(r1, r0 - 1, -1)]
            second = [self._node(r, c + 1) for r in range(r0, r1 + 1)]
        elif (r1 + c) % 2 == 0:  # bottom link exists
            first = [self._node(r, c) for r in range(r0, r1 + 1)]
            second = [self._node(r, c + 1) for r in range(r1, r0 - 1, -1)]
        else:  # impossible with an even-length row range
            raise ValueError(
                f"no end link between columns {c} and {c + 1} "
                f"in rows {self.row_range}")
        return first + second

    def _single_unit_path(self) -> List[int]:
        c = self.col_range[0]
        r0, r1 = self.row_range
        return [self._node(r, c) for r in range(r0, r1 + 1)]

    def restrict(self, qubits) -> "HexagonPattern":
        cols_hit = [q // self.rows for q in qubits]
        rows_hit = [q % self.rows for q in qubits]
        c0, c1 = min(cols_hit), max(cols_hit)
        r0, r1 = min(rows_hit), max(rows_hit)
        if (r1 - r0) % 2 == 0 and c0 != c1:  # keep even length
            if r1 < self.rows - 1:
                r1 += 1
            else:
                r0 -= 1
        if (c0, c1) == self.col_range and (r0, r1) == self.row_range:
            return self
        return self._memoized_restrict(
            (c0, c1, r0, r1),
            lambda: HexagonPattern(self.rows, (c0, c1), (r0, r1)))

    def __repr__(self) -> str:
        return (f"HexagonPattern(cols={self.col_range}, "
                f"rows={self.row_range})")
