"""The 1xUnit (line) all-to-all pattern — Fig 6 / Fig 7.

The schedule repeats a four-cycle block::

    CPHASE(Q_i, Q_i+1)  for even i        (computation layer)
    SWAP  (Q_i, Q_i+1)  for odd  i        (swap layer)
    CPHASE(Q_i, Q_i+1)  for odd  i        (computation layer)
    SWAP  (Q_i, Q_i+1)  for even i        (swap layer)

After ``ceil(m/2)`` blocks (``2m`` cycles) every pair of the ``m`` positions
has been adjacent at a computation layer at least once, and — for even
``m`` — the occupants end exactly reversed (the dotted SWAPs of Fig 6(b)).
The reversal is what lets two interleaved units exchange their contents, the
mechanism behind the Sycamore and hexagon compositions.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Sequence

from .base import GATE, SWAP, Action, AtaPattern


class LinePattern(AtaPattern):
    """Odd-even transposition network over a physical chain.

    Parameters
    ----------
    path:
        Physical qubits in chain order; consecutive entries must be coupled
        (the caller guarantees this — generators attach valid paths).
    """

    def __init__(self, path: Sequence[int]) -> None:
        if len(path) != len(set(path)):
            raise ValueError("line pattern path revisits a qubit")
        self.path = list(path)

    @property
    def region(self) -> FrozenSet[int]:
        return frozenset(self.path)

    @property
    def reverses(self) -> bool:
        """Whether the full schedule exactly reverses the occupants."""
        return len(self.path) % 2 == 0

    def cycles(self) -> Iterator[List[Action]]:
        path = self.path
        m = len(path)
        if m < 2:
            return
        n_blocks = (m + 1) // 2
        for _ in range(n_blocks):
            yield [(GATE, path[i], path[i + 1]) for i in range(0, m - 1, 2)]
            yield [(SWAP, path[i], path[i + 1]) for i in range(1, m - 1, 2)]
            yield [(GATE, path[i], path[i + 1]) for i in range(1, m - 1, 2)]
            yield [(SWAP, path[i], path[i + 1]) for i in range(0, m - 1, 2)]

    def _compiled_plan(self):
        """(distinct cycles, schedule indices) — see ``repro.ata.simulate``.

        The schedule is one four-cycle block repeated ``ceil(m/2)`` times,
        so only four distinct cycles exist; the simulator compiles each
        once and replays them by reference.
        """
        path = self.path
        m = len(path)
        if m < 2:
            return [], []
        distinct = [
            [(GATE, path[i], path[i + 1]) for i in range(0, m - 1, 2)],
            [(SWAP, path[i], path[i + 1]) for i in range(1, m - 1, 2)],
            [(GATE, path[i], path[i + 1]) for i in range(1, m - 1, 2)],
            [(SWAP, path[i], path[i + 1]) for i in range(0, m - 1, 2)],
        ]
        return distinct, [0, 1, 2, 3] * ((m + 1) // 2)

    def restrict(self, qubits) -> "LinePattern":
        """The minimal contiguous sub-chain containing ``qubits``.

        Returns ``self`` when the sub-chain spans the whole path, so the
        caller keeps the (possibly cycle-cached) original instance.
        """
        index = getattr(self, "_position_index", None)
        if index is None:
            index = {q: i for i, q in enumerate(self.path)}
            self._position_index = index
        positions = [index[q] for q in qubits]
        lo, hi = min(positions), max(positions)
        if lo == 0 and hi == len(self.path) - 1:
            return self
        return self._memoized_restrict(
            (lo, hi), lambda: LinePattern(self.path[lo:hi + 1]))

    def __repr__(self) -> str:
        return f"LinePattern(m={len(self.path)})"
