"""Full-clique ATA for the NxM grid — the Section 3.1 composition.

The divide-and-conquer of Fig 5, built from the two sub-solutions:

* **Phase 0** — every row runs the 1xUnit line pattern simultaneously
  (covers all intra-row pairs; rows never exchange members afterwards).
* **Rounds 0..R-1** — unit-level odd-even transposition.  In round ``r``,
  each adjacent row pair of parity ``r % 2`` first runs the 2xUnit
  bipartite pattern (covers all pairs between the two row populations),
  then performs a one-cycle *unit exchange*: a SWAP on every vertical rung
  (Fig 5(b)).

Because every adjacent pair exchanges in every round, the row populations
traverse a full swap network: after R rounds every pair of populations has
been adjacent exactly once, so all inter-row logical pairs are covered.
Total cycles ~ 2*R*C + 2*C + R = 2n + O(sqrt(n)) — linear depth.  (The
paper's Appendix A merges intra-unit gates into inter-unit idle cycles to
reach 1.5n; we keep the unmerged composition and call the gap out in
DESIGN.md.)
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Sequence

from .base import GATE, SWAP, Action, AtaPattern, merge_parallel
from .bipartite_pattern import BipartitePattern
from .line_pattern import LinePattern


class GridCliquePattern(AtaPattern):
    """Clique compilation schedule for a grid given as a list of row units.

    ``units[r][c]`` must be coupled to ``units[r][c+1]`` (row chains) and to
    ``units[r+1][c]`` (vertical rungs).  :func:`repro.arch.grid` provides
    exactly this in its metadata.
    """

    def __init__(self, units: Sequence[Sequence[int]]) -> None:
        widths = {len(u) for u in units}
        if len(widths) > 1:
            raise ValueError("all grid units must have equal width")
        self.units = [list(u) for u in units]

    @property
    def region(self) -> FrozenSet[int]:
        return frozenset(q for unit in self.units for q in unit)

    def cycles(self) -> Iterator[List[Action]]:
        rows = self.units
        n_rows = len(rows)
        width = len(rows[0]) if rows else 0
        if width >= 2:
            yield from merge_parallel(
                [LinePattern(row).cycles() for row in rows])
        if n_rows < 2:
            return
        for round_index in range(n_rows):
            parity = round_index % 2
            pairs = list(range(parity, n_rows - 1, 2))
            if not pairs:
                continue
            yield from merge_parallel(
                [BipartitePattern(rows[i], rows[i + 1]).cycles()
                 for i in pairs])
            yield [(SWAP, rows[i][c], rows[i + 1][c])
                   for i in pairs for c in range(width)]

    def restrict(self, qubits) -> "GridCliquePattern":
        """Minimal sub-rectangle of units containing ``qubits``."""
        wanted = set(qubits)
        row_hits = []
        col_hits = []
        for r, unit in enumerate(self.units):
            for c, q in enumerate(unit):
                if q in wanted:
                    row_hits.append(r)
                    col_hits.append(c)
        if not row_hits:
            return self
        r0, r1 = min(row_hits), max(row_hits)
        c0, c1 = min(col_hits), max(col_hits)
        if (r0 == 0 and c0 == 0 and r1 == len(self.units) - 1
                and c1 == len(self.units[0]) - 1):
            return self  # full span: keep the cycle-cached instance
        return self._memoized_restrict(
            (r0, r1, c0, c1),
            lambda: GridCliquePattern(
                [self.units[r][c0:c1 + 1] for r in range(r0, r1 + 1)]))

    def __repr__(self) -> str:
        width = len(self.units[0]) if self.units else 0
        return f"GridCliquePattern({len(self.units)}x{width})"


class OptimizedGridPattern(AtaPattern):
    """The Appendix-A merged grid schedule — ~1.5n cycles.

    Every adjacent row pair runs the 2xUnit bipartite dynamics
    *simultaneously* on shared intra-row swap layers: at block ``k`` row
    ``r`` swaps with parity ``(r + k) % 2``, so each adjacent pair sees
    complementary parities — exactly the Fig 9 requirement — and one swap
    cycle serves all pairs at once.  A block is three cycles:

    1. compute on even vertical pairs (rows (0,1), (2,3), ...),
    2. compute on odd vertical pairs (rows (1,2), (3,4), ...),
    3. one shared intra-row swap cycle.

    After ``C`` blocks every currently-adjacent row pair has completed
    bipartite all-to-all.  A *placement transition* (two unit-exchange
    swap cycles, even pairs then odd pairs) advances the row populations
    two transposition rounds, and ``ceil(R/2)`` placements make every pair
    of populations adjacent at some placement (verified exhaustively in
    tests).  Because population trajectories are ballistic, every row
    visits a boundary (top or bottom) for exactly one placement; boundary
    rows are vertically idle in one phase per block, and the schedule
    offers their intra-row gate opportunities there (Optimization II's
    "red gates"), completing intra-row coverage for free.

    Total: ``ceil(R/2) * (3C + 2)`` ≈ 1.5n cycles — the paper's 25%
    improvement over the 2n snake.
    """

    def __init__(self, units: Sequence[Sequence[int]]) -> None:
        widths = {len(u) for u in units}
        if len(widths) > 1:
            raise ValueError("all grid units must have equal width")
        self.units = [list(u) for u in units]

    @property
    def region(self) -> FrozenSet[int]:
        return frozenset(q for unit in self.units for q in unit)

    def cycles(self) -> Iterator[List[Action]]:
        rows = self.units
        n_rows = len(rows)
        width = len(rows[0]) if rows else 0
        if n_rows == 1:
            yield from LinePattern(rows[0]).cycles()
            return
        if width == 1:
            column = [row[0] for row in rows]
            yield from LinePattern(column).cycles()
            return

        even_pairs = list(range(0, n_rows - 1, 2))
        odd_pairs = list(range(1, n_rows - 1, 2))
        # Rows with no vertical partner in a phase (always row 0 in the
        # odd phase; the last row in one of the two).
        idle_in_even = [n_rows - 1] if n_rows % 2 == 1 else []
        idle_in_odd = [0] + ([n_rows - 1] if n_rows % 2 == 0 else [])

        n_placements = (n_rows + 1) // 2
        for placement in range(n_placements):
            for k in range(width):
                yield self._compute_cycle(even_pairs, idle_in_even, k)
                yield self._compute_cycle(odd_pairs, idle_in_odd, k)
                swaps: List[Action] = []
                for r in range(n_rows):
                    parity = (r + k) % 2
                    swaps.extend(
                        (SWAP, rows[r][i], rows[r][i + 1])
                        for i in range(parity, width - 1, 2))
                yield swaps
            if placement < n_placements - 1:
                yield [(SWAP, rows[r][c], rows[r + 1][c])
                       for r in even_pairs for c in range(width)]
                yield [(SWAP, rows[r][c], rows[r + 1][c])
                       for r in odd_pairs for c in range(width)]

    def _compute_cycle(self, pairs: List[int], idle_rows: List[int],
                       k: int) -> List[Action]:
        rows = self.units
        width = len(rows[0])
        cycle: List[Action] = []
        for r in pairs:
            cycle.extend((GATE, rows[r][c], rows[r + 1][c])
                         for c in range(width))
        for r in idle_rows:
            parity = (r + k) % 2
            cycle.extend((GATE, rows[r][i], rows[r][i + 1])
                         for i in range(parity, width - 1, 2))
        return cycle

    def _compiled_plan(self):
        """(distinct cycles, schedule indices) — see ``repro.ata.simulate``.

        Cycle content depends on ``k`` and the placement index only
        through ``k % 2``, so the whole ``ceil(R/2) * (3C + 2)`` schedule
        is a replay of eight distinct cycles: the two compute phases and
        the shared swap layer at either parity, plus the two placement
        exchanges.
        """
        rows = self.units
        n_rows = len(rows)
        width = len(rows[0]) if rows else 0
        if n_rows == 1:
            return LinePattern(rows[0])._compiled_plan()
        if width == 1:
            return LinePattern([row[0] for row in rows])._compiled_plan()

        even_pairs = list(range(0, n_rows - 1, 2))
        odd_pairs = list(range(1, n_rows - 1, 2))
        idle_in_even = [n_rows - 1] if n_rows % 2 == 1 else []
        idle_in_odd = [0] + ([n_rows - 1] if n_rows % 2 == 0 else [])

        def swap_cycle(k: int) -> List[Action]:
            swaps: List[Action] = []
            for r in range(n_rows):
                parity = (r + k) % 2
                swaps.extend((SWAP, rows[r][i], rows[r][i + 1])
                             for i in range(parity, width - 1, 2))
            return swaps

        distinct = [
            self._compute_cycle(even_pairs, idle_in_even, 0),
            self._compute_cycle(even_pairs, idle_in_even, 1),
            self._compute_cycle(odd_pairs, idle_in_odd, 0),
            self._compute_cycle(odd_pairs, idle_in_odd, 1),
            swap_cycle(0),
            swap_cycle(1),
            [(SWAP, rows[r][c], rows[r + 1][c])
             for r in even_pairs for c in range(width)],
            [(SWAP, rows[r][c], rows[r + 1][c])
             for r in odd_pairs for c in range(width)],
        ]
        schedule: List[int] = []
        n_placements = (n_rows + 1) // 2
        for placement in range(n_placements):
            for k in range(width):
                parity = k % 2
                schedule.extend((parity, 2 + parity, 4 + parity))
            if placement < n_placements - 1:
                schedule.extend((6, 7))
        return distinct, schedule

    def restrict(self, qubits) -> "OptimizedGridPattern":
        wanted = set(qubits)
        row_hits = []
        col_hits = []
        for r, unit in enumerate(self.units):
            for c, q in enumerate(unit):
                if q in wanted:
                    row_hits.append(r)
                    col_hits.append(c)
        if not row_hits:
            return self
        r0, r1 = min(row_hits), max(row_hits)
        c0, c1 = min(col_hits), max(col_hits)
        if (r0 == 0 and c0 == 0 and r1 == len(self.units) - 1
                and c1 == len(self.units[0]) - 1):
            return self  # full span: keep the cycle-cached instance
        return self._memoized_restrict(
            (r0, r1, c0, c1),
            lambda: OptimizedGridPattern(
                [self.units[r][c0:c1 + 1] for r in range(r0, r1 + 1)]))

    def __repr__(self) -> str:
        width = len(self.units[0]) if self.units else 0
        return f"OptimizedGridPattern({len(self.units)}x{width})"
