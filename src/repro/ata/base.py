"""Pattern abstraction for structured all-to-all (ATA) schedules.

A pattern is a deterministic sequence of *cycles*; each cycle is a list of
actions on physical qubits:

* ``("gate", u, v)`` — an opportunity to run a problem CPHASE between the
  logical qubits currently at ``u`` and ``v`` (the executor emits the gate
  only if that logical pair still needs one);
* ``("swap", u, v)`` — a structural SWAP that the pattern requires to keep
  its all-to-all guarantee.

Patterns are *position-based*: they guarantee that every pair of physical
positions in their region becomes adjacent with a gate opportunity, so any
initial logical placement works ("all initial mappings have the same
behavior", Section 4 Discussion).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import zip_longest
from typing import FrozenSet, Iterable, Iterator, List, Tuple

from .._telemetry import CacheCounter, register_cache

Action = Tuple[str, int, int]

GATE = "gate"
SWAP = "swap"

#: Replays of a materialized cycle list vs. fresh generator walks, across
#: every cycle-cached pattern in this process (see ``enable_cycle_cache``).
_CYCLE_COUNTER = register_cache(
    "pattern_cycles", CacheCounter("pattern_cycles"), lambda: 0, lambda: None)


class AtaPattern(ABC):
    """A structured schedule achieving all-to-all interaction in a region."""

    @abstractmethod
    def cycles(self) -> Iterator[List[Action]]:
        """Yield the schedule, one cycle (parallel action list) at a time."""

    @property
    @abstractmethod
    def region(self) -> FrozenSet[int]:
        """Physical qubits this pattern touches (and never leaves)."""

    def enable_cycle_cache(self) -> "AtaPattern":
        """Materialize this pattern's full schedule on first iteration.

        Intended for the registry-cached, architecture-wide patterns that
        many compilations replay: the first ``iter_cycles`` walk pays the
        full generation cost once, every later walk is a list replay.  Not
        enabled on per-snapshot restricted patterns, whose executors
        usually stop early and would lose the lazy-generation win.
        """
        self._cache_cycles_on_iter = True
        return self

    def iter_cycles(self) -> Iterator[List[Action]]:
        """The schedule, replayed from the materialized cache when enabled."""
        cached = getattr(self, "_cycle_cache", None)
        if cached is not None:
            _CYCLE_COUNTER.hit()
            return iter(cached)
        if getattr(self, "_cache_cycles_on_iter", False):
            _CYCLE_COUNTER.miss()
            cached = [list(cycle) for cycle in self.cycles()]
            self._cycle_cache = cached
            return iter(cached)
        return self.cycles()

    def restrict(self, qubits: Iterable[int]) -> "AtaPattern":
        """A pattern covering at least ``qubits`` on a smaller region.

        The default is no restriction; structured subclasses narrow to the
        enclosing sub-line / sub-grid / unit range (the paper's "range
        detection", Section 6.3).
        """
        return self

    def _memoized_restrict(self, key, build) -> "AtaPattern":
        """Shared sub-pattern instances, keyed by bounding box.

        Range detection restricts the same architecture pattern to the
        same boxes over and over (once per candidate per region); sharing
        the instance lets per-instance caches (``_compiled_cycles``, the
        simulator's compiled arrays) amortise to one build per box.  The
        memo is FIFO-capped so adversarial workloads cannot grow it
        unboundedly.
        """
        memo = getattr(self, "_restrict_memo", None)
        if memo is None:
            memo = {}
            self._restrict_memo = memo
        sub = memo.get(key)
        if sub is None:
            if len(memo) >= 256:
                memo.pop(next(iter(memo)))
            sub = build()
            memo[key] = sub
        return sub


def merge_parallel(streams: List[Iterator[List[Action]]]
                   ) -> Iterator[List[Action]]:
    """Zip several disjoint-region cycle streams into combined cycles."""
    for cycle_parts in zip_longest(*streams, fillvalue=None):
        merged: List[Action] = []
        for part in cycle_parts:
            if part:
                merged.extend(part)
        yield merged


def pattern_length(pattern: AtaPattern) -> int:
    """Number of cycles in a pattern's full schedule."""
    return sum(1 for _ in pattern.cycles())
