"""Pattern abstraction for structured all-to-all (ATA) schedules.

A pattern is a deterministic sequence of *cycles*; each cycle is a list of
actions on physical qubits:

* ``("gate", u, v)`` — an opportunity to run a problem CPHASE between the
  logical qubits currently at ``u`` and ``v`` (the executor emits the gate
  only if that logical pair still needs one);
* ``("swap", u, v)`` — a structural SWAP that the pattern requires to keep
  its all-to-all guarantee.

Patterns are *position-based*: they guarantee that every pair of physical
positions in their region becomes adjacent with a gate opportunity, so any
initial logical placement works ("all initial mappings have the same
behavior", Section 4 Discussion).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import zip_longest
from typing import FrozenSet, Iterable, Iterator, List, Tuple

Action = Tuple[str, int, int]

GATE = "gate"
SWAP = "swap"


class AtaPattern(ABC):
    """A structured schedule achieving all-to-all interaction in a region."""

    @abstractmethod
    def cycles(self) -> Iterator[List[Action]]:
        """Yield the schedule, one cycle (parallel action list) at a time."""

    @property
    @abstractmethod
    def region(self) -> FrozenSet[int]:
        """Physical qubits this pattern touches (and never leaves)."""

    def restrict(self, qubits: Iterable[int]) -> "AtaPattern":
        """A pattern covering at least ``qubits`` on a smaller region.

        The default is no restriction; structured subclasses narrow to the
        enclosing sub-line / sub-grid / unit range (the paper's "range
        detection", Section 6.3).
        """
        return self


def merge_parallel(streams: List[Iterator[List[Action]]]
                   ) -> Iterator[List[Action]]:
    """Zip several disjoint-region cycle streams into combined cycles."""
    for cycle_parts in zip_longest(*streams, fillvalue=None):
        merged: List[Action] = []
        for part in cycle_parts:
            if part:
                merged.extend(part)
        yield merged


def pattern_length(pattern: AtaPattern) -> int:
    """Number of cycles in a pattern's full schedule."""
    return sum(1 for _ in pattern.cycles())
