"""Dispatch from a coupling graph to its structured ATA pattern.

``get_pattern`` memoizes the constructed pattern process-wide, keyed by
``(kind, n_qubits, frozen(metadata))`` — patterns are stateless schedules
over *physical positions*, so two architecturally identical devices share
one instance.  Cached patterns also materialize their cycle list on first
execution (:meth:`AtaPattern.enable_cycle_cache`), turning the per-compile
schedule generation into a list replay.  The batch engine leans on both
caches; counters are exposed through :func:`repro._telemetry.cache_info`.
"""

from __future__ import annotations

from typing import Dict

from .._telemetry import CacheCounter, register_cache
from ..arch.coupling import CouplingGraph
from ..exceptions import ArchitectureError
from .base import AtaPattern
from .cube_pattern import CubePattern
from .grid_pattern import OptimizedGridPattern
from .heavyhex_pattern import HeavyHexPattern
from .line_pattern import LinePattern
from .paired_units import HexagonPattern, SycamorePattern

_PATTERN_CACHE: Dict[tuple, AtaPattern] = {}
_PATTERN_CACHE_CAP = 128
_PATTERN_COUNTER = register_cache(
    "pattern", CacheCounter("pattern"),
    lambda: len(_PATTERN_CACHE), lambda: _PATTERN_CACHE.clear())


def _freeze(value):
    """Recursively convert architecture metadata into a hashable key part."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_freeze(v) for v in value)
    return value


def pattern_cache_key(coupling: CouplingGraph) -> tuple:
    """The memoization key: structural family, size, and metadata."""
    return (coupling.kind, coupling.n_qubits, _freeze(coupling.metadata))


def pattern_cache_info() -> Dict[str, int]:
    """Hits/misses/size of the process-local pattern cache."""
    info = _PATTERN_COUNTER.snapshot()
    info["size"] = len(_PATTERN_CACHE)
    return info


def clear_pattern_cache() -> None:
    """Drop every memoized pattern and zero the counters."""
    _PATTERN_CACHE.clear()
    _PATTERN_COUNTER.reset()


def _build_pattern(coupling: CouplingGraph) -> AtaPattern:
    kind = coupling.kind
    if kind == "line":
        return LinePattern(coupling.metadata["path"])
    if kind == "grid":
        return OptimizedGridPattern(coupling.metadata["units"])
    if kind == "sycamore":
        return SycamorePattern.for_architecture(coupling)
    if kind == "hexagon":
        return HexagonPattern.for_architecture(coupling)
    if kind == "heavyhex":
        return HeavyHexPattern.for_architecture(coupling)
    if kind == "cube":
        return CubePattern.for_architecture(coupling)
    path = coupling.metadata.get("path")
    if path and len(path) == coupling.n_qubits:
        return LinePattern(path)  # snake fallback for any traversable device
    raise ArchitectureError(
        f"no structured ATA pattern for architecture kind {kind!r}")


def get_pattern(coupling: CouplingGraph, cached: bool = True) -> AtaPattern:
    """The architecture-appropriate full-clique ATA pattern.

    With ``cached=True`` (default) the pattern instance is memoized by
    :func:`pattern_cache_key` and its cycle list materialized on first
    execution; pass ``cached=False`` for a fresh, fully lazy instance.
    """
    if not cached:
        return _build_pattern(coupling)
    key = pattern_cache_key(coupling)
    pattern = _PATTERN_CACHE.get(key)
    if pattern is None:
        _PATTERN_COUNTER.miss()
        pattern = _build_pattern(coupling).enable_cycle_cache()
        if len(_PATTERN_CACHE) >= _PATTERN_CACHE_CAP:
            _PATTERN_CACHE.pop(next(iter(_PATTERN_CACHE)))
        _PATTERN_CACHE[key] = pattern
    else:
        _PATTERN_COUNTER.hit()
    return pattern


def snake_pattern(coupling: CouplingGraph) -> LinePattern:
    """The snake-line ablation baseline: ignore structure, run the line
    pattern over a full Hamiltonian path (grid/line only)."""
    path = coupling.metadata.get("path")
    if not path or len(path) != coupling.n_qubits:
        raise ArchitectureError(
            f"{coupling.name} has no full Hamiltonian path for a snake")
    return LinePattern(path)
