"""Dispatch from a coupling graph to its structured ATA pattern."""

from __future__ import annotations

from ..arch.coupling import CouplingGraph
from ..exceptions import ArchitectureError
from .base import AtaPattern
from .cube_pattern import CubePattern
from .grid_pattern import GridCliquePattern, OptimizedGridPattern
from .heavyhex_pattern import HeavyHexPattern
from .line_pattern import LinePattern
from .paired_units import HexagonPattern, SycamorePattern


def get_pattern(coupling: CouplingGraph) -> AtaPattern:
    """The architecture-appropriate full-clique ATA pattern."""
    kind = coupling.kind
    if kind == "line":
        return LinePattern(coupling.metadata["path"])
    if kind == "grid":
        return OptimizedGridPattern(coupling.metadata["units"])
    if kind == "sycamore":
        return SycamorePattern.for_architecture(coupling)
    if kind == "hexagon":
        return HexagonPattern.for_architecture(coupling)
    if kind == "heavyhex":
        return HeavyHexPattern.for_architecture(coupling)
    if kind == "cube":
        return CubePattern.for_architecture(coupling)
    path = coupling.metadata.get("path")
    if path and len(path) == coupling.n_qubits:
        return LinePattern(path)  # snake fallback for any traversable device
    raise ArchitectureError(
        f"no structured ATA pattern for architecture kind {kind!r}")


def snake_pattern(coupling: CouplingGraph) -> LinePattern:
    """The snake-line ablation baseline: ignore structure, run the line
    pattern over a full Hamiltonian path (grid/line only)."""
    path = coupling.metadata.get("path")
    if not path or len(path) != coupling.n_qubits:
        raise ArchitectureError(
            f"{coupling.name} has no full Hamiltonian path for a snake")
    return LinePattern(path)
