"""Metric simulation of ATA-suffix execution — the lazy-candidate core.

The hybrid pipeline scores ~24 prefix+suffix candidates but keeps exactly
one; materialising every candidate circuit (Op objects, validated
appends, then full decompose/depth passes) dominates compile time at the
paper's 1024-qubit scale.  This module *simulates* a suffix execution:
it walks the same pattern cycles with the same skip/elide decisions as
:func:`repro.ata.executor.execute_pattern` (plus the same residual
completion), but streams ``(kind, u, v)`` events into a metric tracker
instead of building a circuit.  The tracker reproduces the three
selector inputs exactly:

* **depth** — the ASAP schedule length, replicating ``Circuit.depth``;
* **gate count** — fusion-aware CX count, replicating
  ``count_cx(unify=True)`` (adjacent CPHASE+SWAP on a pair = 3 CX);
* **esp** — when a noise model is present, the per-edge CX tally and
  success-probability product of ``NoiseModel.esp``, including its
  accumulation order (float sums are order-sensitive).

Two trackers exist: :class:`ExactTracker` mirrors ``fusion_units`` /
``esp`` op by op and is used whenever a noise model demands the esp
term; :class:`FastTracker` holds the same fusion state in flat arrays
and additionally accepts whole *disjoint* cycles as numpy batches.  For
a cycle whose actions touch pairwise-disjoint physical qubits, every
executor decision depends only on start-of-cycle state (distinct
positions hold distinct logicals, so no gate can affect another's
needed/degree reads), and depth/fusion updates commute — which is what
makes the batch path exact, not approximate.  Non-disjoint cycles (the
heavy-hex interleave shares an anchor qubit) always take the sequential
path with the executor's ``used``-set semantics.

The selected candidate is materialised afterwards by re-running the real
executor, so compiled circuits stay byte-identical; the golden fixtures
pin that, and ``tests/ata/test_simulate.py`` pins metric equality.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..arch.coupling import CouplingGraph
from ..arch.noise import NoiseModel
from ..ir.gates import CPHASE, CX, SWAP, Op, canonical_edges
from ..ir.mapping import Mapping
from .base import GATE, AtaPattern

#: Compact op-kind codes for event streams.
K_CPHASE = 0
K_SWAP = 1
K_CX = 2
K_OTHER = 3

_KIND_CODE = {CPHASE: K_CPHASE, SWAP: K_SWAP, CX: K_CX}

#: CX cost of a standalone (unfused) unit, by kind code.
_STANDALONE_CX = (2, 3, 1, 0)


def _code_of(kind: str) -> int:
    return _KIND_CODE.get(kind, K_OTHER)


class ExactTracker:
    """Op-by-op replica of depth / fused CX count / esp accumulation.

    Mirrors :func:`repro.ir.decompose.fusion_units` (pending pair,
    qubit->pair index, flush-on-conflict, first-held drain order) and
    :meth:`repro.arch.noise.NoiseModel.esp` (per-edge tallies in
    first-completion order) exactly, including dict insertion orders —
    esp is a float sum, so order changes would change the score.
    """

    supports_batch = False

    def __init__(self, n_qubits: int,
                 noise: Optional[NoiseModel] = None) -> None:
        self.n_qubits = n_qubits
        self.noise = noise
        self.busy: List[int] = [0] * n_qubits
        self.depth = 0
        self.cx = 0
        self.pending: Dict[Tuple[int, int], int] = {}
        self.qubit_to_pair: Dict[int, Tuple[int, int]] = {}
        self.edge_cx: Dict[Tuple[int, int], int] = {}
        self.n_single = 0

    def copy(self) -> "ExactTracker":
        clone = ExactTracker.__new__(ExactTracker)
        clone.n_qubits = self.n_qubits
        clone.noise = self.noise
        clone.busy = list(self.busy)
        clone.depth = self.depth
        clone.cx = self.cx
        clone.pending = dict(self.pending)
        clone.qubit_to_pair = dict(self.qubit_to_pair)
        clone.edge_cx = dict(self.edge_cx)
        clone.n_single = self.n_single
        return clone

    # -- unit bookkeeping (mirrors count_cx + cx_per_edge) -------------------

    def _emit_standalone(self, pair: Tuple[int, int], code: int) -> None:
        self.cx += _STANDALONE_CX[code]
        if self.noise is not None and code != K_OTHER:
            self.edge_cx[pair] = (self.edge_cx.get(pair, 0)
                                  + _STANDALONE_CX[code])

    def _flush(self, pair: Tuple[int, int]) -> None:
        code = self.pending.pop(pair)
        for q in pair:
            self.qubit_to_pair.pop(q, None)
        self._emit_standalone(pair, code)

    def feed2(self, code: int, u: int, v: int) -> None:
        """A two-qubit op on physical qubits ``(u, v)``."""
        bu = self.busy[u]
        bv = self.busy[v]
        end = (bu if bu >= bv else bv) + 1
        self.busy[u] = end
        self.busy[v] = end
        if end > self.depth:
            self.depth = end

        pair = (u, v) if u < v else (v, u)
        if code == K_CPHASE or code == K_SWAP:
            held = self.pending.get(pair)
            if held is not None and held != code:
                del self.pending[pair]
                for q in pair:
                    self.qubit_to_pair.pop(q, None)
                self.cx += 3
                if self.noise is not None:
                    self.edge_cx[pair] = self.edge_cx.get(pair, 0) + 3
                return
            # Flush conflicts in the op's *given* qubit order — that is
            # the order ``fusion_units`` walks ``op.qubits``, and flush
            # order decides esp's accumulation order.
            for q in (u, v):
                other = self.qubit_to_pair.get(q)
                if other is not None:
                    self._flush(other)
            self.pending[pair] = code
            self.qubit_to_pair[u] = pair
            self.qubit_to_pair[v] = pair
        else:
            for q in (u, v):
                other = self.qubit_to_pair.get(q)
                if other is not None:
                    self._flush(other)
            self._emit_standalone(pair, code)

    def feed_op(self, op: Op) -> None:
        """An arbitrary prefix op (greedy prefixes hold CPHASE/SWAP only)."""
        qubits = op.qubits
        if len(qubits) == 2:
            self.feed2(_code_of(op.kind), qubits[0], qubits[1])
            return
        start = max(self.busy[q] for q in qubits)
        end = start + 1
        for q in qubits:
            self.busy[q] = end
            other = self.qubit_to_pair.get(q)
            if other is not None:
                self._flush(other)
        if end > self.depth:
            self.depth = end
        if len(qubits) == 1:
            self.n_single += 1

    # -- results -------------------------------------------------------------

    def finalize(self) -> Tuple[int, int, Optional[float]]:
        """(depth, cx_count, esp) — non-destructive, fork-safe."""
        cx = self.cx
        esp: Optional[float] = None
        if self.noise is None:
            for pair in self.pending:
                cx += _STANDALONE_CX[self.pending[pair]]
        else:
            edge_cx = dict(self.edge_cx)
            for pair in self.pending:
                code = self.pending[pair]
                cx += _STANDALONE_CX[code]
                edge_cx[pair] = edge_cx.get(pair, 0) + _STANDALONE_CX[code]
            log_esp = 0.0
            cx_error = self.noise.cx_error
            for edge, n_cx in edge_cx.items():
                log_esp += n_cx * math.log1p(-cx_error[edge])
            log_esp += self.n_single * math.log1p(-self.noise.sq_error)
            esp = math.exp(log_esp)
        return self.depth, cx, esp


class FastTracker:
    """Array-state tracker for the no-noise scoring path.

    Depth and fused CX count only (the esp term needs ordered float
    accumulation, which is what :class:`ExactTracker` is for).  Fusion
    state lives in ``held_partner`` / ``held_kind`` arrays so a whole
    disjoint cycle updates in a handful of numpy operations; both totals
    are order-insensitive sums, so batching is exact.
    """

    supports_batch = True

    def __init__(self, n_qubits: int,
                 noise: Optional[NoiseModel] = None) -> None:
        assert noise is None, "FastTracker cannot produce the esp term"
        self.n_qubits = n_qubits
        self.busy = np.zeros(n_qubits, dtype=np.int64)
        self.depth = 0
        self.cx = 0
        self.held_partner = np.full(n_qubits, -1, dtype=np.int64)
        self.held_kind = np.zeros(n_qubits, dtype=np.int8)

    def copy(self) -> "FastTracker":
        clone = FastTracker.__new__(FastTracker)
        clone.n_qubits = self.n_qubits
        clone.busy = self.busy.copy()
        clone.depth = self.depth
        clone.cx = self.cx
        clone.held_partner = self.held_partner.copy()
        clone.held_kind = self.held_kind.copy()
        return clone

    def feed2(self, code: int, u: int, v: int) -> None:
        busy = self.busy
        bu = busy[u]
        bv = busy[v]
        end = (bu if bu >= bv else bv) + 1
        busy[u] = end
        busy[v] = end
        if end > self.depth:
            self.depth = end

        held = self.held_partner
        if code == K_CPHASE or code == K_SWAP:
            if held[u] == v and self.held_kind[u] != code:
                self.cx += 3
                held[u] = -1
                held[v] = -1
                return
            for q in (u, v):
                p = held[q]
                if p >= 0:
                    self.cx += _STANDALONE_CX[self.held_kind[q]]
                    held[q] = -1
                    held[p] = -1
            held[u] = v
            held[v] = u
            self.held_kind[u] = code
            self.held_kind[v] = code
        else:
            for q in (u, v):
                p = held[q]
                if p >= 0:
                    self.cx += _STANDALONE_CX[self.held_kind[q]]
                    held[q] = -1
                    held[p] = -1
            self.cx += _STANDALONE_CX[code]

    def feed_op(self, op: Op) -> None:
        qubits = op.qubits
        if len(qubits) == 2:
            self.feed2(_code_of(op.kind), qubits[0], qubits[1])
            return
        start = int(max(self.busy[q] for q in qubits))
        end = start + 1
        held = self.held_partner
        for q in qubits:
            self.busy[q] = end
            p = held[q]
            if p >= 0:
                self.cx += _STANDALONE_CX[self.held_kind[q]]
                held[q] = -1
                held[p] = -1
        if end > self.depth:
            self.depth = end

    def feed_batch(self, codes: np.ndarray, us: np.ndarray,
                   vs: np.ndarray) -> None:
        """One disjoint cycle's emitted two-qubit ops, all at once."""
        if not us.size:
            return
        busy = self.busy
        starts = np.maximum(busy[us], busy[vs]) + 1
        busy[us] = starts
        busy[vs] = starts
        top = int(starts.max())
        if top > self.depth:
            self.depth = top

        held = self.held_partner
        fuse = (held[us] == vs) & (self.held_kind[us] != codes)
        n_fused = int(np.count_nonzero(fuse))
        if n_fused:
            self.cx += 3 * n_fused
            held[us[fuse]] = -1
            held[vs[fuse]] = -1
        rest = ~fuse
        ru = us[rest]
        rv = vs[rest]
        # Flush every pending pair touching a non-fused op's qubits —
        # each such pair exactly once, even when both its endpoints are
        # touched by (different) ops of this cycle.
        qs = np.concatenate((ru, rv))
        ps = held[qs]
        hit = ps >= 0
        if hit.any():
            a = qs[hit]
            b = ps[hit]
            lo = np.minimum(a, b)
            hi = np.maximum(a, b)
            keys = np.unique(lo * np.int64(self.n_qubits) + hi)
            flo = keys // self.n_qubits
            fhi = keys % self.n_qubits
            self.cx += int(
                np.take(_STANDALONE_CX_ARR, self.held_kind[flo]).sum())
            held[flo] = -1
            held[fhi] = -1
        held[ru] = rv
        held[rv] = ru
        self.held_kind[ru] = codes[rest]
        self.held_kind[rv] = codes[rest]

    def finalize(self) -> Tuple[int, int, Optional[float]]:
        held = self.held_partner
        mine = np.nonzero(held > np.arange(self.n_qubits))[0]
        cx = self.cx + int(
            np.take(_STANDALONE_CX_ARR, self.held_kind[mine]).sum())
        return self.depth, cx, None


_STANDALONE_CX_ARR = np.array(_STANDALONE_CX, dtype=np.int64)


def make_tracker(n_qubits: int,
                 noise: Optional[NoiseModel] = None):
    """The cheapest tracker that can produce the selector's metrics."""
    if noise is None:
        return FastTracker(n_qubits)
    return ExactTracker(n_qubits, noise)


# -- compiled pattern cycles -------------------------------------------------


def _compile_cycle(cycle) -> Tuple:
    """One cycle's ``(codes, us, vs, disjoint)`` arrays.

    ``disjoint`` marks cycles whose actions touch pairwise-distinct
    qubits (every structural cycle except the heavy-hex interleaves).
    Disjoint cycles batch without conflict resolution; for the rest the
    simulator still vectorises the candidate tests against pre-cycle
    state — exact because any mid-cycle state change comes from an
    *emitted* action, which marks its positions used, so a later action
    that could observe the change is blocked by the executor's ``used``
    set regardless — and resolves the (few) surviving candidates with an
    in-order sweep.
    """
    n = len(cycle)
    codes = np.fromiter(
        (K_CPHASE if a == GATE else K_SWAP for a, _, _ in cycle),
        dtype=np.int8, count=n)
    us = np.fromiter((u for _, u, _ in cycle), dtype=np.int64, count=n)
    vs = np.fromiter((v for _, _, v in cycle), dtype=np.int64, count=n)
    seen: Set[int] = set()
    disjoint = True
    for _, u, v in cycle:
        if u in seen or v in seen:
            disjoint = False
            break
        seen.add(u)
        seen.add(v)
    return (codes, us, vs, disjoint)


def compiled_cycles(pattern: AtaPattern) -> List[Tuple]:
    """Per-cycle ``(codes, us, vs, bounds)`` arrays, cached on the pattern.

    Memoised on the instance — combined with the restrict memo and the
    registry pattern cache, repeated candidate scoring against the same
    (sub-)pattern costs O(1) lookups.  Patterns exposing a
    ``_compiled_plan`` (a ``(distinct cycles, schedule)`` pair — the
    structured schedules repeat a handful of distinct cycles) compile
    each distinct cycle once and replay the arrays by reference;
    everything else falls back to walking ``iter_cycles``.
    """
    compiled = getattr(pattern, "_compiled_cycles", None)
    if compiled is not None:
        return compiled
    plan = getattr(pattern, "_compiled_plan", None)
    if plan is not None:
        distinct, schedule = plan()
        built = [_compile_cycle(cycle) for cycle in distinct]
        compiled = [built[index] for index in schedule]
    else:
        compiled = [_compile_cycle(cycle)
                    for cycle in pattern.iter_cycles()]
    pattern._compiled_cycles = compiled  # type: ignore[attr-defined]
    return compiled


# -- suffix simulation -------------------------------------------------------


class _SimState:
    """Flat mapping / pending-edge state for one suffix simulation."""

    def __init__(self, mapping: Mapping,
                 remaining: Set[Tuple[int, int]]) -> None:
        n_log = mapping.n_logical
        n_phys = mapping.n_physical
        self.n_log = n_log
        self.p2l = np.full(n_phys, -1, dtype=np.int64)
        self.l2p = np.full(n_log, -1, dtype=np.int64)
        for logical, physical in enumerate(mapping.log_to_phys):
            self.p2l[physical] = logical
            self.l2p[logical] = physical
        self.needed = np.zeros((n_log, n_log), dtype=bool)
        self.degree = np.zeros(n_log, dtype=np.int64)
        for a, b in remaining:
            self.needed[a, b] = True
            self.needed[b, a] = True
            self.degree[a] += 1
            self.degree[b] += 1


def _simulate_region(state: _SimState, pattern: AtaPattern,
                     edges: Set[Tuple[int, int]], tracker
                     ) -> List[Tuple[int, int]]:
    """Replay one region's pattern execution into the tracker.

    Mirrors :func:`repro.ata.executor.execute_pattern` decision for
    decision; returns the region's residual pairs in sorted order (the
    order ``greedy_completion`` consumes them).
    """
    count = len(edges)
    if not count:
        return []
    p2l = state.p2l
    needed = state.needed
    degree = state.degree
    batch_ok = tracker.supports_batch

    for codes, us, vs, disjoint in compiled_cycles(pattern):
        if not count:
            break
        if batch_ok:
            lu = p2l[us]
            lv = p2l[vs]
            real = (lu >= 0) & (lv >= 0)
            gate_emit = real & (codes == K_CPHASE)
            if gate_emit.any():
                gate_emit[gate_emit] = needed[lu[gate_emit],
                                              lv[gate_emit]]
            swap_emit = codes == K_SWAP
            if swap_emit.any():
                au = (lu >= 0) & swap_emit
                av = (lv >= 0) & swap_emit
                active = np.zeros(len(codes), dtype=bool)
                active[au] = degree[lu[au]] > 0
                active[av] |= degree[lv[av]] > 0
                swap_emit &= active
            if not disjoint:
                # Candidate flags above are exact against pre-cycle
                # state; all that's left of the executor's sequential
                # semantics is first-come qubit reservation.  Resolve it
                # over the surviving candidates only (typically a
                # handful for the heavy-hex interleaves).
                cand = np.nonzero(gate_emit | swap_emit)[0]
                if len(cand) > 1:
                    cu = us[cand].tolist()
                    cv = vs[cand].tolist()
                    taken: Set[int] = set()
                    for pos, u, v in zip(cand.tolist(), cu, cv):
                        if u in taken or v in taken:
                            gate_emit[pos] = False
                            swap_emit[pos] = False
                        else:
                            taken.add(u)
                            taken.add(v)
            emit = gate_emit | swap_emit
            if not emit.any():
                continue
            # Commit gates: clear needed pairs, drop degrees.
            if gate_emit.any():
                glu = lu[gate_emit]
                glv = lv[gate_emit]
                needed[glu, glv] = False
                needed[glv, glu] = False
                degree[glu] -= 1
                degree[glv] -= 1
                count -= int(np.count_nonzero(gate_emit))
            # Commit swaps: exchange occupants.
            if swap_emit.any():
                su = us[swap_emit]
                sv = vs[swap_emit]
                slu = p2l[su].copy()
                slv = p2l[sv].copy()
                p2l[su] = slv
                p2l[sv] = slu
                moved = slu >= 0
                state.l2p[slu[moved]] = sv[moved]
                moved = slv >= 0
                state.l2p[slv[moved]] = su[moved]
            tracker.feed_batch(codes[emit], us[emit], vs[emit])
        else:
            used: Set[int] = set()
            for k in range(len(codes)):
                u = int(us[k])
                v = int(vs[k])
                if codes[k] == K_CPHASE:
                    lu = int(p2l[u])
                    lv = int(p2l[v])
                    if lu < 0 or lv < 0:
                        continue
                    if (needed[lu, lv] and u not in used
                            and v not in used):
                        tracker.feed2(K_CPHASE, u, v)
                        needed[lu, lv] = False
                        needed[lv, lu] = False
                        degree[lu] -= 1
                        degree[lv] -= 1
                        count -= 1
                        used.add(u)
                        used.add(v)
                else:
                    if u in used or v in used:
                        continue
                    lu = int(p2l[u])
                    lv = int(p2l[v])
                    if ((lu < 0 or degree[lu] <= 0)
                            and (lv < 0 or degree[lv] <= 0)):
                        continue
                    tracker.feed2(K_SWAP, u, v)
                    p2l[u] = lv
                    p2l[v] = lu
                    if lu >= 0:
                        state.l2p[lu] = v
                    if lv >= 0:
                        state.l2p[lv] = u
                    used.add(u)
                    used.add(v)
    if not count:
        return []
    return sorted(e for e in edges if state.needed[e[0], e[1]])


def _simulate_completion(state: _SimState, coupling: CouplingGraph,
                         residual: List[Tuple[int, int]], tracker) -> None:
    """Replica of :func:`repro.ata.executor.greedy_completion`."""
    for lu, lv in residual:
        pu = int(state.l2p[lu])
        pv = int(state.l2p[lv])
        path = coupling.shortest_path(pu, pv)
        for k in range(len(path) - 1, 1, -1):
            a, b = path[k], path[k - 1]
            tracker.feed2(K_SWAP, a, b)
            la = int(state.p2l[a])
            lb = int(state.p2l[b])
            state.p2l[a] = lb
            state.p2l[b] = la
            if la >= 0:
                state.l2p[la] = b
            if lb >= 0:
                state.l2p[lb] = a
        tracker.feed2(K_CPHASE, path[0], path[1])
        state.needed[lu, lv] = False
        state.needed[lv, lu] = False
        state.degree[lu] -= 1
        state.degree[lv] -= 1


def simulate_suffix(
    coupling: CouplingGraph,
    pattern: AtaPattern,
    mapping: Mapping,
    remaining: Iterable[Tuple[int, int]],
    tracker,
    use_range_detection: bool = True,
) -> None:
    """Stream the metrics of ``ata_suffix`` into ``tracker``.

    The exact event sequence of
    :func:`repro.compiler.prediction.ata_suffix` — range detection, per
    region pattern execution, then residual completion — without
    constructing the circuit.
    """
    from ..compiler.prediction import detect_ranges

    remaining = set(canonical_edges(remaining))
    if not remaining:
        return
    if use_range_detection:
        plan = detect_ranges(pattern, mapping, remaining)
    else:
        plan = [(pattern, set(remaining))]

    state = _SimState(mapping, remaining)
    for region_pattern, edges in plan:
        residual = _simulate_region(state, region_pattern, edges, tracker)
        if residual:
            _simulate_completion(state, coupling, residual, tracker)


def candidate_metrics(
    coupling: CouplingGraph,
    pattern: AtaPattern,
    mapping: Mapping,
    remaining: Iterable[Tuple[int, int]],
    noise: Optional[NoiseModel] = None,
    use_range_detection: bool = True,
    prefix_tracker=None,
) -> Tuple[int, int, Optional[float]]:
    """(depth, cx_count, esp) of prefix + ATA suffix, without a circuit.

    ``prefix_tracker`` carries the already-streamed greedy prefix (fork
    it per candidate); omitted, the suffix is scored from scratch — the
    pure-ATA candidate ``cc0``.
    """
    tracker = (prefix_tracker if prefix_tracker is not None
               else make_tracker(coupling.n_qubits, noise))
    simulate_suffix(coupling, pattern, mapping, remaining, tracker,
                    use_range_detection=use_range_detection)
    return tracker.finalize()
