"""The 2xUnit bipartite all-to-all pattern for the 2D grid — Fig 8 / Fig 9.

Two adjacent rows ``A`` and ``B`` of length ``N``.  Each iteration runs one
computation cycle on all vertical pairs, then one swap cycle where row A
performs odd-even (or even-odd) swaps while row B simultaneously performs
the complementary parity::

    for k in range(N):
        start = k % 2
        CPHASE(A_i, B_i)    for all i
        SWAP(A_i, A_i+1)    for i = start, start+2, ...
        SWAP(B_i, B_i+1)    for i = 1-start, 3-start, ...

After ``N`` iterations (``2N`` cycles) every top-row occupant has met every
bottom-row occupant exactly once, each row's occupants end reversed, and —
crucially for the grid composition — no occupant ever leaves its row.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Sequence

from .base import GATE, SWAP, Action, AtaPattern


class BipartitePattern(AtaPattern):
    """Bipartite ATA between two parallel physical rows of equal length.

    Requires couplings ``(row_a[i], row_a[i+1])``, ``(row_b[i], row_b[i+1])``
    and the vertical rungs ``(row_a[i], row_b[i])``.
    """

    def __init__(self, row_a: Sequence[int], row_b: Sequence[int]) -> None:
        if len(row_a) != len(row_b):
            raise ValueError("bipartite pattern rows must have equal length")
        overlap = set(row_a) & set(row_b)
        if overlap:
            raise ValueError(f"rows share qubits: {sorted(overlap)}")
        self.row_a = list(row_a)
        self.row_b = list(row_b)

    @property
    def region(self) -> FrozenSet[int]:
        return frozenset(self.row_a) | frozenset(self.row_b)

    def cycles(self) -> Iterator[List[Action]]:
        a, b = self.row_a, self.row_b
        n = len(a)
        for k in range(n):
            start = k % 2
            yield [(GATE, a[i], b[i]) for i in range(n)]
            swaps: List[Action] = [
                (SWAP, a[i], a[i + 1]) for i in range(start, n - 1, 2)]
            swaps += [
                (SWAP, b[i], b[i + 1]) for i in range(1 - start, n - 1, 2)]
            yield swaps

    def __repr__(self) -> str:
        return f"BipartitePattern(n={len(self.row_a)})"
