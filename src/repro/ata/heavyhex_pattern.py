"""Heavy-hex ATA: two passes of the line pattern over the longest path with
interleaved path<->off-path interactions — Section 5.1 / Appendix C.

Cycle structure:

* **Pass 1** — the line pattern runs over the longest path.  After every
  swap layer an *interleave* cycle offers a gate opportunity between each
  off-path (interior bridge) qubit and its on-path anchors; since path
  occupants keep moving, each anchor position sees a stream of different
  logical qubits, covering most path-to-off-path pairs.
* **Exchange** — one SWAP cycle moves every off-path occupant onto the path
  (each bridge swaps with one anchor; anchors are distinct by construction).
* **Pass 2** — the line pattern again, with interleaves, covering
  off-path-to-off-path pairs and the remaining path-to-off-path pairs.

Appendix C argues two passes suffice; we additionally report any residual
pairs so the executor can finish them with greedy routing, making the
schedule unconditionally correct (tests observe empty residuals for all
generated heavy-hex instances; tiny residuals can occur on irregular
devices like Mumbai).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Sequence

from .base import GATE, SWAP, Action, AtaPattern
from .line_pattern import LinePattern


class HeavyHexPattern(AtaPattern):
    """Two-pass longest-path schedule for heavy-hex style devices.

    Parameters
    ----------
    path:
        The longest path (from architecture metadata).
    off_path:
        Mapping from each off-path qubit to its on-path anchor qubits.
    """

    def __init__(self, path: Sequence[int],
                 off_path: Dict[int, List[int]]) -> None:
        self.path = list(path)
        self.off_path = {node: list(anchors)
                         for node, anchors in sorted(off_path.items())}

    @classmethod
    def for_architecture(cls, coupling) -> "HeavyHexPattern":
        return cls(coupling.metadata["path"], coupling.metadata["off_path"])

    @property
    def region(self) -> FrozenSet[int]:
        return frozenset(self.path) | frozenset(self.off_path)

    def _interleave(self) -> List[Action]:
        return [(GATE, node, anchor)
                for node, anchors in self.off_path.items()
                for anchor in anchors]

    def _exchange(self) -> List[Action]:
        return [(SWAP, node, anchors[0])
                for node, anchors in self.off_path.items()]

    def _pass_cycles(self) -> Iterator[List[Action]]:
        """One line-pattern pass with an interleave after each swap cycle."""
        if self.off_path:
            yield self._interleave()
        for index, cycle in enumerate(LinePattern(self.path).cycles()):
            yield cycle
            is_swap_cycle = index % 2 == 1
            if is_swap_cycle and self.off_path:
                yield self._interleave()

    def cycles(self) -> Iterator[List[Action]]:
        yield from self._pass_cycles()
        if self.off_path:
            yield self._exchange()
            yield from self._pass_cycles()

    def _compiled_plan(self):
        """(distinct cycles, schedule indices) — see ``repro.ata.simulate``.

        Both passes replay the line pattern's four distinct cycles; the
        interleave and exchange cycles are constant, so six distinct
        cycles cover the whole two-pass schedule.
        """
        line_distinct, line_schedule = LinePattern(self.path)._compiled_plan()
        if not self.off_path:
            return line_distinct, line_schedule
        distinct = list(line_distinct) + [self._interleave(),
                                          self._exchange()]
        interleave_index = len(line_distinct)
        exchange_index = interleave_index + 1
        pass_schedule = [interleave_index]
        for position, index in enumerate(line_schedule):
            pass_schedule.append(index)
            if position % 2 == 1:  # after each swap cycle
                pass_schedule.append(interleave_index)
        return distinct, pass_schedule + [exchange_index] + pass_schedule

    def restrict(self, qubits) -> "HeavyHexPattern":
        """Narrow to a path segment when no off-path qubit is involved."""
        wanted = set(qubits)
        if wanted & set(self.off_path):
            return self
        index = getattr(self, "_position_index", None)
        if index is None:
            index = {q: i for i, q in enumerate(self.path)}
            self._position_index = index
        positions = [index[q] for q in wanted]  # det: ok — min/max only
        lo, hi = min(positions), max(positions)
        if lo == 0 and hi == len(self.path) - 1 and not self.off_path:
            return self
        # Off-path anchors inside the segment stay available for interleaves
        # of pairs that might still need them; with no off-path qubits in the
        # region they are unnecessary, so drop them.
        return self._memoized_restrict(
            (lo, hi), lambda: HeavyHexPattern(self.path[lo:hi + 1], {}))

    def __repr__(self) -> str:
        return (f"HeavyHexPattern(path={len(self.path)}, "
                f"off_path={len(self.off_path)})")
