"""Structured all-to-all (ATA) swap-network patterns — Section 3.

:func:`get_pattern` maps an architecture to its clique schedule;
:func:`repro.ata.executor.execute_pattern` turns a schedule into a circuit
for an arbitrary (sub-clique) problem graph.
"""

from .base import GATE, SWAP, Action, AtaPattern, merge_parallel, pattern_length
from .bipartite_pattern import BipartitePattern
from .cube_pattern import CubePattern
from .executor import compile_with_pattern, execute_pattern, greedy_completion
from .grid_pattern import GridCliquePattern, OptimizedGridPattern
from .heavyhex_pattern import HeavyHexPattern
from .line_pattern import LinePattern
from .paired_units import HexagonPattern, SycamorePattern
from .registry import get_pattern, snake_pattern

__all__ = [
    "Action",
    "GATE",
    "SWAP",
    "AtaPattern",
    "merge_parallel",
    "pattern_length",
    "LinePattern",
    "BipartitePattern",
    "GridCliquePattern",
    "OptimizedGridPattern",
    "CubePattern",
    "SycamorePattern",
    "HexagonPattern",
    "HeavyHexPattern",
    "get_pattern",
    "snake_pattern",
    "execute_pattern",
    "compile_with_pattern",
    "greedy_completion",
]
