"""Pattern executor: turn an abstract ATA schedule into a compiled circuit.

The executor walks a pattern's cycles with a live logical<->physical
mapping, emits a CPHASE for every ``gate`` opportunity whose logical pair
still needs one ("skip the gates that are not in the practical circuit",
Section 5.2), emits every structural SWAP, and stops as soon as no needed
edges remain — so trailing pattern cycles cost nothing.

Any residual edges a pattern could not cover (possible only for heavy-hex
on irregular devices) are finished by :func:`greedy_completion`, keeping
the overall compilation unconditionally correct.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..exceptions import CompilationError
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge, canonical_edges
from ..ir.mapping import Mapping
from .base import GATE, AtaPattern


def execute_pattern(
    pattern: AtaPattern,
    initial_mapping: Mapping,
    edges: Iterable[Tuple[int, int]],
    gamma: float = 0.0,
    circuit: Optional[Circuit] = None,
    n_physical: Optional[int] = None,
) -> Tuple[Circuit, Mapping, Set[Tuple[int, int]]]:
    """Run a pattern until all ``edges`` (logical pairs) are executed.

    Returns ``(circuit, final_mapping, residual_edges)``.  ``circuit`` may
    be passed in to append onto an existing prefix.
    """
    mapping = initial_mapping.copy()
    needed: Set[Tuple[int, int]] = set(canonical_edges(edges))
    if circuit is None:
        circuit = Circuit(n_physical or mapping.n_physical)
    if not needed:
        return circuit, mapping, needed

    # Remaining problem degree per logical qubit.  A SWAP whose occupants
    # are both finished (or spare) is semantically inert — every future
    # gate opportunity involving them is skipped anyway — so it is elided.
    # Unfinished qubits' trajectories are unaffected: none of *their*
    # swaps are ever skipped.
    degree: dict = {}
    for u, v in needed:  # det: ok — counts only; degree is never iterated
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1

    def active(logical) -> bool:
        return logical is not None and degree.get(logical, 0) > 0

    for cycle in pattern.iter_cycles():
        if not needed:
            break
        used: Set[int] = set()
        for action, u, v in cycle:
            if action == GATE:
                lu, lv = mapping.logical(u), mapping.logical(v)
                if lu is None or lv is None:
                    continue
                pair = canonical_edge(lu, lv)
                if pair in needed and u not in used and v not in used:
                    circuit.append(Op.cphase(u, v, gamma, tag=pair))
                    needed.discard(pair)
                    degree[lu] -= 1
                    degree[lv] -= 1
                    used.add(u)
                    used.add(v)
            else:  # structural swap
                if u in used or v in used:
                    continue
                lu, lv = mapping.logical(u), mapping.logical(v)
                if not active(lu) and not active(lv):
                    continue  # moving two finished occupants is a no-op
                circuit.append(Op.swap(u, v))
                mapping.swap_physical(u, v)
                used.add(u)
                used.add(v)
    return circuit, mapping, needed


def greedy_completion(
    coupling: CouplingGraph,
    circuit: Circuit,
    mapping: Mapping,
    residual: Set[Tuple[int, int]],
    gamma: float = 0.0,
) -> None:
    """Route any residual logical pairs with plain shortest-path SWAPs.

    Mutates ``circuit`` and ``mapping`` in place.  Intended for the rare
    leftovers of the heavy-hex two-pass schedule; correctness matters here,
    not optimality.
    """
    for pair in sorted(residual):
        lu, lv = pair
        pu, pv = mapping.physical(lu), mapping.physical(lv)
        path = coupling.shortest_path(pu, pv)
        # Walk lv's occupant down the path until adjacent to lu.
        for k in range(len(path) - 1, 1, -1):
            circuit.append(Op.swap(path[k], path[k - 1]))
            mapping.swap_physical(path[k], path[k - 1])
        circuit.append(Op.cphase(path[0], path[1], gamma, tag=pair))
    residual.clear()


def compile_with_pattern(
    coupling: CouplingGraph,
    pattern: AtaPattern,
    edges: Iterable[Tuple[int, int]],
    initial_mapping: Mapping,
    gamma: float = 0.0,
) -> Tuple[Circuit, Mapping]:
    """Pattern execution plus residual completion; always succeeds."""
    circuit, final_mapping, residual = execute_pattern(
        pattern, initial_mapping, edges, gamma=gamma,
        n_physical=coupling.n_qubits)
    if residual:
        greedy_completion(coupling, circuit, final_mapping, residual, gamma)
    if residual:
        raise CompilationError(f"{len(residual)} edges left unrouted")
    return circuit, final_mapping
