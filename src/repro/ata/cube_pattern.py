"""Clique ATA for the 3D cubic lattice — the Fig 13 generalisation.

Planes (z-slices) are the top-level units.  Two adjacent planes have a
joint Hamiltonian path — snake through the lower plane, hop the vertical
link at its last site, snake back through the upper plane — whose two
contiguous halves are exactly the two planes.  Running the line pattern
with reversal over this path therefore covers every pair inside the pair
of planes *and* exchanges their populations, so the usual unit-level
odd-even transposition over the ``nz`` planes covers all pairs in the
lattice with linear depth (~4n cycles).

This demonstrates the paper's claim that the methodology is
dimension-agnostic: the 3D solution reuses the 1D solution verbatim, two
levels up.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from ..arch.cube import plane_snake
from .paired_units import _UnitTranspositionPattern


class CubePattern(_UnitTranspositionPattern):
    """Plane-transposition schedule for an ``nx x ny x nz`` lattice."""

    def __init__(self, dims: Tuple[int, int, int]) -> None:
        self.dims = dims

    @classmethod
    def for_architecture(cls, coupling) -> "CubePattern":
        return cls(tuple(coupling.metadata["dims"]))

    @property
    def region(self) -> FrozenSet[int]:
        nx, ny, nz = self.dims
        return frozenset(range(nx * ny * nz))

    def _n_units(self) -> int:
        return self.dims[2]

    def _pair_path(self, unit_index: int) -> List[int]:
        nx, ny, _ = self.dims
        z = unit_index
        lower = plane_snake(z, nx, ny)
        upper = plane_snake(z + 1, nx, ny)
        # The vertical link sits above the snake's last site; walk the
        # upper plane's snake backwards from that same site.
        return lower + list(reversed(upper))

    def _single_unit_path(self) -> List[int]:
        nx, ny, _ = self.dims
        return plane_snake(0, nx, ny)
