"""Depth-optimal solver for small instances (Section 4).

:func:`solve_depth_optimal` is the fast engine (A* / IDA* over bitmask
states with an incremental heuristic — see :mod:`repro.solver.astar`);
:func:`solve_depth_optimal_reference` is the frozen pre-refactor
implementation kept as the benchmark baseline and cross-check oracle.
"""

from .astar import (STRATEGIES, SolverResult, SolverStats,
                    solve_depth_optimal)
from .heuristic import heuristic, pair_cost
from .reference import solve_depth_optimal_reference

__all__ = [
    "solve_depth_optimal",
    "solve_depth_optimal_reference",
    "SolverResult",
    "SolverStats",
    "STRATEGIES",
    "heuristic",
    "pair_cost",
]
