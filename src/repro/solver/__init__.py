"""Depth-optimal A* solver for small instances (Section 4)."""

from .astar import SolverResult, solve_depth_optimal
from .heuristic import heuristic, pair_cost

__all__ = ["solve_depth_optimal", "SolverResult", "heuristic", "pair_cost"]
