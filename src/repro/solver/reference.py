"""The pre-refactor depth-optimal A* solver, frozen as a baseline.

This is the original :mod:`repro.solver.astar` implementation, kept
byte-for-byte in behaviour (same transition system, same O(d) Definition-3
scan, same full power-set cycle enumeration, same ``frozenset`` state
keys) so that:

* ``scripts/bench_solver.py`` can report the speedup of the rewritten
  engine against a stable baseline (``BENCH_solver.json``), and
* ``tests/solver/test_invariants.py`` can cross-check that the fast
  solver returns identical depths on the paper's discovery instances.

Do not optimize this module — its slowness *is* the baseline.  The only
deltas from the historical code are type annotations (``repro.solver`` is
on the strict-mypy allowlist) and deterministic iteration order where the
determinism lint demands it.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..arch.coupling import CouplingGraph
from ..exceptions import SolverError, SpecificationError
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge, canonical_edges
from ..ir.mapping import Mapping
from .astar import SolverResult, SolverStats

Action = Tuple[str, int, int]  # ("gate"|"swap", physical u, physical v)
_StateKey = Tuple[Tuple[Optional[int], ...], FrozenSet[Tuple[int, int]]]


def _pair_cost_legacy(deg_i: int, deg_j: int, distance: int) -> int:
    """The original O(d) Definition-3 scan (the closed form's test oracle)."""
    if distance < 1:
        raise SpecificationError("pair with a remaining gate must have distance >= 1")
    swaps_needed = distance - 1
    best: Optional[int] = None
    for x in range(swaps_needed + 1):
        cost = max(deg_i + x, deg_j + swaps_needed - x)
        if best is None or cost < best:
            best = cost
    assert best is not None
    return best


def solve_depth_optimal_reference(
    coupling: CouplingGraph,
    edges: Sequence[Tuple[int, int]],
    initial_mapping: Optional[Mapping] = None,
    gamma: float = 0.0,
    max_nodes: int = 500_000,
    prune_unhelpful_swaps: bool = True,
    use_heuristic: bool = True,
    minimize_swaps: bool = False,
) -> SolverResult:
    """The historical solver; see :func:`repro.solver.solve_depth_optimal`
    for parameter semantics (this baseline has no ``strategy`` knob)."""
    required = frozenset(canonical_edges(edges))
    n_logical = 1 + max((q for e in sorted(required) for q in e), default=0)
    if initial_mapping is None:
        initial_mapping = Mapping.trivial(n_logical, coupling.n_qubits)
    mapping = initial_mapping

    dist = coupling.distance_matrix
    hw_edges = sorted(coupling.edges)

    # Node bookkeeping: states keyed by (occupancy, remaining edge set).
    start_key: _StateKey = (mapping.as_tuple(), required)
    best_g: Dict[_StateKey, int] = {start_key: 0}
    parents: Dict[_StateKey, Tuple[Optional[_StateKey],
                                   Tuple[Action, ...]]] = {
        start_key: (None, ())}

    # Lexicographic (depth, swaps) objective via scaled costs: each cycle
    # costs SCALE plus its swap count; swaps per cycle < SCALE, so depth
    # dominates.  SCALE = 1 recovers plain depth optimisation.
    scale = coupling.n_qubits + 1 if minimize_swaps else 1

    tie = count()
    start_h = _h(required, mapping.log_to_phys, dist) if use_heuristic else 0
    queue: List[Tuple[int, int, int, _StateKey]] = [
        (start_h * scale, 0, next(tie), start_key)]
    expanded = 0

    while queue:
        _f, g, _, key = heapq.heappop(queue)
        occupancy, remaining = key
        if g > best_g.get(key, g):
            continue
        if not remaining:
            circuit, n_cycles = _reconstruct(key, parents,
                                             coupling.n_qubits, gamma)
            return SolverResult(
                circuit=circuit,
                depth=n_cycles,
                nodes_expanded=expanded,
                initial_mapping=initial_mapping,
                stats=SolverStats(strategy="reference",
                                  nodes_expanded=expanded),
            )
        expanded += 1
        if expanded > max_nodes:
            raise SolverError(
                f"A* exceeded its node budget of {max_nodes}; "
                f"instance too large for the optimal solver")

        log_to_phys = _invert(occupancy, initial_mapping.n_logical)
        actions = _candidate_actions(
            hw_edges, occupancy, remaining, log_to_phys, dist,
            prune_unhelpful_swaps)

        for action_set in _conflict_free_subsets(actions):
            new_occupancy = list(occupancy)
            new_remaining = set(remaining)
            n_swaps = 0
            for action, u, v in action_set:
                if action == "gate":
                    lu, lv = new_occupancy[u], new_occupancy[v]
                    assert lu is not None and lv is not None
                    new_remaining.discard(canonical_edge(lu, lv))
                else:
                    new_occupancy[u], new_occupancy[v] = (
                        new_occupancy[v], new_occupancy[u])
                    n_swaps += 1
            child_key: _StateKey = (tuple(new_occupancy),
                                    frozenset(new_remaining))
            child_g = g + scale + (n_swaps if minimize_swaps else 0)
            if child_g >= best_g.get(child_key, child_g + 1):
                continue
            best_g[child_key] = child_g
            parents[child_key] = (key, tuple(action_set))
            if use_heuristic:
                child_l2p = _invert(child_key[0], initial_mapping.n_logical)
                child_h = _h(child_key[1], child_l2p, dist)
            else:
                child_h = 0
            heapq.heappush(
                queue,
                (child_g + child_h * scale, child_g, next(tie), child_key))

    raise SolverError("search space exhausted without finding a schedule")


def _h(remaining: FrozenSet[Tuple[int, int]], log_to_phys: Sequence[int],
       dist: np.ndarray) -> int:
    degrees: Dict[int, int] = {}
    for u, v in sorted(remaining):
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    h = 0
    for u, v in sorted(remaining):
        cost = _pair_cost_legacy(degrees[u], degrees[v],
                                 int(dist[log_to_phys[u], log_to_phys[v]]))
        if cost > h:
            h = cost
    return h


def _invert(occupancy: Tuple[Optional[int], ...],
            n_logical: int) -> List[int]:
    log_to_phys = [0] * n_logical
    for phys, logical in enumerate(occupancy):
        if logical is not None and logical < n_logical:
            log_to_phys[logical] = phys
    return log_to_phys


def _candidate_actions(
    hw_edges: List[Tuple[int, int]],
    occupancy: Tuple[Optional[int], ...],
    remaining: FrozenSet[Tuple[int, int]],
    log_to_phys: List[int],
    dist: np.ndarray,
    prune_swaps: bool,
) -> List[Action]:
    actions: List[Action] = []
    for u, v in hw_edges:
        lu, lv = occupancy[u], occupancy[v]
        if (lu is not None and lv is not None
                and canonical_edge(lu, lv) in remaining):
            actions.append(("gate", u, v))
        if prune_swaps and not _swap_helps(u, v, occupancy, remaining,
                                           log_to_phys, dist):
            continue
        actions.append(("swap", u, v))
    return actions


def _swap_helps(
    u: int,
    v: int,
    occupancy: Tuple[Optional[int], ...],
    remaining: FrozenSet[Tuple[int, int]],
    log_to_phys: List[int],
    dist: np.ndarray,
) -> bool:
    """Does swapping (u, v) strictly reduce some remaining pair distance?"""
    for a, b in ((u, v), (v, u)):
        qubit = occupancy[a]
        if qubit is None:
            continue
        for x, y in sorted(remaining):
            if x == qubit:
                partner = y
            elif y == qubit:
                partner = x
            else:
                continue
            p = log_to_phys[partner]
            if dist[b, p] < dist[a, p]:
                return True
    return False


def _conflict_free_subsets(
        actions: List[Action]) -> Iterator[Tuple[Action, ...]]:
    """All non-empty subsets of pairwise qubit-disjoint actions."""
    n = len(actions)

    def recurse(index: int, used: FrozenSet[int],
                chosen: Tuple[Action, ...]) -> Iterator[Tuple[Action, ...]]:
        if index == n:
            if chosen:
                yield chosen
            return
        action = actions[index]
        _, u, v = action
        # With this action first (so capped consumers see rich subsets).
        if u not in used and v not in used:
            yield from recurse(index + 1, used | {u, v}, chosen + (action,))
        # Without it.
        yield from recurse(index + 1, used, chosen)

    yield from recurse(0, frozenset(), ())


def _reconstruct(
    key: _StateKey,
    parents: Dict[_StateKey, Tuple[Optional[_StateKey], Tuple[Action, ...]]],
    n_physical: int,
    gamma: float,
) -> Tuple[Circuit, int]:
    cycles: List[Tuple[Action, ...]] = []
    node = key
    while True:
        parent, actions = parents[node]
        if parent is None:
            break
        cycles.append(actions)
        node = parent
    cycles.reverse()

    circuit = Circuit(n_physical)
    occupancy: List[Optional[int]] = list(node[0])  # root occupancy
    for action_set in cycles:
        for action, u, v in action_set:
            if action == "gate":
                lu, lv = occupancy[u], occupancy[v]
                assert lu is not None and lv is not None
                circuit.append(
                    Op.cphase(u, v, gamma, tag=canonical_edge(lu, lv)))
        for action, u, v in action_set:
            if action == "swap":
                circuit.append(Op.swap(u, v))
                occupancy[u], occupancy[v] = occupancy[v], occupancy[u]
    return circuit, len(cycles)
