"""Depth-optimal A* solver for small instances — Section 4.

Search-tree nodes are circuit states: the logical-to-physical mapping at
the start of a cycle plus the set of still-unexecuted problem gates.  Each
transition schedules one cycle: any conflict-free combination of executable
problem gates and SWAPs.  With the admissible priority of
:mod:`repro.solver.heuristic`, the first terminal node popped from the
queue carries a minimal-depth schedule.

This is the tool the authors ran on 1x6 lines, 2x4 grids and 7-qubit
Sycamore fragments to *discover* the structured patterns of Section 3; the
test-suite replays those discoveries at feasible sizes.

Complexity notes
----------------
The transition fan-out is exponential in the number of hardware edges, so
the solver is intended for <= ~8 qubits (exactly the paper's usage).  A
node budget guards against runaway searches.  ``prune_unhelpful_swaps``
(default on) considers a SWAP only when it strictly reduces the distance of
some remaining pair involving its qubits — sound for the clique/bi-clique
inputs the solver is designed for, where every qubit always has pending
partners.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import count
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..arch.coupling import CouplingGraph
from ..exceptions import SolverError
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge, canonical_edges
from ..ir.mapping import Mapping
from .heuristic import heuristic

Action = Tuple[str, int, int]  # ("gate"|"swap", physical u, physical v)


@dataclass
class SolverResult:
    """Outcome of an optimal search."""

    circuit: Circuit
    depth: int
    nodes_expanded: int
    initial_mapping: Mapping


def solve_depth_optimal(
    coupling: CouplingGraph,
    edges: Sequence[Tuple[int, int]],
    initial_mapping: Optional[Mapping] = None,
    gamma: float = 0.0,
    max_nodes: int = 500_000,
    prune_unhelpful_swaps: bool = True,
    use_heuristic: bool = True,
    minimize_swaps: bool = False,
) -> SolverResult:
    """Find a depth-minimal SWAP-inserted circuit (Definition 2).

    ``use_heuristic=False`` degrades A* to uniform-cost search (h = 0) —
    still optimal, vastly slower; tests use it to cross-check that the
    admissible heuristic never changes the returned depth.

    ``minimize_swaps=True`` implements the paper's stated future work
    (Section 4: the solver "only minimizes the depth ... we leave that as
    our future work"): a lexicographic objective (depth, then SWAP count)
    via scaled costs.  The per-cycle cost becomes ``SCALE + swaps`` with
    ``h`` scaled by ``SCALE``; since ``swaps per cycle < SCALE``, depth
    optimality is preserved and, among depth-optimal schedules, the
    returned one uses the fewest SWAPs.
    """
    required = frozenset(canonical_edges(edges))
    n_logical = 1 + max((q for e in required for q in e), default=0)
    if initial_mapping is None:
        initial_mapping = Mapping.trivial(n_logical, coupling.n_qubits)
    mapping = initial_mapping

    dist = coupling.distance_matrix
    hw_edges = sorted(coupling.edges)

    # Node bookkeeping: states keyed by (occupancy, remaining edge set).
    start_key = (mapping.as_tuple(), required)
    best_g: Dict[Tuple, int] = {start_key: 0}
    parents: Dict[Tuple, Tuple[Optional[Tuple], Tuple[Action, ...]]] = {
        start_key: (None, ())}

    # Lexicographic (depth, swaps) objective via scaled costs: each cycle
    # costs SCALE plus its swap count; swaps per cycle < SCALE, so depth
    # dominates.  SCALE = 1 recovers plain depth optimisation.
    scale = coupling.n_qubits + 1 if minimize_swaps else 1

    tie = count()
    start_h = _h(required, mapping.log_to_phys, dist) if use_heuristic else 0
    queue: List[Tuple[int, int, int, Tuple]] = [
        (start_h * scale, 0, next(tie), start_key)]
    expanded = 0

    while queue:
        f, g, _, key = heapq.heappop(queue)
        occupancy, remaining = key
        if g > best_g.get(key, float("inf")):
            continue
        if not remaining:
            circuit, n_cycles = _reconstruct(key, parents,
                                             coupling.n_qubits, gamma)
            return SolverResult(
                circuit=circuit,
                depth=n_cycles,
                nodes_expanded=expanded,
                initial_mapping=initial_mapping,
            )
        expanded += 1
        if expanded > max_nodes:
            raise SolverError(
                f"A* exceeded its node budget of {max_nodes}; "
                f"instance too large for the optimal solver")

        log_to_phys = _invert(occupancy, initial_mapping.n_logical)
        actions = _candidate_actions(
            hw_edges, occupancy, remaining, log_to_phys, dist,
            prune_unhelpful_swaps)

        for action_set in _conflict_free_subsets(actions):
            new_occupancy = list(occupancy)
            new_remaining = set(remaining)
            n_swaps = 0
            for action, u, v in action_set:
                if action == "gate":
                    lu, lv = new_occupancy[u], new_occupancy[v]
                    new_remaining.discard(canonical_edge(lu, lv))
                else:
                    new_occupancy[u], new_occupancy[v] = (
                        new_occupancy[v], new_occupancy[u])
                    n_swaps += 1
            child_key = (tuple(new_occupancy), frozenset(new_remaining))
            child_g = g + scale + (n_swaps if minimize_swaps else 0)
            if child_g >= best_g.get(child_key, float("inf")):
                continue
            best_g[child_key] = child_g
            parents[child_key] = (key, tuple(action_set))
            if use_heuristic:
                child_l2p = _invert(child_key[0], initial_mapping.n_logical)
                child_h = _h(child_key[1], child_l2p, dist)
            else:
                child_h = 0
            heapq.heappush(
                queue,
                (child_g + child_h * scale, child_g, next(tie), child_key))

    raise SolverError("search space exhausted without finding a schedule")


def _h(remaining: FrozenSet[Tuple[int, int]], log_to_phys, dist) -> int:
    degrees: Dict[int, int] = {}
    for u, v in remaining:
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
    return heuristic(remaining, degrees, log_to_phys, dist)


def _invert(occupancy: Tuple, n_logical: int) -> List[int]:
    log_to_phys = [0] * n_logical
    for phys, logical in enumerate(occupancy):
        if logical is not None and logical < n_logical:
            log_to_phys[logical] = phys
    return log_to_phys


def _candidate_actions(
    hw_edges, occupancy, remaining, log_to_phys, dist, prune_swaps
) -> List[Action]:
    actions: List[Action] = []
    for u, v in hw_edges:
        lu, lv = occupancy[u], occupancy[v]
        if (lu is not None and lv is not None
                and canonical_edge(lu, lv) in remaining):
            actions.append(("gate", u, v))
        if prune_swaps and not _swap_helps(u, v, occupancy, remaining,
                                           log_to_phys, dist):
            continue
        actions.append(("swap", u, v))
    return actions


def _swap_helps(u, v, occupancy, remaining, log_to_phys, dist) -> bool:
    """Does swapping (u, v) strictly reduce some remaining pair distance?"""
    for a, b in ((u, v), (v, u)):
        qubit = occupancy[a]
        if qubit is None:
            continue
        for x, y in remaining:
            if x == qubit:
                partner = y
            elif y == qubit:
                partner = x
            else:
                continue
            p = log_to_phys[partner]
            if dist[b, p] < dist[a, p]:
                return True
    return False


def _conflict_free_subsets(actions: List[Action]):
    """All non-empty subsets of pairwise qubit-disjoint actions."""
    n = len(actions)

    def recurse(index: int, used: frozenset, chosen: Tuple[Action, ...]):
        if index == n:
            if chosen:
                yield chosen
            return
        action = actions[index]
        _, u, v = action
        # With this action first (so capped consumers see rich subsets).
        if u not in used and v not in used:
            yield from recurse(index + 1, used | {u, v}, chosen + (action,))
        # Without it.
        yield from recurse(index + 1, used, chosen)

    yield from recurse(0, frozenset(), ())


def _reconstruct(key, parents, n_physical: int,
                 gamma: float) -> Tuple[Circuit, int]:
    cycles: List[Tuple[Action, ...]] = []
    node = key
    while True:
        parent, actions = parents[node]
        if parent is None:
            break
        cycles.append(actions)
        node = parent
    cycles.reverse()

    circuit = Circuit(n_physical)
    occupancy = list(node[0])  # root occupancy
    for action_set in cycles:
        for action, u, v in action_set:
            if action == "gate":
                lu, lv = occupancy[u], occupancy[v]
                circuit.append(
                    Op.cphase(u, v, gamma, tag=canonical_edge(lu, lv)))
        for action, u, v in action_set:
            if action == "swap":
                circuit.append(Op.swap(u, v))
                occupancy[u], occupancy[v] = occupancy[v], occupancy[u]
    return circuit, len(cycles)
