"""Depth-optimal search for small instances — Section 4.

Search-tree nodes are circuit states: the logical-to-physical occupancy at
the start of a cycle plus the set of still-unexecuted problem gates.  Each
transition schedules one cycle: a conflict-free combination of executable
problem gates and SWAPs.  With the admissible priority of
:mod:`repro.solver.heuristic`, the first terminal node popped from the
queue carries a minimal-depth schedule.

This is the tool the authors ran on 1x6 lines, 2x4 grids and 7-qubit
Sycamore fragments to *discover* the structured patterns of Section 3; the
test-suite replays those discoveries at feasible sizes and
``scripts/bench_solver.py`` times the paper-scale instances against the
frozen pre-refactor implementation (:mod:`repro.solver.reference`).

Engine design
-------------
The search state is packed into integers: the remaining gate set is a
bitmask over the instance's edge list and the occupancy is a tuple of
``logical + 1`` slot values (``0`` = spare), combined into a single
integer key for the ``best_g``/``parents`` dicts.  Three prunings keep
the fan-out polynomial in practice while preserving optimality:

* **Gate-maximal cycles.**  Executing an extra problem gate never moves a
  qubit and only shrinks the remaining set, so any cycle that *could*
  include a further non-conflicting gate is dominated by the cycle that
  does.  The transition generator therefore only emits action sets in
  which every declined gate conflicts with a scheduled action — this
  replaces the full power-set recursion of the original implementation
  and eliminates the dominated swap-only subsets wholesale.
* **Spare-qubit canonicalization.**  A logical qubit whose last pending
  gate just executed can never matter again; its slot is rewritten to
  ``0`` (spare) so occupancies that differ only in the placement of
  finished qubits dedupe in ``best_g``.
* **Unhelpful-SWAP pruning** (``prune_unhelpful_swaps``, default on):
  a SWAP is considered only when it strictly reduces the distance of some
  remaining pair involving its qubits — sound for the clique/bi-clique
  inputs the solver is designed for, where every qubit always has pending
  partners.

The Definition 4 heuristic is evaluated *incrementally*: each expansion
computes per-qubit degree and position tables once, and every child
re-costs only the pairs whose endpoints an action touched, reusing the
parent's pair costs for the rest.

``strategy="idastar"`` swaps the best-first loop for iterative-deepening
A* — same transitions, same heuristic, no ``best_g``/``parents`` dicts —
bounding memory to the current path when an instance would otherwise
exhaust the node budget on dict growth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from itertools import count
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .._telemetry import count_event
from ..arch.coupling import CouplingGraph
from ..exceptions import (SolverError, SolverExhaustedError,
                          SpecificationError)
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge, canonical_edges
from ..ir.mapping import Mapping
from ..resilience.faults import fault_point
from .heuristic import pair_cost

Action = Tuple[str, int, int]  # ("gate"|"swap", physical u, physical v)
ActionSet = Tuple[Action, ...]
#: Canonical occupancy: ``occ[phys] = logical + 1``, ``0`` for a spare (or
#: finished) qubit.
Occupancy = Tuple[int, ...]
#: (actions, child occupancy, child remaining-mask, swap count, h value)
Child = Tuple[ActionSet, Occupancy, int, int, int]

STRATEGIES = ("astar", "idastar")


@dataclass
class SolverStats:
    """Search-effort counters for one :func:`solve_depth_optimal` run.

    Mirrored into process-local telemetry (``solver.*`` events, see
    :func:`repro._telemetry.event_info`) and, when the solver runs as the
    registered ``optimal`` method, into ``CompiledResult.extra["solver"]``.
    """

    strategy: str = "astar"
    #: Non-terminal states popped and expanded.
    nodes_expanded: int = 0
    #: Children pushed (A*) or recursed into (IDA*).
    nodes_generated: int = 0
    #: Children dropped because an equal-or-better ``g`` was already known
    #: (A*) or the state was already on the current path (IDA*).
    dedupe_hits: int = 0
    #: Largest open-list size (A*) or deepest path (IDA*) — the memory
    #: high-water mark of the chosen strategy.
    heap_peak: int = 0
    #: Definition-3 pair-cost evaluations; the incremental heuristic makes
    #: this grow with *touched* pairs, not with |remaining| per child.
    heuristic_evals: int = 0
    wall_time_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-data view for ``CompiledResult.extra`` / JSON dumps."""
        return {
            "strategy": self.strategy,
            "nodes_expanded": self.nodes_expanded,
            "nodes_generated": self.nodes_generated,
            "dedupe_hits": self.dedupe_hits,
            "heap_peak": self.heap_peak,
            "heuristic_evals": self.heuristic_evals,
            "wall_time_s": self.wall_time_s,
        }


@dataclass
class SolverResult:
    """Outcome of an optimal search."""

    circuit: Circuit
    depth: int
    nodes_expanded: int
    initial_mapping: Mapping
    stats: SolverStats = field(default_factory=SolverStats)


def solve_depth_optimal(
    coupling: CouplingGraph,
    edges: Sequence[Tuple[int, int]],
    initial_mapping: Optional[Mapping] = None,
    gamma: float = 0.0,
    max_nodes: int = 500_000,
    prune_unhelpful_swaps: bool = True,
    use_heuristic: bool = True,
    minimize_swaps: bool = False,
    strategy: str = "astar",
) -> SolverResult:
    """Find a depth-minimal SWAP-inserted circuit (Definition 2).

    ``use_heuristic=False`` degrades A* to uniform-cost search (h = 0) —
    still optimal, vastly slower; tests use it to cross-check that the
    admissible heuristic never changes the returned depth.

    ``minimize_swaps=True`` implements the paper's stated future work
    (Section 4: the solver "only minimizes the depth ... we leave that as
    our future work"): a lexicographic objective (depth, then SWAP count)
    via scaled costs.  The per-cycle cost becomes ``SCALE + swaps`` with
    ``h`` scaled by ``SCALE``; since ``swaps per cycle < SCALE``, depth
    optimality is preserved and, among depth-optimal schedules, the
    returned one uses the fewest SWAPs.

    ``strategy`` selects ``"astar"`` (default; fastest, memory grows with
    the visited set) or ``"idastar"`` (iterative deepening; memory bounded
    by the schedule depth, re-expands nodes across iterations).  Both
    return identical depths; ``max_nodes`` bounds total expansions either
    way.
    """
    if strategy not in STRATEGIES:
        raise SpecificationError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    fault_point("solver.solve")
    started = time.perf_counter()
    stats = SolverStats(strategy=strategy)

    required = sorted(set(canonical_edges(edges)))
    n_logical = 1 + max((q for pair in required for q in pair), default=0)
    if initial_mapping is None:
        initial_mapping = Mapping.trivial(n_logical, coupling.n_qubits)

    inst = _Instance(coupling, required, n_logical,
                     prune_unhelpful_swaps, use_heuristic, stats)
    occ0, rem0 = inst.root_state(initial_mapping)
    scale = coupling.n_qubits + 1 if minimize_swaps else 1

    if strategy == "idastar":
        cycles = _search_idastar(inst, occ0, rem0, scale, minimize_swaps,
                                 max_nodes, stats)
    else:
        cycles = _search_astar(inst, occ0, rem0, scale, minimize_swaps,
                               max_nodes, stats)

    circuit = _replay(cycles, list(initial_mapping.phys_to_log),
                      coupling.n_qubits, gamma)
    stats.wall_time_s = time.perf_counter() - started
    _record_events(stats)
    return SolverResult(
        circuit=circuit,
        depth=len(cycles),
        nodes_expanded=stats.nodes_expanded,
        initial_mapping=initial_mapping,
        stats=stats,
    )


class _Instance:
    """Precomputed instance tables shared by both search strategies."""

    def __init__(
        self,
        coupling: CouplingGraph,
        required: List[Tuple[int, int]],
        n_logical: int,
        prune_swaps: bool,
        use_heuristic: bool,
        stats: SolverStats,
    ) -> None:
        self.n_logical = n_logical
        self.n_physical = coupling.n_qubits
        self.prune_swaps = prune_swaps
        self.use_heuristic = use_heuristic
        self.stats = stats
        self.edge_list: List[Tuple[int, int]] = required
        self.n_edges = len(required)
        self.edge_bit: Dict[Tuple[int, int], int] = {
            pair: index for index, pair in enumerate(required)}
        #: Per logical qubit, the bitmask of incident edge bits — pending
        #: degree is then one popcount against the remaining mask.
        self.incident: List[int] = [0] * n_logical
        for index, (u, v) in enumerate(required):
            self.incident[u] |= 1 << index
            self.incident[v] |= 1 << index
        #: Hop counts as plain nested lists: ~3x faster than scalar numpy
        #: indexing on this hot path.
        self.dist: List[List[int]] = [
            [int(d) for d in row] for row in coupling.distance_matrix]
        self.hw_edges: List[Tuple[int, int]] = sorted(coupling.edges)
        #: Bits per occupancy slot (values ``0..n_logical``).
        self.slot_bits = max(1, n_logical.bit_length())

    # -- state encoding -----------------------------------------------------

    def root_state(self, mapping: Mapping) -> Tuple[Occupancy, int]:
        """Canonical root occupancy + full remaining mask."""
        occ = [0] * self.n_physical
        for phys, logical in enumerate(mapping.phys_to_log):
            if (logical is not None and logical < self.n_logical
                    and self.incident[logical]):
                occ[phys] = logical + 1
        return tuple(occ), (1 << self.n_edges) - 1

    def encode(self, occ: Sequence[int], rem: int) -> int:
        """Pack (occupancy, remaining) into one integer dict key."""
        packed = 0
        for value in occ:
            packed = (packed << self.slot_bits) | value
        return (packed << self.n_edges) | rem

    # -- transition generation ----------------------------------------------

    def expand(self, occ: Occupancy, rem: int) -> List[Child]:
        """All non-dominated one-cycle transitions out of ``(occ, rem)``.

        (``fault_point("solver.expand")`` sits here so chaos tests can
        exhaust/abort a search mid-flight; it is a no-op — one global
        load — unless a fault plan is active.)

        Children carry their heuristic value, computed incrementally from
        this node's degree/position/pair-cost tables: only pairs with a
        touched endpoint (gate executed or qubit moved) are re-costed.
        """
        fault_point("solver.expand")
        incident = self.incident
        edge_list = self.edge_list
        dist = self.dist
        deg = [(rem & mask).bit_count() for mask in incident]
        pos = [0] * self.n_logical
        for phys, value in enumerate(occ):
            if value:
                pos[value - 1] = phys

        parent_cost = [0] * self.n_edges
        if self.use_heuristic:
            mask = rem
            evals = 0
            while mask:
                low = mask & -mask
                index = low.bit_length() - 1
                mask ^= low
                a, b = edge_list[index]
                parent_cost[index] = pair_cost(deg[a], deg[b],
                                               dist[pos[a]][pos[b]])
                evals += 1
            self.stats.heuristic_evals += evals

        gates, swaps = self._actions(occ, rem, pos)
        children: List[Child] = []
        for gate_set, swap_set in _action_sets(gates, swaps):
            child_rem = rem
            touched = 0
            occ_list = list(occ)
            for _u, _v, bit in gate_set:
                child_rem &= ~(1 << bit)
            deg_child = deg
            pos_child = pos
            if swap_set:
                pos_child = pos[:]
                for u, v in swap_set:
                    lu, lv = occ[u], occ[v]
                    occ_list[u], occ_list[v] = lv, lu
                    if lu:
                        pos_child[lu - 1] = v
                        touched |= 1 << (lu - 1)
                    if lv:
                        pos_child[lv - 1] = u
                        touched |= 1 << (lv - 1)
            if gate_set:
                deg_child = deg[:]
                for u, v, _bit in gate_set:
                    a, b = occ[u] - 1, occ[v] - 1
                    deg_child[a] = (child_rem & incident[a]).bit_count()
                    deg_child[b] = (child_rem & incident[b]).bit_count()
                    touched |= (1 << a) | (1 << b)
                    # Spare-qubit canonicalization: a finished qubit is
                    # indistinguishable from a spare from here on.
                    if not deg_child[a]:
                        occ_list[u] = 0
                    if not deg_child[b]:
                        occ_list[v] = 0

            h = 0
            if self.use_heuristic:
                evals = 0
                mask = child_rem
                while mask:
                    low = mask & -mask
                    index = low.bit_length() - 1
                    mask ^= low
                    a, b = edge_list[index]
                    if (touched >> a | touched >> b) & 1:
                        cost = pair_cost(deg_child[a], deg_child[b],
                                         dist[pos_child[a]][pos_child[b]])
                        evals += 1
                    else:
                        cost = parent_cost[index]
                    if cost > h:
                        h = cost
                self.stats.heuristic_evals += evals

            actions: ActionSet = tuple(
                [("gate", u, v) for u, v, _bit in gate_set]
                + [("swap", u, v) for u, v in swap_set])
            children.append((actions, tuple(occ_list), child_rem,
                             len(swap_set), h))
        return children

    def root_h(self, occ: Occupancy, rem: int) -> int:
        """Full (non-incremental) Definition-4 evaluation for the root."""
        if not self.use_heuristic or not rem:
            return 0
        deg = [(rem & mask).bit_count() for mask in self.incident]
        pos = [0] * self.n_logical
        for phys, value in enumerate(occ):
            if value:
                pos[value - 1] = phys
        h = 0
        mask = rem
        while mask:
            low = mask & -mask
            index = low.bit_length() - 1
            mask ^= low
            a, b = self.edge_list[index]
            cost = pair_cost(deg[a], deg[b], self.dist[pos[a]][pos[b]])
            self.stats.heuristic_evals += 1
            if cost > h:
                h = cost
        return h

    def _actions(
        self, occ: Occupancy, rem: int, pos: List[int],
    ) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int]]]:
        """Candidate gate and SWAP actions on hardware edges."""
        gates: List[Tuple[int, int, int]] = []
        swaps: List[Tuple[int, int]] = []
        for u, v in self.hw_edges:
            lu, lv = occ[u], occ[v]
            if lu and lv:
                bit = self.edge_bit.get(canonical_edge(lu - 1, lv - 1))
                if bit is not None and rem >> bit & 1:
                    gates.append((u, v, bit))
            if lu or lv:  # swapping two spares is the identity
                if (not self.prune_swaps
                        or self._swap_helps(u, v, occ, rem, pos)):
                    swaps.append((u, v))
        return gates, swaps

    def _swap_helps(self, u: int, v: int, occ: Occupancy, rem: int,
                    pos: List[int]) -> bool:
        """Does swapping (u, v) strictly reduce some remaining pair's
        distance?"""
        dist = self.dist
        for here, there in ((u, v), (v, u)):
            value = occ[here]
            if not value:
                continue
            qubit = value - 1
            row_here = dist[here]
            row_there = dist[there]
            mask = rem & self.incident[qubit]
            while mask:
                low = mask & -mask
                index = low.bit_length() - 1
                mask ^= low
                a, b = self.edge_list[index]
                partner_pos = pos[b if a == qubit else a]
                if row_there[partner_pos] < row_here[partner_pos]:
                    return True
        return False


def _action_sets(
    gates: List[Tuple[int, int, int]],
    swaps: List[Tuple[int, int]],
) -> List[Tuple[Tuple[Tuple[int, int, int], ...],
                Tuple[Tuple[int, int], ...]]]:
    """Non-empty, qubit-disjoint, *gate-maximal* action combinations.

    Gates are branched first; declining a gate records its qubit mask, and
    a leaf is emitted only when every declined gate conflicts with the
    chosen set — cycles that could still fit another gate are dominated
    (the extra gate moves nothing and strictly shrinks the remaining set),
    so they are never generated.
    """
    out: List[Tuple[Tuple[Tuple[int, int, int], ...],
                    Tuple[Tuple[int, int], ...]]] = []
    n_gates = len(gates)
    n_swaps = len(swaps)

    def over_swaps(index: int, used: int,
                   chosen_gates: Tuple[Tuple[int, int, int], ...],
                   chosen_swaps: Tuple[Tuple[int, int], ...],
                   declined: Tuple[int, ...]) -> None:
        if index == n_swaps:
            if chosen_gates or chosen_swaps:
                for mask in declined:
                    if not used & mask:
                        return  # a declined gate still fits: dominated
                out.append((chosen_gates, chosen_swaps))
            return
        u, v = swaps[index]
        mask = (1 << u) | (1 << v)
        if not used & mask:
            over_swaps(index + 1, used | mask, chosen_gates,
                       chosen_swaps + ((u, v),), declined)
        over_swaps(index + 1, used, chosen_gates, chosen_swaps, declined)

    def over_gates(index: int, used: int,
                   chosen: Tuple[Tuple[int, int, int], ...],
                   declined: Tuple[int, ...]) -> None:
        if index == n_gates:
            over_swaps(0, used, chosen, (), declined)
            return
        u, v, bit = gates[index]
        mask = (1 << u) | (1 << v)
        if used & mask:  # already blocked by an earlier choice
            over_gates(index + 1, used, chosen, declined)
            return
        over_gates(index + 1, used | mask, chosen + ((u, v, bit),), declined)
        over_gates(index + 1, used, chosen, declined + (mask,))

    over_gates(0, 0, (), ())
    return out


def _search_astar(
    inst: _Instance,
    occ0: Occupancy,
    rem0: int,
    scale: int,
    minimize_swaps: bool,
    max_nodes: int,
    stats: SolverStats,
) -> List[ActionSet]:
    """Best-first search; returns the optimal cycle list."""
    key0 = inst.encode(occ0, rem0)
    best_g: Dict[int, int] = {key0: 0}
    parents: Dict[int, Tuple[Optional[int], ActionSet]] = {key0: (None, ())}
    tie = count()
    h0 = inst.root_h(occ0, rem0)
    # Ties on f prefer the *larger* g (stored negated): states closer to a
    # goal pop first, which collapses the final-f plateau instead of
    # sweeping it breadth-first.  Optimality is unaffected — any goal
    # popped has f = g, still minimal over the open list.
    queue: List[Tuple[int, int, int, Occupancy, int]] = [
        (h0 * scale, 0, next(tie), occ0, rem0)]

    while queue:
        _f, neg_g, _, occ, rem = heappop(queue)
        g = -neg_g
        key = inst.encode(occ, rem)
        if g > best_g.get(key, g):
            continue  # stale entry; a cheaper path got here first
        if not rem:
            return _unwind(key, parents)
        stats.nodes_expanded += 1
        if stats.nodes_expanded > max_nodes:
            raise SolverExhaustedError(
                f"A* exceeded its node budget of {max_nodes}; "
                f"instance too large for the optimal solver")

        for actions, child_occ, child_rem, n_swaps, h in inst.expand(occ,
                                                                     rem):
            child_g = g + scale + (n_swaps if minimize_swaps else 0)
            child_key = inst.encode(child_occ, child_rem)
            previous = best_g.get(child_key)
            if previous is not None and child_g >= previous:
                stats.dedupe_hits += 1
                continue
            best_g[child_key] = child_g
            parents[child_key] = (key, actions)
            heappush(queue, (child_g + h * scale, -child_g, next(tie),
                             child_occ, child_rem))
            stats.nodes_generated += 1
        if len(queue) > stats.heap_peak:
            stats.heap_peak = len(queue)

    raise SolverError("search space exhausted without finding a schedule")


def _search_idastar(
    inst: _Instance,
    occ0: Occupancy,
    rem0: int,
    scale: int,
    minimize_swaps: bool,
    max_nodes: int,
    stats: SolverStats,
) -> List[ActionSet]:
    """Iterative-deepening A*; memory bounded by the schedule depth."""
    if not rem0:
        return []
    infinity = float("inf")
    path: List[ActionSet] = []
    on_path: Set[int] = {inst.encode(occ0, rem0)}

    def descend(occ: Occupancy, rem: int, g: int, bound: int) -> float:
        """Return 0 when solved within ``bound``, else the next bound."""
        stats.nodes_expanded += 1
        if stats.nodes_expanded > max_nodes:
            raise SolverExhaustedError(
                f"IDA* exceeded its node budget of {max_nodes}; "
                f"instance too large for the optimal solver")
        next_bound = infinity
        for actions, child_occ, child_rem, n_swaps, h in inst.expand(occ,
                                                                     rem):
            child_g = g + scale + (n_swaps if minimize_swaps else 0)
            f = child_g + h * scale
            if f > bound:
                if f < next_bound:
                    next_bound = f
                continue
            child_key = inst.encode(child_occ, child_rem)
            if child_key in on_path:
                stats.dedupe_hits += 1
                continue
            stats.nodes_generated += 1
            path.append(actions)
            if not child_rem:
                return 0.0
            on_path.add(child_key)
            if len(path) > stats.heap_peak:
                stats.heap_peak = len(path)
            below = descend(child_occ, child_rem, child_g, bound)
            if below == 0.0:
                return 0.0
            on_path.discard(child_key)
            path.pop()
            if below < next_bound:
                next_bound = below
        return next_bound

    bound = max(inst.root_h(occ0, rem0) * scale, scale)
    while True:
        outcome = descend(occ0, rem0, 0, bound)
        if outcome == 0.0:
            return list(path)
        if outcome == infinity:
            raise SolverError(
                "search space exhausted without finding a schedule")
        bound = int(outcome)


def _unwind(key: int, parents: Dict[int, Tuple[Optional[int], ActionSet]],
            ) -> List[ActionSet]:
    """Parent-chain walk from the goal key back to the root."""
    cycles: List[ActionSet] = []
    node: Optional[int] = key
    while node is not None:
        parent, actions = parents[node]
        if parent is None:
            break
        cycles.append(actions)
        node = parent
    cycles.reverse()
    return cycles


def _replay(cycles: List[ActionSet], occupancy: List[Optional[int]],
            n_physical: int, gamma: float) -> Circuit:
    """Rebuild the circuit by replaying cycles from the true root state.

    The search runs on *canonical* occupancies (finished qubits erased),
    but actions are physical, so replaying them over the uncanonicalized
    root occupancy recovers every gate's logical tag exactly.
    """
    circuit = Circuit(n_physical)
    for action_set in cycles:
        for kind, u, v in action_set:
            if kind == "gate":
                lu, lv = occupancy[u], occupancy[v]
                assert lu is not None and lv is not None
                circuit.append(
                    Op.cphase(u, v, gamma, tag=canonical_edge(lu, lv)))
        for kind, u, v in action_set:
            if kind == "swap":
                circuit.append(Op.swap(u, v))
                occupancy[u], occupancy[v] = occupancy[v], occupancy[u]
    return circuit


def _record_events(stats: SolverStats) -> None:
    """Mirror one run's counters into the process-local event telemetry."""
    count_event("solver.runs")
    count_event("solver.nodes_expanded", stats.nodes_expanded)
    count_event("solver.nodes_generated", stats.nodes_generated)
    count_event("solver.dedupe_hits", stats.dedupe_hits)
    count_event("solver.heuristic_evals", stats.heuristic_evals)
