"""Admissible priority function for the depth-optimal solver — Section 4.2.

``pair_cost`` implements Definition 3: a lower bound on the cycles needed to
schedule *all* remaining gates touching a qubit pair ``(q_i, q_j)`` that
still has a gate between them.  With ``d`` the current physical distance,
``d - 1`` SWAP steps must be split between the two qubits; whichever way the
split goes, the busier qubit also has ``deg`` remaining computation gates::

    cost(q_i, q_j) = min_{x=0..d-1} max(deg(q_i) + x, deg(q_j) + d - 1 - x)

(The paper's Equation 2 prints ``d - x`` for the second term, but its worked
example — Fig 15, cost(q1, q4) = 4 with deg 3, 2 and d = 3 — uses
``d - 1 - x``, which is also the mathematically correct swap split.  We
follow the example; admissibility is exercised property-style in tests.)

``h(v)`` (Definition 4) is the maximum of ``pair_cost`` over all remaining
edges — a compiled circuit is at least as deep as any of its sub-circuits
(Theorem 1).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np


def pair_cost(deg_i: int, deg_j: int, distance: int) -> int:
    """Definition 3 lower bound for one remaining pair at ``distance``."""
    if distance < 1:
        raise ValueError("pair with a remaining gate must have distance >= 1")
    swaps_needed = distance - 1
    best = None
    for x in range(swaps_needed + 1):
        cost = max(deg_i + x, deg_j + swaps_needed - x)
        if best is None or cost < best:
            best = cost
    return best


def heuristic(
    remaining: Iterable[Tuple[int, int]],
    degrees: Dict[int, int],
    log_to_phys,
    distance_matrix: np.ndarray,
) -> int:
    """``h(v)``: max pair cost over the remaining edge set (Definition 4)."""
    h = 0
    for u, v in remaining:
        d = int(distance_matrix[log_to_phys[u], log_to_phys[v]])
        cost = pair_cost(degrees[u], degrees[v], d)
        if cost > h:
            h = cost
    return h
