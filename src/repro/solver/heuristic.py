"""Admissible priority function for the depth-optimal solver — Section 4.2.

``pair_cost`` implements Definition 3: a lower bound on the cycles needed to
schedule *all* remaining gates touching a qubit pair ``(q_i, q_j)`` that
still has a gate between them.  With ``d`` the current physical distance,
``s = d - 1`` SWAP steps must be split between the two qubits; whichever way
the split goes, the busier qubit also has ``deg`` remaining computation
gates::

    cost(q_i, q_j) = min_{x=0..s} max(deg(q_i) + x, deg(q_j) + s - x)

(The paper's Equation 2 prints ``d - x`` for the second term, but its worked
example — Fig 15, cost(q1, q4) = 4 with deg 3, 2 and d = 3 — uses
``d - 1 - x``, which is also the mathematically correct swap split.  We
follow the example; admissibility is exercised property-style in tests.)

The minimisation has a closed form, which is what :func:`pair_cost` now
evaluates in O(1) instead of scanning all ``d`` splits: the first term
increases and the second decreases in ``x``, so the optimum sits at the
crossing point ``ceil((deg_i + deg_j + s) / 2)`` — unless one qubit is so
much busier that a boundary split wins, which clamps the result to
``max(deg_i, deg_j)``::

    cost(q_i, q_j) = max(deg_i, deg_j, ceil((deg_i + deg_j + d - 1) / 2))

``tests/solver/test_heuristic.py`` property-checks this closed form against
the original O(d) scan (kept as ``_pair_cost_legacy`` in
:mod:`repro.solver.reference`) over random ``(deg_i, deg_j, d)``.

``h(v)`` (Definition 4) is the maximum of ``pair_cost`` over all remaining
edges — a compiled circuit is at least as deep as any of its sub-circuits
(Theorem 1).  The A* engine (:mod:`repro.solver.astar`) evaluates it
incrementally, re-costing only the pairs a cycle's actions touched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from ..exceptions import SpecificationError


def pair_cost(deg_i: int, deg_j: int, distance: int) -> int:
    """Definition 3 lower bound for one remaining pair at ``distance``."""
    if distance < 1:
        raise SpecificationError("pair with a remaining gate must have distance >= 1")
    crossing = (deg_i + deg_j + distance) // 2  # ceil((di + dj + d - 1) / 2)
    if deg_i >= crossing:
        return deg_i
    if deg_j >= crossing:
        return deg_j
    return crossing


def heuristic(
    remaining: Iterable[Tuple[int, int]],
    degrees: Dict[int, int],
    log_to_phys: Sequence[int],
    distance_matrix: np.ndarray,
) -> int:
    """``h(v)``: max pair cost over the remaining edge set (Definition 4)."""
    h = 0
    for u, v in remaining:
        d = int(distance_matrix[log_to_phys[u], log_to_phys[v]])
        cost = pair_cost(degrees[u], degrees[v], d)
        if cost > h:
            h = cost
    return h
