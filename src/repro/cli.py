"""Command-line interface.

Usage::

    python -m repro compile --arch heavyhex --qubits 32 --density 0.3
    python -m repro compile --arch grid --qubits 16 --method ata --qasm out.qasm
    python -m repro compare --arch sycamore --qubits 32 --density 0.3
    python -m repro clique --arch grid --qubits 25
    python -m repro info --arch heavyhex --qubits 64
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import format_table, result_metrics
from .arch import NoiseModel, architecture_for
from .compiler import compile_qaoa
from .ir.qasm import to_qasm
from .problems import clique, random_problem_graph


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro`` (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regularity-aware compilation for programs with "
                    "permutable operators (ASPLOS 2023 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--arch", default="heavyhex",
                       choices=["line", "grid", "sycamore", "hexagon",
                                "heavyhex", "mumbai", "cube"])
        p.add_argument("--qubits", type=int, default=32)
        p.add_argument("--seed", type=int, default=0)

    compile_p = sub.add_parser("compile", help="compile one instance")
    add_common(compile_p)
    compile_p.add_argument("--density", type=float, default=0.3)
    compile_p.add_argument("--method", default="hybrid",
                           choices=["hybrid", "greedy", "ata"])
    compile_p.add_argument("--gamma", type=float, default=0.0)
    compile_p.add_argument("--noise", action="store_true",
                           help="use a synthetic noise calibration")
    compile_p.add_argument("--qasm", metavar="FILE",
                           help="write the compiled circuit as OpenQASM 2.0")

    compare_p = sub.add_parser("compare",
                               help="compare all compilation methods")
    add_common(compare_p)
    compare_p.add_argument("--density", type=float, default=0.3)

    clique_p = sub.add_parser("clique",
                              help="compile the all-to-all special case")
    add_common(clique_p)

    info_p = sub.add_parser("info", help="describe an architecture")
    add_common(info_p)
    return parser


def _cmd_compile(args) -> int:
    problem = random_problem_graph(args.qubits, args.density, seed=args.seed)
    coupling = architecture_for(args.arch, args.qubits)
    noise = NoiseModel(coupling, seed=args.seed) if args.noise else None
    result = compile_qaoa(coupling, problem, method=args.method,
                          noise=noise, gamma=args.gamma)
    result.validate(coupling, problem)
    metrics = result_metrics(result, noise)
    print(f"problem:  {problem}")
    print(f"device:   {coupling}")
    print(f"method:   {result.method}")
    for key, value in metrics.items():
        print(f"{key:>8}: {value:.4g}" if isinstance(value, float)
              else f"{key:>8}: {value}")
    if args.qasm:
        with open(args.qasm, "w") as handle:
            handle.write(to_qasm(result.circuit,
                                 comment=f"{problem.name} on {coupling.name}"))
        print(f"qasm written to {args.qasm}")
    return 0


def _cmd_compare(args) -> int:
    problem = random_problem_graph(args.qubits, args.density, seed=args.seed)
    coupling = architecture_for(args.arch, args.qubits)
    rows = []
    for method in ("greedy", "ata", "hybrid"):
        result = compile_qaoa(coupling, problem, method=method)
        result.validate(coupling, problem)
        rows.append([method, result.depth(), result.gate_count,
                     result.swap_count, result.wall_time_s])
    print(format_table(["method", "depth", "CX", "SWAPs", "seconds"], rows,
                       title=f"{problem.name} on {coupling.name}"))
    return 0


def _cmd_clique(args) -> int:
    coupling = architecture_for(args.arch, args.qubits)
    problem = clique(args.qubits)
    result = compile_qaoa(coupling, problem, method="ata")
    result.validate(coupling, problem)
    print(f"clique-{args.qubits} on {coupling.name}: "
          f"depth={result.depth()} ({result.depth() / args.qubits:.2f} per "
          f"qubit), cx={result.gate_count}")
    return 0


def _cmd_info(args) -> int:
    coupling = architecture_for(args.arch, args.qubits)
    print(f"name:      {coupling.name}")
    print(f"kind:      {coupling.kind}")
    print(f"qubits:    {coupling.n_qubits}")
    print(f"couplings: {coupling.n_edges}")
    print(f"max degree:{coupling.max_degree():>2}")
    print(f"diameter:  {int(coupling.distance_matrix.max())}")
    for key in ("rows", "cols", "width", "dims"):
        if key in coupling.metadata:
            print(f"{key}: {coupling.metadata[key]}")
    from .arch.draw import draw_architecture
    print()
    print(draw_architecture(coupling))
    return 0


_COMMANDS = {
    "compile": _cmd_compile,
    "compare": _cmd_compare,
    "clique": _cmd_clique,
    "info": _cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
