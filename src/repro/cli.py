"""Command-line interface.

Usage::

    python -m repro compile --arch heavyhex --qubits 32 --density 0.3
    python -m repro compile --arch grid --qubits 16 --method ata --qasm out.qasm
    python -m repro compare --arch sycamore --qubits 32 --density 0.3
    python -m repro batch --arch grid,heavyhex --qubits 24 --count 8 --workers 4
    python -m repro serve --store .repro-store --workers 4
    python -m repro serve --stdio --store .repro-store
    python -m repro lint out.json --arch grid --qubits 16 --density 0.3
    python -m repro check src/repro --format json
    python -m repro clique --arch grid --qubits 25
    python -m repro solve --arch line --qubits 6 --workload clique
    python -m repro info --arch heavyhex --qubits 64

``lint`` and ``check`` exit codes: 0 clean, 1 error-severity
diagnostics found, 2 usage/load problems.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import format_table, result_metrics
from .arch import NoiseModel, architecture_for
from .compiler import compile_qaoa
from .ir.qasm import to_qasm
from .pipeline.registry import available_methods, get_method
from .problems import clique, random_problem_graph

_ARCH_CHOICES = ["line", "grid", "sycamore", "hexagon", "heavyhex",
                 "mumbai", "cube"]


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, with an actionable message."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer >= 1, got {value}")
    return value


def _density(text: str) -> float:
    """argparse type: a float in [0, 1] (fraction of possible edges)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"density is a fraction of possible edges and must be in "
            f"[0, 1], got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _arch_list(text: str) -> List[str]:
    """argparse type: comma-separated architecture families."""
    archs = [part.strip() for part in text.split(",") if part.strip()]
    if not archs:
        raise argparse.ArgumentTypeError("expected at least one architecture")
    for arch in archs:
        if arch not in _ARCH_CHOICES:
            raise argparse.ArgumentTypeError(
                f"unknown architecture {arch!r}; choose from "
                f"{', '.join(_ARCH_CHOICES)}")
    return archs


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for ``python -m repro`` (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regularity-aware compilation for programs with "
                    "permutable operators (ASPLOS 2023 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--arch", default="heavyhex", choices=_ARCH_CHOICES)
        p.add_argument("--qubits", type=_positive_int, default=32)
        p.add_argument("--seed", type=int, default=0)

    compile_p = sub.add_parser("compile", help="compile one instance")
    add_common(compile_p)
    compile_p.add_argument("--density", type=_density, default=0.3)
    compile_p.add_argument("--method", default="hybrid", metavar="METHOD",
                           help="any registered compiler method: "
                                f"{', '.join(available_methods())}")
    compile_p.add_argument("--gamma", type=float, default=0.0)
    compile_p.add_argument("--layers", type=_positive_int, default=1,
                           metavar="P",
                           help="assemble a p-layer program (odd layers "
                                "replay the cost layer reversed so the "
                                "qubit permutation cancels pairwise)")
    compile_p.add_argument("--mixer", default="rx", choices=["rx", "none"],
                           help="interleave RX mixer walls ('rx', QAOA) "
                                "or emit cost layers only ('none', "
                                "Trotterization)")
    compile_p.add_argument("--noise", action="store_true",
                           help="use a synthetic noise calibration")
    compile_p.add_argument("--qasm", metavar="FILE",
                           help="write the compiled circuit as OpenQASM 2.0 "
                                "(the flattened program when --layers > 1)")
    compile_p.add_argument("--telemetry", action="store_true",
                           help="print per-stage timings and cache stats")

    compare_p = sub.add_parser("compare",
                               help="compare all compilation methods")
    add_common(compare_p)
    compare_p.add_argument("--density", type=_density, default=0.3)

    batch_p = sub.add_parser(
        "batch", help="compile many instances over a worker pool")
    batch_p.add_argument("--arch", type=_arch_list, default=["heavyhex"],
                         metavar="A[,B,...]",
                         help="comma-separated architecture families")
    batch_p.add_argument("--qubits", type=_positive_int, default=32)
    batch_p.add_argument("--count", type=_positive_int, default=8,
                         help="instances per (arch, method): seeds "
                              "SEED..SEED+COUNT-1")
    batch_p.add_argument("--seed", type=int, default=0)
    batch_p.add_argument("--density", type=_density, default=0.3)
    batch_p.add_argument("--workload", default="rand",
                         choices=["rand", "reg", "clique"])
    batch_p.add_argument("--method", default="hybrid",
                         help="comma-separated compiler methods; any of: "
                              f"{', '.join(available_methods())}")
    batch_p.add_argument("--layers", type=_positive_int, default=1,
                         metavar="P",
                         help="program depth p for every job (default 1)")
    batch_p.add_argument("--mixer", default="rx", choices=["rx", "none"],
                         help="mixer style for assembled programs")
    batch_p.add_argument("--workers", type=_positive_int, default=None,
                         help="pool size (default: min(jobs, CPU count))")
    batch_p.add_argument("--timeout", type=_positive_float, default=None,
                         metavar="SECONDS", help="per-job wall-clock budget")
    batch_p.add_argument("--serial", action="store_true",
                         help="run in-process (still cached + fault-tolerant)")
    batch_p.add_argument("--no-validate", action="store_true",
                         help="skip the semantic validator per job")
    batch_p.add_argument("--lint", action="store_true",
                         help="run the circuit linter per job and "
                              "aggregate diagnostics in the report")
    batch_p.add_argument("--json", metavar="FILE",
                         help="write the full report as JSON")
    batch_p.add_argument("--retries", type=_positive_int, default=None,
                         metavar="N",
                         help="attempts per job for transient failures "
                              "(exponential backoff; default: no retries)")
    batch_p.add_argument("--journal", metavar="FILE",
                         help="crash-safe JSONL journal of finished jobs "
                              "(each result fsync-ed before moving on)")
    batch_p.add_argument("--resume", action="store_true",
                         help="with --journal: skip jobs already "
                              "completed by a previous (crashed) run")
    batch_p.add_argument("--max-pool-restarts", type=int, default=None,
                         metavar="N",
                         help="worker-pool rebuilds tolerated after "
                              "worker death (default: 2)")

    serve_p = sub.add_parser(
        "serve", help="long-lived compile daemon with a warm worker "
                      "pool and a content-addressed result store")
    serve_p.add_argument("--store", metavar="DIR", default=".repro-store",
                         help="result-store directory (default: "
                              ".repro-store; created if missing)")
    serve_p.add_argument("--no-store", action="store_true",
                         help="disable the persistent result store "
                              "(warm pool + in-flight dedupe only)")
    serve_p.add_argument("--stdio", action="store_true",
                         help="serve JSONL requests from stdin instead "
                              "of HTTP (one JSON object per line)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="HTTP bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="HTTP port (default: 8642; 0 picks an "
                              "ephemeral port, printed on stderr)")
    serve_p.add_argument("--workers", type=_positive_int, default=None,
                         help="warm pool size (default: CPU count)")
    serve_p.add_argument("--executor", default="process",
                         choices=["process", "thread"],
                         help="worker pool flavor (thread: no per-job "
                              "timeout enforcement; debugging)")
    serve_p.add_argument("--timeout", type=_positive_float, default=None,
                         metavar="SECONDS",
                         help="per-job wall-clock budget in the workers")

    lint_p = sub.add_parser(
        "lint", help="statically analyze serialized compiled circuits")
    lint_p.add_argument("files", nargs="+", metavar="FILE",
                        help="compiled-result/circuit JSON documents "
                             "(repro.ir.serialize format) or .qasm files")
    lint_p.add_argument("--arch", default="heavyhex", choices=_ARCH_CHOICES)
    lint_p.add_argument("--qubits", type=_positive_int, default=None,
                        help="logical qubit count of the generated "
                             "problem (required unless --problem)")
    lint_p.add_argument("--problem", metavar="FILE",
                        help="problem-graph JSON "
                             "(repro.ir.serialize.problem_to_dict format)")
    lint_p.add_argument("--workload", default="rand",
                        choices=["rand", "reg", "clique"])
    lint_p.add_argument("--density", type=_density, default=0.3)
    lint_p.add_argument("--seed", type=int, default=0)
    lint_p.add_argument("--format", default="text",
                        choices=["text", "json"], dest="fmt")
    lint_p.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run "
                             "exclusively (e.g. RL001,RL013)")
    lint_p.add_argument("--ignore", metavar="CODES", default=None,
                        help="comma-separated rule codes to skip")
    lint_p.add_argument("--allow-repeats", action="store_true",
                        help="permit repeated problem edges "
                             "(clique-style patterns)")
    lint_p.add_argument("--no-require-all-edges", action="store_true",
                        help="do not report never-executed problem edges")
    lint_p.add_argument("--strict", action="store_true",
                        help="exit 1 on warnings as well as errors")

    check_p = sub.add_parser(
        "check", help="statically analyze the repro source tree itself "
                      "(CK0xx rule catalogue)")
    check_p.add_argument("paths", nargs="*", metavar="PATH",
                         help="files or directory trees to scan "
                              "(default: src/repro)")
    check_p.add_argument("--select", metavar="CODES", default=None,
                         help="comma-separated rule codes to run "
                              "exclusively (e.g. CK001,CK010)")
    check_p.add_argument("--ignore", metavar="CODES", default=None,
                         help="comma-separated rule codes to skip")
    check_p.add_argument("--format", default="text",
                         choices=["text", "json"], dest="fmt")
    check_p.add_argument("--baseline", metavar="FILE", default=None,
                         help="reviewed suppression baseline (default: "
                              "CHECKERS_BASELINE.json when present)")
    check_p.add_argument("--no-baseline", action="store_true",
                         help="report every finding, baseline or not")
    check_p.add_argument("--no-restrict", action="store_true",
                         help="run every rule on every file, ignoring "
                              "per-rule hot-path restrictions")
    check_p.add_argument("--output", metavar="FILE", default=None,
                         help="additionally write the JSON report here "
                              "(the CI artifact)")
    check_p.add_argument("--list-rules", action="store_true",
                         help="print the rule catalogue and exit")

    clique_p = sub.add_parser("clique",
                              help="compile the all-to-all special case")
    add_common(clique_p)

    solve_p = sub.add_parser(
        "solve", help="depth-optimal exact search (small instances)")
    solve_p.add_argument("--arch", default="line", choices=_ARCH_CHOICES)
    solve_p.add_argument("--qubits", type=_positive_int, default=4)
    solve_p.add_argument("--seed", type=int, default=0)
    solve_p.add_argument("--workload", default="clique",
                         choices=["clique", "biclique", "rand", "reg"],
                         help="biclique splits the qubits into two "
                              "all-to-all-connected halves")
    solve_p.add_argument("--density", type=_density, default=0.3)
    solve_p.add_argument("--gamma", type=float, default=0.0)
    solve_p.add_argument("--strategy", default="astar",
                         choices=["astar", "idastar"],
                         help="idastar bounds memory to the path depth")
    solve_p.add_argument("--minimize-swaps", action="store_true",
                         help="among depth-optimal schedules, return one "
                              "with the fewest SWAPs (slower)")
    solve_p.add_argument("--no-heuristic", action="store_true",
                         help="degrade to uniform-cost search (debugging)")
    solve_p.add_argument("--max-nodes", type=_positive_int, default=500_000,
                         help="node-expansion budget before giving up")
    solve_p.add_argument("--qasm", metavar="FILE",
                         help="write the optimal circuit as OpenQASM 2.0")
    solve_p.add_argument("--json", metavar="FILE",
                         help="write depth + solver counters as JSON")

    info_p = sub.add_parser("info", help="describe an architecture")
    add_common(info_p)
    return parser


def _unknown_method_error(method: str) -> int:
    """Exit-2 path for a method name the registry does not know."""
    print(f"error: unknown method {method!r}; registered methods: "
          f"{', '.join(available_methods())}", file=sys.stderr)
    return 2


def _cmd_compile(args) -> int:
    try:
        get_method(args.method)
    except ValueError:
        return _unknown_method_error(args.method)
    problem = random_problem_graph(args.qubits, args.density, seed=args.seed)
    coupling = architecture_for(args.arch, args.qubits)
    noise = NoiseModel(coupling, seed=args.seed) if args.noise else None
    result = compile_qaoa(coupling, problem, method=args.method,
                          noise=noise, gamma=args.gamma,
                          layers=args.layers, mixer=args.mixer)
    result.validate(coupling, problem)
    metrics = result_metrics(result, noise)
    print(f"problem:  {problem}")
    print(f"device:   {coupling}")
    print(f"method:   {result.method}")
    if result.program is not None and args.layers > 1:
        program = result.program
        print(f"program:  p={program.p} mixer={program.mixer} "
              f"({len(program.layers)} layers, {program.n_ops()} ops, "
              f"{program.swap_count()} swaps, net permutation "
              f"{'identity' if program.net_permutation_is_identity else 'nontrivial'})")
    for key, value in metrics.items():
        print(f"{key:>8}: {value:.4g}" if isinstance(value, float)
              else f"{key:>8}: {value}")
    if args.telemetry:
        for record in result.extra.get("passes", []):
            status = " (skipped)" if record.get("skipped") else ""
            print(f"pass {record['name']:>11}: "
                  f"{record['wall_s']:.4f}s{status}")
        for stage, seconds in result.stage_timings.items():
            print(f"stage {stage:>10}: {seconds:.4f}s")
        for cache, delta in result.cache_stats.items():
            print(f"cache {cache}: {delta['hits']} hits / "
                  f"{delta['misses']} misses")
    if args.qasm:
        if result.program is not None and args.layers > 1:
            exported = result.program.flatten()
            comment = (f"{problem.name} on {coupling.name} "
                       f"(p={result.program.p} program, flattened)")
        else:
            exported = result.circuit
            comment = f"{problem.name} on {coupling.name}"
        with open(args.qasm, "w") as handle:
            handle.write(to_qasm(exported, comment=comment))
        print(f"qasm written to {args.qasm}")
    return 0


def _cmd_batch(args) -> int:
    from .batch import compile_many, jobs_for
    from .batch.engine import DEFAULT_MAX_POOL_RESTARTS
    from .resilience import JournalError, RetryPolicy

    methods = [m.strip() for m in args.method.split(",") if m.strip()]
    if not methods:
        print("error: --method needs at least one compiler name",
              file=sys.stderr)
        return 2
    if args.resume and not args.journal:
        print("error: --resume requires --journal FILE", file=sys.stderr)
        return 2
    if args.max_pool_restarts is not None and args.max_pool_restarts < 0:
        print("error: --max-pool-restarts must be >= 0", file=sys.stderr)
        return 2
    try:
        jobs = jobs_for(
            args.arch, args.qubits, methods=methods,
            workloads=(args.workload,), density=args.density,
            seeds=tuple(range(args.seed, args.seed + args.count)),
            validate=not args.no_validate, lint=args.lint,
            layers=args.layers, mixer=args.mixer)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    retry = RetryPolicy(max_attempts=args.retries) if args.retries else None
    try:
        report = compile_many(
            jobs, workers=args.workers, timeout_s=args.timeout,
            executor="serial" if args.serial else "process",
            retry=retry, journal=args.journal, resume=args.resume,
            max_pool_restarts=(DEFAULT_MAX_POOL_RESTARTS
                               if args.max_pool_restarts is None
                               else args.max_pool_restarts))
    except (JournalError, ValueError) as exc:
        # JournalError: incompatible resume.  ValueError: bad engine
        # arguments or a malformed REPRO_FAULT_PLAN — config errors, not
        # job failures.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_table(
        ["job", "status", "depth", "CX", "SWAPs", "seconds"],
        report.rows(),
        title=f"batch: {len(jobs)} jobs on {','.join(args.arch)}"))
    print(report.summary())
    if args.timeout and not report.timeout_enforced:
        print("note: per-job timeout not enforced on this platform")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_json(), handle, indent=2)
        print(f"report written to {args.json}")
    if report.failures:
        return 1
    return 1 if args.lint and report.lint_errors else 0


def _cmd_serve(args) -> int:
    from .exceptions import SpecificationError
    from .serve import serve_main

    if args.port < 0 or args.port > 65535:
        print("error: --port must be in [0, 65535]", file=sys.stderr)
        return 2
    try:
        return serve_main(args)
    except (SpecificationError, OSError) as exc:
        # Bad pool spec, unbindable port, unwritable store directory —
        # configuration problems, not serving failures.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _split_codes(text: Optional[str]) -> Optional[List[str]]:
    """Comma-separated rule codes -> list (``None`` stays ``None``)."""
    if text is None:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _load_lint_target(path: str):
    """Load one lint input file.

    Returns ``(circuit, mapping_or_None, expected_metrics_or_None)``.
    Circuits load through the *unchecked* deserializer so corrupt
    documents become RL002/RL003 diagnostics instead of load failures.
    """
    from .ir.qasm import from_qasm
    from .ir.serialize import circuit_from_dict, mapping_from_dict

    if path.endswith(".qasm"):
        with open(path) as handle:
            return from_qasm(handle.read()), None, None
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError("top-level JSON value is not an object")
    if "circuit" in data:  # compiled-result document
        circuit = circuit_from_dict(data["circuit"], check=False)
        mapping = mapping_from_dict(data["initial_mapping"])
        return circuit, mapping, data.get("metrics")
    if "ops" in data:  # bare circuit document
        return circuit_from_dict(data, check=False), None, None
    raise ValueError(
        "unrecognized document: expected a compiled-result or circuit "
        "JSON (repro.ir.serialize format) or a .qasm file")


def _lint_problem(args):
    """Resolve the problem graph a lint run checks against."""
    from .ir.serialize import problem_from_dict
    from .problems import regular_for_density

    if args.problem:
        with open(args.problem) as handle:
            return problem_from_dict(json.load(handle))
    if args.qubits is None:
        raise ValueError(
            "lint needs the problem the circuit should implement: pass "
            "--problem FILE, or --qubits N (with --workload/--density/"
            "--seed) to regenerate it")
    if args.workload == "clique":
        return clique(args.qubits)
    if args.workload == "reg":
        return regular_for_density(args.qubits, args.density,
                                   seed=args.seed)
    return random_problem_graph(args.qubits, args.density, seed=args.seed)


def _cmd_lint(args) -> int:
    from .exceptions import ReproError
    from .ir.mapping import Mapping
    from .lint import lint_circuit, render_json, render_text, resolve_rules

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    try:
        resolve_rules(select=select, ignore=ignore)
        problem = _lint_problem(args)
    except (OSError, ValueError, KeyError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    total_errors = 0
    total_warnings = 0
    json_payloads = []
    for path in args.files:
        try:
            circuit, mapping, expected = _load_lint_target(path)
            coupling = architecture_for(args.arch, circuit.n_qubits)
            if mapping is None:
                if circuit.n_qubits < problem.n_vertices:
                    raise ValueError(
                        f"{path}: circuit has {circuit.n_qubits} qubits "
                        f"but the problem needs {problem.n_vertices}")
                mapping = Mapping.trivial(problem.n_vertices,
                                          circuit.n_qubits)
            report = lint_circuit(
                circuit, coupling.edges, mapping, problem.edges,
                allow_repeats=args.allow_repeats,
                require_all_edges=not args.no_require_all_edges,
                expected=expected, select=select, ignore=ignore)
        except (OSError, ValueError, KeyError, ReproError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        counts = report.counts()
        total_errors += counts["error"]
        total_warnings += counts["warning"]
        if args.fmt == "json":
            json_payloads.append(render_json(report, source=path))
        else:
            print(render_text(report, source=path))
    if args.fmt == "json":
        totals = {"error": total_errors, "warning": total_warnings}
        print(json.dumps({"version": 1, "files": json_payloads,
                          "totals": totals}, indent=2))
    if total_errors or (args.strict and total_warnings):
        return 1
    return 0


def _cmd_check(args) -> int:
    from dataclasses import asdict
    from pathlib import Path

    from .checkers import (DEFAULT_BASELINE_NAME, all_checkers,
                           apply_baseline, check_paths, load_baseline)
    from .lint.diagnostics import LintReport
    from .lint.reporters import render_json, render_text

    if args.list_rules:
        for rule in all_checkers():
            print(f"{rule.code}  {rule.name:<24} {rule.severity}")
            print(f"       {rule.description}")
            print(f"       escape: {rule.escape}")
        return 0

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    paths = args.paths or ["src/repro"]
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and Path(DEFAULT_BASELINE_NAME).is_file():
        baseline_path = DEFAULT_BASELINE_NAME
    try:
        entries = load_baseline(baseline_path) \
            if baseline_path and not args.no_baseline else ()
        findings = check_paths(
            paths,
            select=tuple(select) if select else None,
            ignore=tuple(ignore) if ignore else None,
            restrict=not args.no_restrict)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    remaining, suppressed, stale = apply_baseline(findings, tuple(entries))
    report = LintReport(diagnostics=remaining)
    source = " ".join(str(p) for p in paths)
    payload = render_json(report, source=source)
    payload["suppressed_baseline"] = suppressed
    payload["stale_baseline"] = [asdict(entry) for entry in stale]
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n",
                                     encoding="utf-8")
    if args.fmt == "json":
        print(json.dumps(payload, indent=2))
    else:
        print(render_text(report, source=source))
        if suppressed:
            print(f"  {suppressed} finding(s) suppressed by baseline "
                  f"({baseline_path})")
        for entry in stale:
            print(f"  stale baseline entry: {entry.code} {entry.path} "
                  f"{entry.symbol or ''} — finding no longer occurs; "
                  f"remove it".rstrip())
    return 1 if report.errors else 0


def _cmd_compare(args) -> int:
    problem = random_problem_graph(args.qubits, args.density, seed=args.seed)
    coupling = architecture_for(args.arch, args.qubits)
    rows = []
    for method in ("greedy", "ata", "hybrid"):
        result = compile_qaoa(coupling, problem, method=method)
        result.validate(coupling, problem)
        rows.append([method, result.depth(), result.gate_count,
                     result.swap_count, result.wall_time_s])
    print(format_table(["method", "depth", "CX", "SWAPs", "seconds"], rows,
                       title=f"{problem.name} on {coupling.name}"))
    return 0


def _cmd_clique(args) -> int:
    coupling = architecture_for(args.arch, args.qubits)
    problem = clique(args.qubits)
    result = compile_qaoa(coupling, problem, method="ata")
    result.validate(coupling, problem)
    print(f"clique-{args.qubits} on {coupling.name}: "
          f"depth={result.depth()} ({result.depth() / args.qubits:.2f} per "
          f"qubit), cx={result.gate_count}")
    return 0


def _solve_problem(args):
    """The problem graph a ``solve`` run schedules."""
    from .problems import biclique, regular_for_density

    if args.workload == "clique":
        return clique(args.qubits)
    if args.workload == "biclique":
        half = args.qubits // 2
        return biclique(args.qubits - half, half)
    if args.workload == "reg":
        return regular_for_density(args.qubits, args.density, seed=args.seed)
    return random_problem_graph(args.qubits, args.density, seed=args.seed)


def _cmd_solve(args) -> int:
    from .exceptions import SolverError
    from .solver import solve_depth_optimal

    coupling = architecture_for(args.arch, args.qubits)
    problem = _solve_problem(args)
    if problem.n_vertices > coupling.n_qubits:
        print(f"error: problem has {problem.n_vertices} qubits but "
              f"{coupling.name} has only {coupling.n_qubits}",
              file=sys.stderr)
        return 2
    try:
        result = solve_depth_optimal(
            coupling, problem.edges, gamma=args.gamma,
            max_nodes=args.max_nodes,
            use_heuristic=not args.no_heuristic,
            minimize_swaps=args.minimize_swaps,
            strategy=args.strategy)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stats = result.stats
    print(f"problem:  {problem}")
    print(f"device:   {coupling}")
    print(f"depth:    {result.depth}")
    print(f"swaps:    {result.circuit.swap_count}")
    print(f"strategy: {stats.strategy}")
    print(f"nodes:    {stats.nodes_expanded} expanded / "
          f"{stats.nodes_generated} generated")
    print(f"dedupe:   {stats.dedupe_hits} hits; "
          f"open-list peak {stats.heap_peak}")
    print(f"h evals:  {stats.heuristic_evals}")
    print(f"time:     {stats.wall_time_s:.3f}s")
    if args.qasm:
        with open(args.qasm, "w") as handle:
            handle.write(to_qasm(result.circuit,
                                 comment=f"optimal {problem.name} on "
                                         f"{coupling.name}"))
        print(f"qasm written to {args.qasm}")
    if args.json:
        payload = {
            "problem": problem.name,
            "arch": coupling.name,
            "depth": result.depth,
            "swaps": result.circuit.swap_count,
            **stats.as_dict(),
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"report written to {args.json}")
    return 0


def _cmd_info(args) -> int:
    coupling = architecture_for(args.arch, args.qubits)
    print(f"name:      {coupling.name}")
    print(f"kind:      {coupling.kind}")
    print(f"qubits:    {coupling.n_qubits}")
    print(f"couplings: {coupling.n_edges}")
    print(f"max degree:{coupling.max_degree():>2}")
    print(f"diameter:  {int(coupling.distance_matrix.max())}")
    for key in ("rows", "cols", "width", "dims"):
        if key in coupling.metadata:
            print(f"{key}: {coupling.metadata[key]}")
    from .arch.draw import draw_architecture
    print()
    print(draw_architecture(coupling))
    return 0


_COMMANDS = {
    "compile": _cmd_compile,
    "compare": _cmd_compare,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
    "check": _cmd_check,
    "clique": _cmd_clique,
    "solve": _cmd_solve,
    "info": _cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
