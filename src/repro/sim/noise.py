"""Noisy-execution substitution for the real-machine experiments.

The paper runs compiled circuits on IBM Mumbai.  Offline, we model the
device with the standard first-order channel: with probability ``ESP``
(the compiled circuit's estimated success probability under the synthetic
calibration) the circuit acts ideally; otherwise the register fully
depolarises::

    p_noisy = ESP * p_ideal + (1 - ESP) / 2^n

This keeps the one property every end-to-end claim rests on — circuits
with fewer CX and lower depth retain more signal — while exercising the
identical compile -> execute -> optimise code path.  Shot noise is applied
on top by multinomial sampling.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def depolarized_probabilities(ideal: np.ndarray, esp: float) -> np.ndarray:
    """Mix the ideal distribution with the fully-mixed state."""
    if not 0.0 <= esp <= 1.0:
        raise ValueError(f"esp must be in [0, 1], got {esp}")
    dim = ideal.shape[0]
    return esp * ideal + (1.0 - esp) / dim


def sample_counts(probabilities: np.ndarray, shots: int,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Multinomial shot sampling; returns counts per basis state."""
    if rng is None:
        rng = np.random.default_rng()
    return rng.multinomial(shots, probabilities / probabilities.sum())


def empirical_distribution(counts: np.ndarray) -> np.ndarray:
    """Normalise shot counts into a probability distribution."""
    total = counts.sum()
    if total == 0:
        raise ValueError("no shots recorded")
    return counts / total


def tvd(p: np.ndarray, q: np.ndarray) -> float:
    """Total variation distance, the paper's fidelity metric (Section 7.1)."""
    return 0.5 * float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def apply_readout_errors(probabilities: np.ndarray,
                         flip_rates: Dict[int, float]) -> np.ndarray:
    """Push a distribution through per-qubit binary symmetric channels.

    ``flip_rates[q]`` is the probability that qubit ``q``'s measurement
    outcome flips.  Qubit ``q`` is bit ``n-1-q`` of the basis index (the
    package-wide big-endian convention).  Cost: O(n * 2^n).
    """
    dist = np.asarray(probabilities, dtype=float)
    n = int(np.log2(dist.shape[0]))
    if 2 ** n != dist.shape[0]:
        raise ValueError("distribution length must be a power of two")
    tensor = dist.reshape((2,) * n)
    for qubit, rate in sorted(flip_rates.items()):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"flip rate {rate} out of range")
        if qubit >= n:
            raise ValueError(f"qubit {qubit} out of range for {n} qubits")
        flipped = np.flip(tensor, axis=qubit)
        tensor = (1.0 - rate) * tensor + rate * flipped
    return tensor.reshape(-1)
