"""Dense statevector simulator.

Convention: qubit ``q`` is tensor axis ``q`` of the state reshaped to
``(2,) * n`` — qubit 0 is the most significant bit of a basis index.  This
matches :meth:`repro.problems.QaoaProblem.cut_values_all` and the test
helpers.

Supports the package's full gate set (H, RX, RZ, P, CX, CPHASE, SWAP); fine
up to ~24 qubits, far beyond what the end-to-end experiments need (≤20).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..ir.circuit import Circuit
from ..ir.gates import CPHASE, CX, H, PHASE, RX, RZ, SWAP, Op

_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
_CX = np.array([[1, 0, 0, 0],
                [0, 1, 0, 0],
                [0, 0, 0, 1],
                [0, 0, 1, 0]], dtype=complex).reshape(2, 2, 2, 2)
_SWAP = np.array([[1, 0, 0, 0],
                  [0, 0, 1, 0],
                  [0, 1, 0, 0],
                  [0, 0, 0, 1]], dtype=complex).reshape(2, 2, 2, 2)


def zero_state(n_qubits: int) -> np.ndarray:
    """The |0...0> state as a rank-n tensor."""
    state = np.zeros((2,) * n_qubits, dtype=complex)
    state[(0,) * n_qubits] = 1.0
    return state


def _one_qubit_matrix(op: Op) -> np.ndarray:
    theta = op.param or 0.0
    if op.kind == H:
        return _H
    if op.kind == RX:
        c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
        return np.array([[c, s], [s, c]], dtype=complex)
    if op.kind == RZ:
        return np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)])
    if op.kind == PHASE:
        return np.diag([1.0, np.exp(1j * theta)]).astype(complex)
    raise ValueError(f"unsupported single-qubit op {op!r}")


def _two_qubit_tensor(op: Op) -> np.ndarray:
    if op.kind == CX:
        return _CX
    if op.kind == SWAP:
        return _SWAP
    if op.kind == CPHASE:
        g = op.param or 0.0
        return np.diag([1, 1, 1, np.exp(1j * g)]).astype(
            complex).reshape(2, 2, 2, 2)
    raise ValueError(f"unsupported two-qubit op {op!r}")


def apply_op(state: np.ndarray, op: Op) -> np.ndarray:
    """Apply one operation to a rank-n state tensor (returns a new array)."""
    if len(op.qubits) == 1:
        q = op.qubits[0]
        matrix = _one_qubit_matrix(op)
        state = np.tensordot(matrix, state, axes=([1], [q]))
        return np.moveaxis(state, 0, q)
    a, b = op.qubits
    tensor = _two_qubit_tensor(op)
    state = np.tensordot(tensor, state, axes=([2, 3], [a, b]))
    return np.moveaxis(state, (0, 1), (a, b))


def run_circuit(circuit: Circuit,
                state: Optional[np.ndarray] = None) -> np.ndarray:
    """Run a circuit from |0...0> (or a provided state)."""
    if state is None:
        state = zero_state(circuit.n_qubits)
    elif state.ndim != circuit.n_qubits:
        raise ValueError("state rank does not match circuit width")
    for op in circuit:
        state = apply_op(state, op)
    return state


def probabilities(state: np.ndarray) -> np.ndarray:
    """Measurement distribution over all 2^n basis states (flat array)."""
    return np.abs(state.reshape(-1)) ** 2
