"""End-to-end QAOA execution — the Figs 24/25 pipeline.

``logical_equivalent`` reduces a compiled (physical, SWAP-inserted)
circuit back to the logical interaction sequence by tracking the mapping,
so simulation runs on ``n_logical`` qubits while *noise* is charged for the
full physical circuit (SWAPs included) through its ESP.

``QaoaRunner`` performs the classical optimisation loop with COBYLA
(scipy), 8000 shots per round by default, minimising the negated expected
MaxCut value — exactly the paper's setup on IBM Mumbai.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..arch.noise import NoiseModel
from ..compiler.result import CompiledResult
from ..ir.circuit import Circuit
from ..ir.gates import CPHASE, SWAP, Op
from ..ir.mapping import Mapping
from ..problems.qaoa import QaoaProblem
from .noise import depolarized_probabilities, sample_counts, tvd
from .statevector import probabilities, run_circuit


def logical_equivalent(circuit: Circuit, initial_mapping: Mapping,
                       n_logical: int) -> Circuit:
    """The logical CPHASE sequence a compiled circuit implements."""
    mapping = initial_mapping.copy()
    logical = Circuit(n_logical)
    for op in circuit:
        if op.kind == CPHASE:
            lu = mapping.logical(op.qubits[0])
            lv = mapping.logical(op.qubits[1])
            if lu is None or lv is None:
                raise ValueError(f"{op!r} touches an unoccupied qubit")
            logical.append(Op.cphase(lu, lv, op.param))
        elif op.kind == SWAP:
            mapping.swap_physical(*op.qubits)
    return logical


def final_mapping_of(circuit: Circuit, initial_mapping: Mapping) -> Mapping:
    """The logical placement after all of a compiled circuit's SWAPs."""
    mapping = initial_mapping.copy()
    for op in circuit:
        if op.kind == SWAP:
            mapping.swap_physical(*op.qubits)
    return mapping


def qaoa_layer_circuit(problem: QaoaProblem, cost_block: Circuit,
                       gamma: float, beta: float) -> Circuit:
    """H-wall + compiled cost block (re-angled) + mixer wall, on logical qubits."""
    return qaoa_multilayer_circuit(problem, cost_block, [gamma], [beta])


def qaoa_multilayer_circuit(problem: QaoaProblem, cost_block: Circuit,
                            gammas: Sequence[float],
                            betas: Sequence[float]) -> Circuit:
    """Depth-p QAOA from one compiled cost block.

    The compiled block's *structure* is angle-independent, so deeper QAOA
    re-runs the same block with per-layer angles (the paper's Section 7.4
    setup: "the circuit structure, 2-qubit gates do not change").
    """
    if len(gammas) != len(betas):
        raise ValueError("gammas and betas must have equal length")
    n = problem.n_qubits
    circuit = Circuit(n)
    for q in range(n):
        circuit.append(Op.h(q))
    for gamma, beta in zip(gammas, betas):
        for op in cost_block:
            if op.kind != CPHASE:
                raise ValueError("cost block must contain only CPHASE ops")
            circuit.append(Op.cphase(op.qubits[0], op.qubits[1], gamma))
        for q in range(n):
            circuit.append(Op.rx(q, 2.0 * beta))
    return circuit


@dataclass
class QaoaRound:
    """One optimizer round: the angles tried and the measured energy."""

    gamma: object  # float (p=1) or tuple of per-layer angles
    beta: object
    energy: float  # negated expected cut (smaller is better)


@dataclass
class QaoaRunResult:
    """Full optimisation trace plus the circuit's ESP."""

    rounds: List[QaoaRound] = field(default_factory=list)
    best_energy: float = math.inf
    esp: float = 1.0

    @property
    def energies(self) -> List[float]:
        """Per-round measured energies, in execution order."""
        return [r.energy for r in self.rounds]

    def best_so_far(self) -> List[float]:
        """Monotone best-seen trace (the curve plotted in Figs 24/25)."""
        out, best = [], math.inf
        for e in self.energies:
            best = min(best, e)
            out.append(best)
        return out


class QaoaRunner:
    """COBYLA-driven QAOA loop over a compiled circuit on a noisy device."""

    def __init__(
        self,
        problem: QaoaProblem,
        compiled: CompiledResult,
        noise: Optional[NoiseModel] = None,
        shots: int = 8000,
        seed: int = 0,
        p: int = 1,
        include_readout: bool = False,
    ) -> None:
        if p < 1:
            raise ValueError("QAOA depth p must be >= 1")
        self.problem = problem
        self.compiled = compiled
        self.shots = shots
        self.p = p
        self.rng = np.random.default_rng(seed)
        self.cost_block = logical_equivalent(
            compiled.circuit, compiled.initial_mapping, problem.n_qubits)
        block_esp = noise.esp(compiled.circuit) if noise is not None else 1.0
        # The physical circuit repeats once per layer.
        self.esp = block_esp ** p
        self._cut_values = problem.cut_values_all()
        # Per-logical-qubit readout flip rates at the measurement homes.
        self.readout_rates: dict = {}
        if include_readout and noise is not None:
            final = final_mapping_of(compiled.circuit,
                                     compiled.initial_mapping)
            self.readout_rates = {
                q: noise.readout_error[final.physical(q)]
                for q in range(problem.n_qubits)}

    # -- single evaluations -----------------------------------------------------

    def _angles(self, gamma, beta) -> tuple:
        gammas = [gamma] * self.p if np.isscalar(gamma) else list(gamma)
        betas = [beta] * self.p if np.isscalar(beta) else list(beta)
        if len(gammas) != self.p or len(betas) != self.p:
            raise ValueError(f"expected {self.p} angles per schedule")
        return gammas, betas

    def ideal_probabilities(self, gamma, beta) -> np.ndarray:
        """Noise-free measurement distribution at the given angles."""
        gammas, betas = self._angles(gamma, beta)
        circuit = qaoa_multilayer_circuit(self.problem, self.cost_block,
                                          gammas, betas)
        return probabilities(run_circuit(circuit))

    def noisy_probabilities(self, gamma, beta) -> np.ndarray:
        """Device distribution: ESP mixture plus optional readout flips."""
        noisy = depolarized_probabilities(
            self.ideal_probabilities(gamma, beta), self.esp)
        if self.readout_rates:
            from .noise import apply_readout_errors

            noisy = apply_readout_errors(noisy, self.readout_rates)
        return noisy

    def measure_energy(self, gamma, beta) -> float:
        """One device round: sample shots, return the negated expected cut."""
        noisy = self.noisy_probabilities(gamma, beta)
        counts = sample_counts(noisy, self.shots, self.rng)
        estimate = float(np.dot(counts, self._cut_values)) / self.shots
        return -estimate

    def tvd_vs_ideal(self, gamma: float, beta: float,
                     shots: Optional[int] = None) -> float:
        """The Section 7.4 TVD metric at fixed angles."""
        ideal = self.ideal_probabilities(gamma, beta)
        counts = sample_counts(
            depolarized_probabilities(ideal, self.esp),
            shots or self.shots, self.rng)
        return tvd(counts / counts.sum(), ideal)

    # -- optimisation loop --------------------------------------------------------

    def optimize(self, max_rounds: int = 30,
                 x0: Optional[Sequence[float]] = None) -> QaoaRunResult:
        """Minimise energy with COBYLA for ``max_rounds`` circuit runs.

        The parameter vector is ``[gamma_1..gamma_p, beta_1..beta_p]``.
        """
        from scipy.optimize import minimize

        if x0 is None:
            x0 = [0.4] * (2 * self.p)
        if len(x0) != 2 * self.p:
            raise ValueError(f"x0 must have {2 * self.p} entries")
        result = QaoaRunResult(esp=self.esp)

        def objective(params: np.ndarray) -> float:
            gammas = [float(v) for v in params[:self.p]]
            betas = [float(v) for v in params[self.p:]]
            energy = self.measure_energy(gammas, betas)
            result.rounds.append(
                QaoaRound(tuple(gammas), tuple(betas), energy))
            result.best_energy = min(result.best_energy, energy)
            return energy

        minimize(objective, x0=np.asarray(x0, dtype=float),
                 method="COBYLA",
                 options={"maxiter": max_rounds, "rhobeg": 0.5})
        # COBYLA may stop early; pad bookkeeping is unnecessary — rounds
        # holds exactly the evaluations the "device" executed.
        return result
