"""End-to-end QAOA execution — the Figs 24/25 pipeline.

``logical_equivalent`` reduces a compiled (physical, SWAP-inserted)
circuit back to the logical interaction sequence by tracking the mapping,
so simulation runs on ``n_logical`` qubits while *noise* is charged for the
full physical circuit (SWAPs included) through its ESP.

``QaoaRunner`` performs the classical optimisation loop with COBYLA
(scipy), 8000 shots per round by default, minimising the negated expected
MaxCut value — exactly the paper's setup on IBM Mumbai.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..arch.noise import NoiseModel
from ..compiler.result import CompiledResult
from ..ir.circuit import Circuit
from ..ir.gates import CPHASE, SWAP, Op
from ..ir.mapping import Mapping
from ..ir.program import Program
from ..problems.qaoa import QaoaProblem
from .noise import depolarized_probabilities, sample_counts, tvd
from .statevector import probabilities, run_circuit


def logical_equivalent(circuit: Circuit, initial_mapping: Mapping,
                       n_logical: int) -> Circuit:
    """The logical CPHASE sequence a compiled circuit implements."""
    mapping = initial_mapping.copy()
    logical = Circuit(n_logical)
    for op in circuit:
        if op.kind == CPHASE:
            lu = mapping.logical(op.qubits[0])
            lv = mapping.logical(op.qubits[1])
            if lu is None or lv is None:
                raise ValueError(f"{op!r} touches an unoccupied qubit")
            logical.append(Op.cphase(lu, lv, op.param))
        elif op.kind == SWAP:
            mapping.swap_physical(*op.qubits)
    return logical


def final_mapping_of(circuit: Circuit, initial_mapping: Mapping) -> Mapping:
    """The logical placement after all of a compiled circuit's SWAPs."""
    mapping = initial_mapping.copy()
    for op in circuit:
        if op.kind == SWAP:
            mapping.swap_physical(*op.qubits)
    return mapping


def qaoa_layer_circuit(problem: QaoaProblem, cost_block: Circuit,
                       gamma: float, beta: float) -> Circuit:
    """H-wall + compiled cost block (re-angled) + mixer wall, on logical qubits."""
    return qaoa_multilayer_circuit(problem, cost_block, [gamma], [beta])


def qaoa_multilayer_circuit(problem: QaoaProblem, cost_block: Circuit,
                            gammas: Sequence[float],
                            betas: Sequence[float]) -> Circuit:
    """Depth-p QAOA from one compiled cost block.

    The compiled block's *structure* is angle-independent, so deeper QAOA
    re-runs the same block with per-layer angles (the paper's Section 7.4
    setup: "the circuit structure, 2-qubit gates do not change").
    """
    if len(gammas) != len(betas):
        raise ValueError("gammas and betas must have equal length")
    n = problem.n_qubits
    weighted = problem.graph.is_weighted
    circuit = Circuit(n)
    for q in range(n):
        circuit.append(Op.h(q))
    for gamma, beta in zip(gammas, betas):
        for op in cost_block:
            if op.kind != CPHASE:
                raise ValueError("cost block must contain only CPHASE ops")
            u, v = op.qubits
            angle = gamma * problem.graph.weight(u, v) if weighted else gamma
            circuit.append(Op.cphase(u, v, angle))
        for q in range(n):
            circuit.append(Op.rx(q, 2.0 * beta))
    return circuit


def program_logical_circuit(problem: QaoaProblem, program: Program,
                            gammas: Sequence[float],
                            betas: Sequence[float]) -> Circuit:
    """The logical circuit a compiled program implements, re-angled.

    Each cost layer is walked under its own recorded input mapping, so
    every CPHASE lands on the right *logical* edge regardless of the
    permutation state — including reversed layers — with angle
    ``gamma_k * w(edge)`` (weights are 1 on unweighted graphs).  Mixer
    walls become logical RX walls at ``2 * beta_k``; programs assembled
    without physical mixer layers (``mixer="none"``) still get a logical
    mixer after each cost layer, matching the single-circuit runner
    where mixers are never part of the compiled artifact.
    """
    if len(gammas) != program.p or len(betas) != program.p:
        raise ValueError(
            f"program has p={program.p} cost layers; expected that many "
            f"gammas and betas")
    n = problem.n_qubits
    weighted = problem.graph.is_weighted
    virtual_mixers = program.mixer == "none"
    circuit = Circuit(n)
    for q in range(n):
        circuit.append(Op.h(q))
    cost_seen = mixer_seen = 0
    for layer in program.layers:
        if layer.is_cost:
            gamma = gammas[cost_seen]
            cost_seen += 1
            mapping = layer.input_mapping(program.n_qubits)
            for op in layer.circuit:
                if op.kind == CPHASE:
                    lu = mapping.logical(op.qubits[0])
                    lv = mapping.logical(op.qubits[1])
                    if lu is None or lv is None:
                        raise ValueError(
                            f"{op!r} touches an unoccupied qubit")
                    angle = (gamma * problem.graph.weight(lu, lv)
                             if weighted else gamma)
                    circuit.append(Op.cphase(lu, lv, angle))
                elif op.kind == SWAP:
                    mapping.swap_physical(*op.qubits)
            if virtual_mixers:
                beta = betas[mixer_seen]
                mixer_seen += 1
                for q in range(n):
                    circuit.append(Op.rx(q, 2.0 * beta))
        elif layer.role == "mixer":
            beta = betas[mixer_seen]
            mixer_seen += 1
            for q in range(n):
                circuit.append(Op.rx(q, 2.0 * beta))
    return circuit


@dataclass
class QaoaRound:
    """One optimizer round: the angles tried and the measured energy."""

    gamma: object  # float (p=1) or tuple of per-layer angles
    beta: object
    energy: float  # negated expected cut (smaller is better)


@dataclass
class QaoaRunResult:
    """Full optimisation trace plus the circuit's ESP."""

    rounds: List[QaoaRound] = field(default_factory=list)
    best_energy: float = math.inf
    esp: float = 1.0

    @property
    def energies(self) -> List[float]:
        """Per-round measured energies, in execution order."""
        return [r.energy for r in self.rounds]

    def best_so_far(self) -> List[float]:
        """Monotone best-seen trace (the curve plotted in Figs 24/25)."""
        out, best = [], math.inf
        for e in self.energies:
            best = min(best, e)
            out.append(best)
        return out


class QaoaRunner:
    """COBYLA-driven QAOA loop over a compiled circuit on a noisy device.

    When the compiled result carries a multi-layer
    :class:`~repro.ir.program.Program` (``layers > 1``) and ``p`` is left
    at its default (or matches the program's depth), the runner executes
    the *program*: the logical circuit is rebuilt per layer under each
    layer's recorded mapping, ESP is charged for every physical layer —
    mixer walls included — and readout homes come from the program's
    final mapping (the initial placement again whenever the
    reversed-layer cancellation closed the permutation).  Otherwise the
    historic single-block behaviour is preserved exactly: the compiled
    cost block repeats ``p`` times and ESP compounds as ``block_esp**p``.
    """

    def __init__(
        self,
        problem: QaoaProblem,
        compiled: CompiledResult,
        noise: Optional[NoiseModel] = None,
        shots: int = 8000,
        seed: int = 0,
        p: Optional[int] = None,
        include_readout: bool = False,
    ) -> None:
        if p is not None and p < 1:
            raise ValueError("QAOA depth p must be >= 1")
        self.problem = problem
        self.compiled = compiled
        self.shots = shots
        self.rng = np.random.default_rng(seed)
        program = getattr(compiled, "program", None)
        self.program: Optional[Program] = None
        if (program is not None and program.p > 1
                and (p is None or p == program.p)):
            self.program = program
            self.p = program.p
            self.cost_block = None
            if noise is not None:
                esp = 1.0
                for layer in program.layers:
                    esp *= noise.esp(layer.circuit)
                self.esp = esp
            else:
                self.esp = 1.0
        else:
            self.p = 1 if p is None else p
            self.cost_block = logical_equivalent(
                compiled.circuit, compiled.initial_mapping,
                problem.n_qubits)
            block_esp = (noise.esp(compiled.circuit)
                         if noise is not None else 1.0)
            # The physical circuit repeats once per layer.
            self.esp = block_esp ** self.p
        self._cut_values = problem.cut_values_all()
        # Per-logical-qubit readout flip rates at the measurement homes.
        self.readout_rates: dict = {}
        if include_readout and noise is not None:
            if self.program is not None:
                final = self.program.final_mapping()
            else:
                final = final_mapping_of(compiled.circuit,
                                         compiled.initial_mapping)
            self.readout_rates = {
                q: noise.readout_error[final.physical(q)]
                for q in range(problem.n_qubits)}

    # -- single evaluations -----------------------------------------------------

    def _angles(self, gamma, beta) -> tuple:
        gammas = [gamma] * self.p if np.isscalar(gamma) else list(gamma)
        betas = [beta] * self.p if np.isscalar(beta) else list(beta)
        if len(gammas) != self.p or len(betas) != self.p:
            raise ValueError(f"expected {self.p} angles per schedule")
        return gammas, betas

    def ideal_probabilities(self, gamma, beta) -> np.ndarray:
        """Noise-free measurement distribution at the given angles."""
        gammas, betas = self._angles(gamma, beta)
        if self.program is not None:
            circuit = program_logical_circuit(self.problem, self.program,
                                              gammas, betas)
        else:
            circuit = qaoa_multilayer_circuit(self.problem, self.cost_block,
                                              gammas, betas)
        return probabilities(run_circuit(circuit))

    def noisy_probabilities(self, gamma, beta) -> np.ndarray:
        """Device distribution: ESP mixture plus optional readout flips."""
        noisy = depolarized_probabilities(
            self.ideal_probabilities(gamma, beta), self.esp)
        if self.readout_rates:
            from .noise import apply_readout_errors

            noisy = apply_readout_errors(noisy, self.readout_rates)
        return noisy

    def measure_energy(self, gamma, beta) -> float:
        """One device round: sample shots, return the negated expected cut."""
        noisy = self.noisy_probabilities(gamma, beta)
        counts = sample_counts(noisy, self.shots, self.rng)
        estimate = float(np.dot(counts, self._cut_values)) / self.shots
        return -estimate

    def tvd_vs_ideal(self, gamma: float, beta: float,
                     shots: Optional[int] = None) -> float:
        """The Section 7.4 TVD metric at fixed angles."""
        ideal = self.ideal_probabilities(gamma, beta)
        counts = sample_counts(
            depolarized_probabilities(ideal, self.esp),
            shots or self.shots, self.rng)
        return tvd(counts / counts.sum(), ideal)

    # -- optimisation loop --------------------------------------------------------

    def optimize(self, max_rounds: int = 30,
                 x0: Optional[Sequence[float]] = None) -> QaoaRunResult:
        """Minimise energy with COBYLA for ``max_rounds`` circuit runs.

        The parameter vector is ``[gamma_1..gamma_p, beta_1..beta_p]``.
        """
        from scipy.optimize import minimize

        if x0 is None:
            x0 = [0.4] * (2 * self.p)
        if len(x0) != 2 * self.p:
            raise ValueError(f"x0 must have {2 * self.p} entries")
        result = QaoaRunResult(esp=self.esp)

        def objective(params: np.ndarray) -> float:
            gammas = [float(v) for v in params[:self.p]]
            betas = [float(v) for v in params[self.p:]]
            energy = self.measure_energy(gammas, betas)
            result.rounds.append(
                QaoaRound(tuple(gammas), tuple(betas), energy))
            result.best_energy = min(result.best_energy, energy)
            return energy

        minimize(objective, x0=np.asarray(x0, dtype=float),
                 method="COBYLA",
                 options={"maxiter": max_rounds, "rhobeg": 0.5})
        # COBYLA may stop early; pad bookkeeping is unnecessary — rounds
        # holds exactly the evaluations the "device" executed.
        return result
