"""Stochastic Pauli-trajectory noise simulation.

A finer-grained alternative to the ESP-depolarizing substitute of
:mod:`repro.sim.noise`: every two-qubit *hardware* operation (CPHASE,
SWAP, or a fused pair) fails independently with its link's per-CX error
rate scaled by its CX cost; a failure injects a uniformly random
non-identity two-qubit Pauli on the logical qubits occupying the link at
that moment.  Averaging over trajectories yields the noisy distribution.

SWAPs act trivially on the logical state, but their *failures* still hit
the logical occupants — which is precisely why circuits with fewer SWAPs
(the paper's thesis) keep more signal.  Tests cross-check that this model
and the ESP mixture order compilers identically.

Cost: one full statevector run per trajectory — use for <= ~12 logical
qubits.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..arch.noise import NoiseModel
from ..compiler.result import CompiledResult
from ..ir.decompose import _FUSED, fusion_units
from ..ir.gates import CPHASE, SWAP, Op, canonical_edge
from ..ir.mapping import Mapping
from ..problems.qaoa import QaoaProblem
from .statevector import apply_op, probabilities, zero_state

#: The 15 non-identity two-qubit Paulis as (P_on_a, P_on_b) kind pairs.
_PAULIS = ("i", "x", "y", "z")


def _apply_pauli(state: np.ndarray, kind: str, qubit: int) -> np.ndarray:
    if kind == "i":
        return state
    if kind == "x":
        return apply_op(state, Op.rx(qubit, np.pi))  # X up to global phase
    if kind == "z":
        return apply_op(state, Op.rz(qubit, np.pi))  # Z up to global phase
    # Y = iXZ: phases cancel in probabilities.
    state = apply_op(state, Op.rz(qubit, np.pi))
    return apply_op(state, Op.rx(qubit, np.pi))


class _NoisyStep:
    """One logical operation plus its failure probability."""

    __slots__ = ("logical_op", "targets", "error")

    def __init__(self, logical_op: Optional[Op],
                 targets: Tuple[int, ...], error: float) -> None:
        self.logical_op = logical_op
        self.targets = targets
        self.error = error


def _build_steps(compiled: CompiledResult, n_logical: int,
                 noise: NoiseModel) -> List[_NoisyStep]:
    """Reduce the physical circuit to logical steps with error rates."""
    mapping: Mapping = compiled.initial_mapping.copy()
    steps: List[_NoisyStep] = []
    for unit_kind, ops in fusion_units(compiled.circuit):
        op = ops[0]
        if not op.is_two_qubit:
            continue  # single-qubit errors are negligible here
        edge = canonical_edge(*op.qubits)
        if unit_kind == _FUSED:
            n_cx = 3
        elif op.kind == CPHASE:
            n_cx = 2
        elif op.kind == SWAP:
            n_cx = 3
        else:
            n_cx = 1
        error = 1.0 - (1.0 - noise.cx_error[edge]) ** n_cx

        unit_ops = ops if unit_kind == _FUSED else [op]
        logical_gate = None
        for unit_op in unit_ops:
            if unit_op.kind == CPHASE:
                lu = mapping.logical(unit_op.qubits[0])
                lv = mapping.logical(unit_op.qubits[1])
                logical_gate = Op.cphase(lu, lv, unit_op.param)
        targets = tuple(mapping.logical(q) for q in op.qubits)
        for unit_op in unit_ops:
            if unit_op.kind == SWAP:
                mapping.swap_physical(*unit_op.qubits)
        steps.append(_NoisyStep(logical_gate, targets, error))
    return steps


def trajectory_probabilities(
    compiled: CompiledResult,
    problem: QaoaProblem,
    gamma: float,
    beta: float,
    noise: NoiseModel,
    n_trajectories: int = 200,
    seed: int = 0,
) -> np.ndarray:
    """Average measurement distribution over noisy trajectories."""
    n = problem.n_qubits
    if n > 14:
        raise ValueError("trajectory simulation limited to 14 qubits")
    steps = _build_steps(compiled, n, noise)
    rng = np.random.default_rng(seed)
    total = np.zeros(2 ** n)

    for _ in range(n_trajectories):
        state = zero_state(n)
        for q in range(n):
            state = apply_op(state, Op.h(q))
        for step in steps:
            if step.logical_op is not None:
                gate = step.logical_op
                state = apply_op(state, Op.cphase(gate.qubits[0],
                                                  gate.qubits[1], gamma))
            if rng.random() < step.error:
                pauli_a = _PAULIS[rng.integers(0, 4)]
                pauli_b = _PAULIS[rng.integers(0, 4)]
                if pauli_a == pauli_b == "i":
                    pauli_a = "x"
                targets = [t for t in step.targets if t is not None]
                if targets:
                    state = _apply_pauli(state, pauli_a, targets[0])
                if len(targets) > 1:
                    state = _apply_pauli(state, pauli_b, targets[1])
        for q in range(n):
            state = apply_op(state, Op.rx(q, 2.0 * beta))
        total += probabilities(state)
    return total / n_trajectories
