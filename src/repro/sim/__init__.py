"""Simulation substrate: statevector engine, noise substitution, QAOA loop."""

from .noise import (depolarized_probabilities, empirical_distribution,
                    sample_counts, tvd)
from .qaoa_runner import (QaoaRound, QaoaRunResult, QaoaRunner,
                          logical_equivalent, program_logical_circuit,
                          qaoa_layer_circuit, qaoa_multilayer_circuit)
from .statevector import apply_op, probabilities, run_circuit, zero_state

__all__ = [
    "zero_state",
    "apply_op",
    "run_circuit",
    "probabilities",
    "depolarized_probabilities",
    "sample_counts",
    "empirical_distribution",
    "tvd",
    "logical_equivalent",
    "qaoa_layer_circuit",
    "qaoa_multilayer_circuit",
    "program_logical_circuit",
    "QaoaRunner",
    "QaoaRunResult",
    "QaoaRound",
]
