"""Batch compilation: many instances, worker pools, caches, telemetry.

The sweep workloads in ``benchmarks/`` and ``repro.analysis.sweeps`` pay
the full pattern-generation and BFS-distance cost per instance when run
serially.  This package provides:

* :func:`compile_many` — fan :class:`BatchJob` specs out over a process
  pool with per-job timeouts and graceful per-instance failure capture,
  plus the resilience hooks (:mod:`repro.resilience`): retry policies,
  crash-safe journaled resume, and worker-death pool restarts;
* process-local memoization of distance matrices and ATA patterns
  (:mod:`repro.batch.cache`), with hit/miss counters surfaced both per
  job and aggregated in the :class:`BatchReport`;
* the ``python -m repro batch`` CLI subcommand built on top.

See ``docs/batch.md`` for the full reference.
"""

from ..exceptions import JobTimeoutError
from .cache import (cache_delta, cache_info, clear_caches,
                    measure_cache_delta)
from .engine import (BatchReport, JobTimeout, compile_many, default_workers,
                     execute_job, jobs_for, reset_timeout_warning)
from .jobs import METHODS, WORKLOADS, BatchJob, JobResult, resolve_compiler
from .pool import POOL_EXECUTORS, PersistentPool

__all__ = [
    "PersistentPool",
    "POOL_EXECUTORS",
    "measure_cache_delta",
    "BatchJob",
    "JobResult",
    "BatchReport",
    "JobTimeout",
    "JobTimeoutError",
    "reset_timeout_warning",
    "compile_many",
    "execute_job",
    "jobs_for",
    "default_workers",
    "resolve_compiler",
    "METHODS",
    "WORKLOADS",
    "cache_info",
    "cache_delta",
    "clear_caches",
]
