"""Batch-facing view of the process-local compilation caches.

Thin re-exports over :mod:`repro._telemetry` plus the per-site accessors,
so batch users have one import for "what is cached and how well is it
hitting".  The sites:

* ``distance_matrix`` — BFS all-pairs matrices, keyed by
  ``(kind, n_qubits, edge set)`` (:mod:`repro.arch.coupling`).
* ``pattern`` — constructed ATA pattern objects, keyed by
  ``(kind, n_qubits, frozen metadata)`` (:mod:`repro.ata.registry`).
* ``pattern_cycles`` — materialized cycle-list replays on cached patterns
  (:mod:`repro.ata.base`).

Caches are per-process: each pool worker warms its own copy (and, under
the ``fork`` start method, inherits the parent's entries for free).

Per-request attribution uses :func:`measure_cache_delta` — a
thread-scoped tally that only sees events raised on the opening thread,
so concurrent requests in one process (thread executor, the serve
daemon) never absorb each other's hits the way subtracting two global
:func:`cache_info` snapshots would.
"""

from __future__ import annotations

from .._telemetry import (CacheDeltaScope, cache_delta, cache_info,
                          clear_caches, measure_cache_delta)
from ..arch.coupling import clear_distance_cache, distance_cache_info
from ..ata.registry import (clear_pattern_cache, pattern_cache_info,
                            pattern_cache_key)

__all__ = [
    "cache_info",
    "cache_delta",
    "CacheDeltaScope",
    "measure_cache_delta",
    "clear_caches",
    "distance_cache_info",
    "clear_distance_cache",
    "pattern_cache_info",
    "clear_pattern_cache",
    "pattern_cache_key",
]
