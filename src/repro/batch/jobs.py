"""Picklable job specifications for the batch compilation engine.

A :class:`BatchJob` names everything a worker process needs to rebuild the
instance from scratch — architecture family and size, workload generator
and seed, compiler method and options — using only primitives, so the spec
crosses a ``ProcessPoolExecutor`` boundary cheaply.  The heavyweight
objects (coupling graph, problem graph, noise model) are constructed
inside the worker, where the process-local distance-matrix and pattern
caches amortize them across the jobs that worker handles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..exceptions import SpecificationError
from ..pipeline.registry import available_methods, get_method

if TYPE_CHECKING:  # runtime imports stay inside build(); see below
    from ..arch import CouplingGraph, NoiseModel
    from ..problems import ProblemGraph

WORKLOADS = ("rand", "reg", "clique")

#: Compiler methods the engine can name — everything in the single
#: method registry (:mod:`repro.pipeline.registry`): the three paper
#: methods plus every registered baseline.  The registry resolves names
#: lazily, so importing :mod:`repro.batch` stays light.
METHODS = available_methods()


def resolve_compiler(method: str) -> Callable:
    """``method`` name -> ``fn(coupling, problem, noise, gamma, **options)``.

    Thin alias for the method registry's
    :meth:`~repro.pipeline.registry.MethodSpec.compile`; raises
    ``ValueError`` for unknown names, listing the registered ones.
    """
    return get_method(method).compile


@dataclass(frozen=True)
class BatchJob:
    """One compilation instance, specified entirely by primitives."""

    arch: str
    n_qubits: int
    workload: str = "rand"
    density: float = 0.3
    seed: int = 0
    method: str = "hybrid"
    gamma: float = 0.0
    #: Program depth p: the compiled cost layer is assembled into this
    #: many alternating cost / reversed-cost layers (plus mixer walls).
    layers: int = 1
    #: ``"rx"`` interleaves mixer walls into the program; ``"none"``
    #: emits cost layers only (Trotterization schedules).
    mixer: str = "rx"
    use_noise: bool = False
    validate: bool = True
    #: Run the circuit linter (:mod:`repro.lint`) over the compiled
    #: result; the diagnostic summary lands in :attr:`JobResult.lint`
    #: and aggregates across the batch in
    #: :meth:`~repro.batch.engine.BatchReport.lint_totals`.
    lint: bool = False
    #: Extra keyword arguments forwarded to the compiler, as a sorted tuple
    #: of ``(name, value)`` pairs so the spec stays hashable and picklable.
    options: Tuple[Tuple[str, object], ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_qubits < 1:
            raise SpecificationError(f"n_qubits must be >= 1 (got {self.n_qubits})")
        if not 0.0 <= self.density <= 1.0:
            raise SpecificationError(
                f"density must be in [0, 1] (got {self.density})")
        if self.workload not in WORKLOADS:
            raise SpecificationError(
                f"unknown workload {self.workload!r}; "
                f"expected one of {WORKLOADS}")
        if self.layers < 1:
            raise SpecificationError(f"layers must be >= 1 (got {self.layers})")
        if self.mixer not in ("rx", "none"):
            raise SpecificationError(
                f"unknown mixer {self.mixer!r}; expected 'rx' or 'none'")
        resolve_compiler(self.method)  # fail fast on unknown methods

    @property
    def name(self) -> str:
        """Stable human-readable identity used in reports and tables."""
        if self.label:
            return self.label
        if self.workload == "clique":
            instance = f"clique-{self.n_qubits}"
        else:
            instance = (f"{self.workload}-{self.n_qubits}"
                        f"-{self.density:g}-s{self.seed}")
        method = self.method if self.layers == 1 \
            else f"{self.method}-p{self.layers}"
        return f"{self.arch}/{instance}/{method}"

    def with_options(self, **options: object) -> "BatchJob":
        """A copy with extra compiler keyword arguments merged in."""
        merged = dict(self.options)
        merged.update(options)
        return replace(self, options=tuple(sorted(merged.items())))

    def build(self) -> Tuple["CouplingGraph", "ProblemGraph",
                             Optional["NoiseModel"]]:
        """Materialize ``(coupling, problem, noise)`` inside the worker."""
        from ..arch import NoiseModel, architecture_for
        from ..problems import (clique, random_problem_graph,
                                regular_for_density)

        coupling = architecture_for(self.arch, self.n_qubits)
        if self.workload == "rand":
            problem = random_problem_graph(self.n_qubits, self.density,
                                           seed=self.seed)
        elif self.workload == "reg":
            problem = regular_for_density(self.n_qubits, self.density,
                                          seed=self.seed)
        else:
            problem = clique(self.n_qubits)
        noise = NoiseModel(coupling, seed=self.seed) if self.use_noise \
            else None
        return coupling, problem, noise


@dataclass
class JobResult:
    """Per-job outcome: metrics on success, a structured error otherwise.

    A failing instance never kills the batch — it surfaces here with
    ``ok=False``, the exception type and message, and the wall time spent.
    """

    job: BatchJob
    ok: bool
    wall_time_s: float = 0.0
    record: Dict = field(default_factory=dict)
    cache: Dict = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: ``repro.lint.render_json`` payload when the job ran with
    #: ``lint=True`` (present even when a later validation step failed
    #: the job, so the full diagnostic picture survives).
    lint: Optional[Dict] = None
    #: One record per *failed* attempt when the engine ran this job
    #: under a retry policy (:mod:`repro.resilience.retry`): ``attempt``
    #: (1-based), ``error_type``, ``error``, ``transient``, and — when a
    #: backoff-then-retry followed — ``retried: True`` + ``backoff_s``.
    #: Empty when the first attempt succeeded or no policy was set.
    attempts: List[Dict] = field(default_factory=list)

    @property
    def metrics(self) -> Dict:
        """Shortcut to the compiled metrics (empty when the job failed)."""
        return {k: v for k, v in self.record.items() if k != "extra"}

    @property
    def telemetry(self) -> Dict:
        """The compiler's ``CompiledResult.extra`` payload (may be empty)."""
        return self.record.get("extra", {})

    @property
    def retries(self) -> int:
        """Backoff-then-retry transitions this job actually took."""
        return sum(1 for record in self.attempts if record.get("retried"))

    @property
    def degraded(self) -> bool:
        """Did the compiler fall back to a cheaper method mid-job?"""
        return bool(self.telemetry.get("degraded"))

    def summary(self) -> str:
        if not self.ok:
            return (f"{self.job.name}: FAILED {self.error_type}: "
                    f"{self.error}")
        return (f"{self.job.name}: depth={self.record.get('depth')} "
                f"cx={self.record.get('cx')} "
                f"time={self.wall_time_s:.3f}s")

    def to_json(self) -> Dict:
        """The outcome as plain data (everything except the job spec).

        This is the payload the crash-safe journal persists
        (:mod:`repro.resilience.journal`); :meth:`from_json` rebuilds an
        equal :class:`JobResult` given the same :class:`BatchJob`.
        """
        return {
            "ok": self.ok,
            "wall_time_s": self.wall_time_s,
            "record": self.record,
            "cache": self.cache,
            "error": self.error,
            "error_type": self.error_type,
            "lint": self.lint,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, job: BatchJob, payload: Dict) -> "JobResult":
        """Rebuild a result journaled by :meth:`to_json` for ``job``."""
        return cls(
            job=job,
            ok=bool(payload.get("ok")),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            record=payload.get("record") or {},
            cache=payload.get("cache") or {},
            error=payload.get("error"),
            error_type=payload.get("error_type"),
            lint=payload.get("lint"),
            attempts=payload.get("attempts") or [],
        )
