"""A warm, persistent worker pool for long-lived serving.

``compile_many`` builds a fresh ``ProcessPoolExecutor`` per call, which
is the right shape for one-shot sweeps but exactly wrong for a daemon:
every call pays pool spin-up, and the process-local memo caches
(distance matrices in :mod:`repro.arch.coupling`, ATA patterns in
:mod:`repro.ata.registry`) die with the workers.  A
:class:`PersistentPool` is created once and kept hot: workers survive
across requests, so their caches keep amortizing, and a broken pool
(worker OOM/segfault/injected kill) is rebuilt in place without losing
the daemon.

Jobs run through the same :func:`~repro.batch.engine.execute_job` entry
point as the batch engine — per-job SIGALRM deadlines, retry policies
and structured failure capture all behave identically.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import (Executor, Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from typing import Dict, Optional

from .._telemetry import count_event
from ..exceptions import SpecificationError
from ..resilience.retry import RetryPolicy
from .engine import execute_job
from .jobs import BatchJob, JobResult

#: Executors a persistent pool supports.  ``"serial"`` is deliberately
#: absent: a daemon must never compile on its event-loop thread, so the
#: closest equivalent is ``"thread"`` with one worker.
POOL_EXECUTORS = ("process", "thread")

__all__ = ["POOL_EXECUTORS", "PersistentPool"]


def default_pool_workers() -> int:
    """Pool size when unspecified: every core, floor one."""
    return os.cpu_count() or 1


class PersistentPool:
    """A restartable, warm worker pool with submission telemetry.

    Thread-safe: :meth:`submit`, :meth:`restart` and :meth:`close` may
    race (the serve daemon submits from its event loop while a restart
    recovers from worker death).  Restarting abandons the broken
    executor — its futures have already failed with ``BrokenExecutor``
    and the *caller* decides which jobs to resubmit, mirroring the batch
    engine's resubmission rounds.
    """

    def __init__(self, workers: Optional[int] = None,
                 executor: str = "process",
                 timeout_s: Optional[float] = None,
                 retry: Optional[RetryPolicy] = None) -> None:
        if executor not in POOL_EXECUTORS:
            raise SpecificationError(
                f"unknown pool executor {executor!r}; expected one of "
                f"{POOL_EXECUTORS}")
        if workers is None:
            workers = default_pool_workers()
        if workers < 1:
            raise SpecificationError(
                f"workers must be >= 1 (got {workers})")
        self.workers = workers
        self.executor = executor
        self.timeout_s = timeout_s
        self.retry = retry
        self._lock = threading.Lock()
        self._pool: Optional[Executor] = self._build()
        #: Jobs handed to a worker (store hits never count here).
        self.submitted = 0
        #: Pool rebuilds after breakage.
        self.restarts = 0

    def _build(self) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=self.workers)
        return ThreadPoolExecutor(max_workers=self.workers)

    def submit(self, job: BatchJob) -> "Future[JobResult]":
        """Dispatch one job to a warm worker; returns its future.

        The future resolves to a :class:`JobResult` (never raises for
        job failures — those are structured records); it raises
        ``BrokenExecutor`` if the worker died, after which
        :meth:`restart` rebuilds the pool.
        """
        with self._lock:
            if self._pool is None:
                raise SpecificationError(
                    "pool is closed; build a new PersistentPool")
            self.submitted += 1
            count_event("batch.pool_submitted")
            return self._pool.submit(execute_job, job, self.timeout_s,
                                     self.retry)

    def restart(self) -> None:
        """Replace a broken executor with a fresh, cold one.

        Cheap to call redundantly: concurrent callers that both saw the
        same breakage serialize here and the second rebuild just warms
        a new pool.  No-op on a closed pool.
        """
        with self._lock:
            if self._pool is None:
                return
            old = self._pool
            self._pool = self._build()
            self.restarts += 1
            count_event("batch.pool_restarts")
        old.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the workers down; idempotent."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    @property
    def closed(self) -> bool:
        return self._pool is None

    def stats(self) -> Dict[str, object]:
        """Plain-data pool telemetry for the serve stats endpoint."""
        return {
            "workers": self.workers,
            "executor": self.executor,
            "submitted": self.submitted,
            "restarts": self.restarts,
            "timeout_s": self.timeout_s,
            "closed": self.closed,
        }

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return (f"PersistentPool(workers={self.workers}, "
                f"executor={self.executor!r}, "
                f"submitted={self.submitted}, restarts={self.restarts})")
