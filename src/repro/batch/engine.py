"""The batch compilation engine: ``compile_many`` over a process pool.

Design (ISSUE 1 tentpole, hardened by the ISSUE 5 resilience layer):

* **Fan-out** — jobs are picklable :class:`BatchJob` specs; workers
  rebuild each instance locally, so the process-local distance-matrix and
  pattern caches (see :mod:`repro._telemetry`) warm up once per worker and
  amortize across every job that worker handles.  With the default
  ``fork`` start method the workers additionally inherit any cache
  entries the parent already holds.
* **Per-job timeout** — enforced *inside* the worker with ``SIGALRM``
  (``signal.setitimer``), so an overrunning instance turns into an
  ``ok=False`` record instead of wedging a pool slot or killing the
  batch.  On platforms/threads without ``SIGALRM`` the timeout degrades
  to unenforced (noted in the report).
* **Graceful failure capture** — any exception in a job (bad spec,
  compilation error, validation failure, timeout) becomes a structured
  :class:`JobResult` with the exception type and message; the remaining
  jobs are unaffected.
* **Retry with backoff** — pass ``retry=RetryPolicy(...)`` and each
  job's transient failures (:class:`~repro.exceptions.TransientError`)
  are re-attempted in-worker with exponential backoff + deterministic
  jitter; the per-attempt records surface in ``JobResult.attempts``.
* **Worker-death recovery** — a killed worker (OOM, segfault, injected
  ``kill`` fault) breaks the whole ``ProcessPoolExecutor``; the engine
  restarts the pool up to ``max_pool_restarts`` times and resubmits only
  the unfinished jobs, so one dead worker never poisons the rest of the
  sweep (``batch.pool_restarts`` telemetry + ``BatchReport.pool_restarts``).
* **Crash-safe journal** — ``journal="sweep.jsonl"`` durably appends each
  finished result (:mod:`repro.resilience.journal`); re-running with
  ``resume=True`` skips completed jobs and reproduces the uninterrupted
  report.

``compile_many`` returns a :class:`BatchReport` that preserves job order,
aggregates cache hit/miss counters and stage timings, and renders a table
via :func:`repro.analysis.format_table`.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from concurrent.futures import (BrokenExecutor, Executor, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor)
from dataclasses import dataclass
from pathlib import Path
from types import FrameType
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Union)

from .._telemetry import count_event, measure_cache_delta
from ..exceptions import JobTimeoutError, SpecificationError
from ..resilience.faults import fault_point, faults_active
from ..resilience.retry import RetryPolicy, execute_with_retry
from .jobs import BatchJob, JobResult

EXECUTORS = ("process", "thread", "serial")

#: Diagnostics embedded per job result (counts stay exact; the payload
#: crosses a process boundary, so the op-level list is capped).
MAX_LINT_DIAGNOSTICS_PER_JOB = 25

#: Pool rebuilds tolerated per ``compile_many`` call before the still-
#: unfinished jobs are marked failed (a poison job that kills its worker
#: every time converges in ``max_pool_restarts + 1`` rounds).
DEFAULT_MAX_POOL_RESTARTS = 2

#: Historic name: the timeout error used to be defined here.  It now
#: lives in :mod:`repro.exceptions` as ``JobTimeoutError`` so the retry
#: policy can classify it (transient, but not retried by default).
JobTimeout = JobTimeoutError


def _alarm_supported() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


#: Process-local: the degraded-timeout warning fires at most once.
_timeout_warning_emitted = False


def reset_timeout_warning() -> None:
    """Re-arm the once-per-process degraded-timeout warning (tests)."""
    global _timeout_warning_emitted
    _timeout_warning_emitted = False


def _note_timeout_unavailable() -> None:
    """A requested per-job timeout cannot be enforced here.

    Counted per affected job in telemetry (``batch.timeout_unavailable``,
    the number of jobs that ran unprotected); warned once per process so a
    large batch does not spam.  ``BatchReport.summary()`` also carries a
    note whenever its batch degraded.
    """
    global _timeout_warning_emitted
    count_event("batch.timeout_unavailable")
    if not _timeout_warning_emitted:
        _timeout_warning_emitted = True
        warnings.warn(
            "per-job timeout requested but SIGALRM is unavailable on this "
            "thread/platform; jobs will run unbounded",
            RuntimeWarning, stacklevel=3)


#: Process-local: heavy third-party imports are warmed once per process.
_imports_warmed = False


def _warm_heavy_imports() -> None:
    """Import lazily-loaded heavy dependencies before arming SIGALRM.

    A ``JobTimeoutError`` raised while a module is mid-execution removes
    the half-initialised module from ``sys.modules``; the next job
    re-executes it from scratch, tripping import-time registries
    (networkx's backend dispatch raises ``KeyError: Algorithm already
    exists``) and poisoning every later job in the process.  Paying the
    import cost up front keeps alarm deliveries out of import machinery
    entirely.  ``tracemalloc`` is warmed for the same reason: pytest's
    unraisable-exception hook imports it lazily, and an alarm landing in
    that import used to fail otherwise-healthy timeout tests.
    """
    global _imports_warmed
    if _imports_warmed:
        return
    import tracemalloc  # noqa: F401  (lazily imported by pytest's hooks)

    import networkx  # noqa: F401  (lazily imported by problems/arch/compiler)
    _imports_warmed = True


def _inside_import_machinery(frame: Optional[FrameType]) -> bool:
    """Is any frame on the stack executing the import system?

    Raising from the alarm handler while ``importlib`` is mid-module
    leaves a half-initialised module behind (see
    :func:`_warm_heavy_imports`); deferring to the next itimer re-fire
    (50 ms) costs nothing and keeps the interpreter consistent.
    """
    while frame is not None:
        if frame.f_globals.get("__name__", "").startswith("importlib"):
            return True
        frame = frame.f_back
    return False


class _deadline:
    """Context manager arming SIGALRM for ``seconds`` (no-op if unusable)."""

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self.armed = False
        self.disarming = False

    def __enter__(self) -> "_deadline":
        if self.seconds and self.seconds > 0:
            if _alarm_supported():
                _warm_heavy_imports()
                def _on_alarm(signum: int,
                              frame: Optional[FrameType]) -> None:
                    # Deferral cases (the re-fire interval retries in
                    # 50 ms): mid-disarm — a raise here would skip the
                    # setitimer(0) below and leak an armed timer into
                    # caller code; mid-import — a raise would evict a
                    # half-initialised module from sys.modules and
                    # poison every later job in this process.
                    if self.disarming or _inside_import_machinery(frame):
                        return
                    raise JobTimeoutError(
                        f"job exceeded the per-job timeout of "
                        f"{self.seconds}s")
                self._previous = signal.signal(signal.SIGALRM, _on_alarm)
                # Re-fire until disarmed: a single delivery can land while
                # the interpreter is inside a GC callback, where the raise
                # is swallowed as an unraisable exception and the job
                # would silently run to completion.
                signal.setitimer(signal.ITIMER_REAL, self.seconds,
                                 min(self.seconds, 0.05))
                self.armed = True
            else:
                _note_timeout_unavailable()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.disarming = True
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


def _clear_leaked_alarm(timeout_s: Optional[float]) -> None:
    """Defensively kill any itimer that escaped ``_deadline.__exit__``.

    A signal delivered in the few bytecodes *before* ``__exit__`` sets
    its guard can raise through the disarm path; this backstop (run once
    per job, off the hot path) guarantees no timer survives into caller
    code.
    """
    if timeout_s and _alarm_supported():
        signal.setitimer(signal.ITIMER_REAL, 0.0)


def _run_job(job: BatchJob, timeout_s: Optional[float],
             scratch: Dict) -> Dict:
    """One compilation attempt; raises on failure, returns the record.

    ``scratch`` carries per-attempt side artefacts (the lint payload)
    out of the attempt even when a later step — validation — fails it.
    """
    scratch.clear()
    with _deadline(timeout_s):
        fault_point("batch.job", job.name)
        from .jobs import resolve_compiler

        coupling, problem, noise = job.build()
        compiler = resolve_compiler(job.method)
        options = dict(job.options)
        options.setdefault("layers", job.layers)
        options.setdefault("mixer", job.mixer)
        result = compiler(coupling, problem, noise=noise,
                          gamma=job.gamma, **options)
        if job.lint:
            # Lint before validating: the linter collects *all*
            # findings, so its report must survive even when the
            # fail-fast validator rejects the circuit next.
            from ..lint import lint_result, render_json

            scratch["lint"] = render_json(
                lint_result(result, coupling, problem),
                max_diagnostics=MAX_LINT_DIAGNOSTICS_PER_JOB)
        if job.validate:
            result.validate(coupling, problem)
        return result.to_record()


def execute_job(job: BatchJob, timeout_s: Optional[float] = None,
                retry: Optional[RetryPolicy] = None) -> JobResult:
    """Run one job to a :class:`JobResult`; never raises.

    This is the module-level worker entry point (must stay picklable for
    ``ProcessPoolExecutor``).  The compiler is resolved by name through
    the single method registry (:mod:`repro.pipeline.registry`), so any
    registered method — paper preset or baseline — batch-compiles without
    engine changes.  The per-job cache delta is measured around the whole
    job — including coupling/problem construction — so methods whose
    passes touch no cache still report cache reuse.

    With a ``retry`` policy, transient failures re-attempt in-worker
    (each attempt re-arms the full per-job deadline); the per-attempt
    records land in :attr:`JobResult.attempts`.  Without one, a single
    attempt runs with zero retry-machinery overhead.

    The cache delta is measured with a thread-scoped
    :class:`~repro._telemetry.CacheDeltaScope`, not global-counter
    snapshots, so concurrent jobs in one process (thread executor, the
    serve daemon) each see exactly their own hits and misses.
    """
    start = time.perf_counter()
    scratch: Dict = {}
    try:
        if retry is None:
            with measure_cache_delta() as scope:
                try:
                    record = _run_job(job, timeout_s, scratch)
                except Exception as exc:  # job failure, not batch abort
                    return JobResult(
                        job=job, ok=False,
                        wall_time_s=time.perf_counter() - start,
                        cache=scope.delta(),
                        error=str(exc), error_type=type(exc).__name__,
                        lint=scratch.get("lint"))
            return JobResult(
                job=job, ok=True,
                wall_time_s=time.perf_counter() - start,
                record=record, cache=scope.delta(),
                lint=scratch.get("lint"))
        with measure_cache_delta() as scope:
            outcome = execute_with_retry(
                lambda: _run_job(job, timeout_s, scratch), retry,
                key=job.name)
        wall = time.perf_counter() - start
        cache = scope.delta()
        if outcome.ok:
            return JobResult(job=job, ok=True, wall_time_s=wall,
                             record=outcome.value, cache=cache,
                             lint=scratch.get("lint"),
                             attempts=outcome.attempts)
        error = outcome.error
        assert error is not None
        return JobResult(job=job, ok=False, wall_time_s=wall, cache=cache,
                         error=str(error), error_type=type(error).__name__,
                         lint=scratch.get("lint"),
                         attempts=outcome.attempts)
    finally:
        _clear_leaked_alarm(timeout_s)


@dataclass
class BatchReport:
    """Everything ``compile_many`` learned, in job order."""

    #: Bumped whenever :meth:`to_json` changes shape.  2 added
    #: ``schema_version`` itself plus the resilience aggregates
    #: (``pool_restarts``, ``resumed_jobs``, ``retry_totals``,
    #: ``degraded_jobs``, per-job ``attempts``).
    SCHEMA_VERSION = 2

    results: List[JobResult]
    wall_time_s: float
    workers: int
    executor: str
    timeout_s: Optional[float] = None
    timeout_enforced: bool = True
    #: Times the worker pool was rebuilt after breaking (dead workers).
    pool_restarts: int = 0
    #: Jobs whose results were recovered from a resume journal instead
    #: of being recompiled.
    resumed_jobs: int = 0

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def cache_totals(self) -> Dict[str, Dict[str, int]]:
        """Summed per-job cache deltas: proof of cross-job memoization."""
        totals: Dict[str, Dict[str, int]] = {}
        for result in self.results:
            for name, delta in result.cache.items():
                bucket = totals.setdefault(name, {"hits": 0, "misses": 0})
                bucket["hits"] += delta.get("hits", 0)
                bucket["misses"] += delta.get("misses", 0)
        return totals

    def lint_totals(self) -> Dict[str, Dict[str, int]]:
        """Aggregated lint findings across every linted job.

        ``{"counts": {severity: n}, "by_rule": {code: n}}``; empty dicts
        when no job ran with ``lint=True``.
        """
        counts: Dict[str, int] = {}
        by_rule: Dict[str, int] = {}
        for result in self.results:
            if not result.lint:
                continue
            for severity, n in result.lint.get("counts", {}).items():
                counts[severity] = counts.get(severity, 0) + n
            for code, n in result.lint.get("by_rule", {}).items():
                by_rule[code] = by_rule.get(code, 0) + n
        return {"counts": dict(sorted(counts.items())),
                "by_rule": dict(sorted(by_rule.items()))}

    @property
    def lint_errors(self) -> int:
        """Total error-severity diagnostics across all linted jobs."""
        return self.lint_totals()["counts"].get("error", 0)

    def retry_totals(self) -> Dict[str, int]:
        """Aggregated retry activity across all jobs.

        ``retries`` — backoff-then-retry transitions taken;
        ``retried_jobs`` — jobs that needed more than one attempt;
        ``recovered_jobs`` — of those, the ones that ended ``ok``.
        """
        retried = [r for r in self.results if r.attempts]
        return {
            "retries": sum(r.retries for r in self.results),
            "retried_jobs": len(retried),
            "recovered_jobs": sum(1 for r in retried if r.ok),
        }

    @property
    def degraded_jobs(self) -> int:
        """Jobs whose compiler fell back to a cheaper method mid-run."""
        return sum(1 for r in self.results if r.degraded)

    def stage_totals(self) -> Dict[str, float]:
        """Summed per-stage compile seconds across successful jobs."""
        totals: Dict[str, float] = {}
        for result in self.ok:
            for stage, seconds in result.telemetry.get("timings",
                                                       {}).items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def compile_time_s(self) -> float:
        """Summed in-worker job seconds (the serial-equivalent cost)."""
        return sum(r.wall_time_s for r in self.results)

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for r in self.results:
            if r.ok:
                out.append([r.job.name, "ok", r.record.get("depth"),
                            r.record.get("cx"), r.record.get("swaps"),
                            round(r.wall_time_s, 3)])
            else:
                out.append([r.job.name, f"FAILED ({r.error_type})",
                            "-", "-", "-", round(r.wall_time_s, 3)])
        return out

    def summary(self) -> str:
        lines = [
            f"{len(self.ok)}/{len(self.results)} jobs ok, "
            f"{len(self.failures)} failed; wall {self.wall_time_s:.2f}s "
            f"({self.compile_time_s():.2f}s of work, {self.workers} "
            f"{self.executor} worker(s))"]
        for name, totals in sorted(self.cache_totals().items()):
            lines.append(f"cache {name}: {totals['hits']} hits / "
                         f"{totals['misses']} misses")
        if any(r.lint for r in self.results):
            totals = self.lint_totals()
            rules = ", ".join(f"{code}x{n}"
                              for code, n in totals["by_rule"].items())
            lines.append(
                f"lint: {totals['counts'].get('error', 0)} error(s), "
                f"{totals['counts'].get('warning', 0)} warning(s)"
                + (f" [{rules}]" if rules else ""))
        retry = self.retry_totals()
        if retry["retries"]:
            lines.append(
                f"retries: {retry['retries']} across "
                f"{retry['retried_jobs']} job(s), "
                f"{retry['recovered_jobs']} recovered")
        if self.pool_restarts:
            lines.append(
                f"note: the worker pool was restarted "
                f"{self.pool_restarts} time(s) after worker death")
        if self.resumed_jobs:
            lines.append(
                f"resumed: {self.resumed_jobs} job(s) recovered from "
                f"the journal, {len(self.results) - self.resumed_jobs} "
                f"compiled this run")
        if self.degraded_jobs:
            lines.append(
                f"degraded: {self.degraded_jobs} job(s) fell back to a "
                f"cheaper method (see extra['degraded'])")
        if self.timeout_s and not self.timeout_enforced:
            lines.append(
                f"note: per-job timeout ({self.timeout_s:g}s) was NOT "
                f"enforced (SIGALRM unavailable with this "
                f"executor/platform)")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        """JSON-serializable dump (specs, records, errors, aggregates)."""
        return {
            "schema_version": self.SCHEMA_VERSION,
            "wall_time_s": self.wall_time_s,
            "workers": self.workers,
            "executor": self.executor,
            "timeout_s": self.timeout_s,
            "timeout_enforced": self.timeout_enforced,
            "pool_restarts": self.pool_restarts,
            "resumed_jobs": self.resumed_jobs,
            "cache_totals": self.cache_totals(),
            "stage_totals": self.stage_totals(),
            "lint_totals": self.lint_totals(),
            "retry_totals": self.retry_totals(),
            "degraded_jobs": self.degraded_jobs,
            "jobs": [
                {
                    "name": r.job.name,
                    "spec": {
                        "arch": r.job.arch, "n_qubits": r.job.n_qubits,
                        "workload": r.job.workload,
                        "density": r.job.density, "seed": r.job.seed,
                        "method": r.job.method, "layers": r.job.layers,
                        "mixer": r.job.mixer,
                    },
                    "ok": r.ok,
                    "wall_time_s": r.wall_time_s,
                    "record": r.record,
                    "cache": r.cache,
                    "lint": r.lint,
                    "error": r.error,
                    "error_type": r.error_type,
                    "attempts": r.attempts,
                }
                for r in self.results
            ],
        }


def default_workers(n_jobs: int) -> int:
    """Pool size: one worker per job up to the machine's CPU count."""
    return max(1, min(n_jobs, os.cpu_count() or 1))


def compile_many(
    jobs: Iterable[BatchJob],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    executor: str = "process",
    retry: Optional[RetryPolicy] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    max_pool_restarts: int = DEFAULT_MAX_POOL_RESTARTS,
) -> BatchReport:
    """Compile every job, fanning out over a worker pool.

    Parameters
    ----------
    jobs:
        Picklable :class:`BatchJob` specs; results preserve this order.
    workers:
        Pool size (default: one per job, capped at CPU count).  ``0`` or
        ``1`` degrades to the in-process serial path.
    timeout_s:
        Per-job wall-clock budget, enforced in-worker via ``SIGALRM``
        where available; an overrun becomes an ``ok=False`` record.
    executor:
        ``"process"`` (default), ``"thread"`` (no timeout enforcement,
        GIL-bound — mostly for debugging), or ``"serial"``.
    retry:
        Optional :class:`~repro.resilience.retry.RetryPolicy`; transient
        job failures re-attempt in-worker with backoff.  ``None`` (the
        default) keeps the historic single-attempt behavior.
    journal:
        Path of a crash-safe JSONL journal; every finished job is
        durably appended (:mod:`repro.resilience.journal`).
    resume:
        With ``journal``, load completed results from an existing
        compatible journal and only compile the remainder.  The resumed
        report's per-job records equal an uninterrupted run's.
    max_pool_restarts:
        Pool rebuilds tolerated after worker death before the still-
        unfinished jobs are recorded as failures.
    """
    if executor not in EXECUTORS:
        raise SpecificationError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    job_list = list(jobs)
    if workers is None:
        workers = default_workers(len(job_list))
    if workers < 0:
        raise SpecificationError(f"workers must be >= 0 (got {workers})")
    if max_pool_restarts < 0:
        raise SpecificationError(
            f"max_pool_restarts must be >= 0 (got {max_pool_restarts})")
    # A malformed REPRO_FAULT_PLAN must abort the sweep here, not surface
    # later as per-job failures inside workers.
    faults_active()
    start = time.perf_counter()
    enforced = _alarm_supported() if timeout_s else True

    results: List[Optional[JobResult]] = [None] * len(job_list)
    journal_obj = None
    if journal is not None:
        from ..resilience.journal import BatchJournal

        journal_obj = BatchJournal(journal, job_list, resume=resume)
        for index, recovered in sorted(journal_obj.completed.items()):
            results[index] = recovered
    resumed_jobs = sum(1 for r in results if r is not None)
    pending = [index for index, r in enumerate(results) if r is None]

    def finish(index: int, result: JobResult) -> None:
        results[index] = result
        if journal_obj is not None:
            journal_obj.record(index, result)
        fault_point("batch.collect", job_list[index].name)

    pool_restarts = 0
    try:
        if executor == "serial" or workers <= 1 or len(pending) <= 1:
            for index in pending:
                finish(index, execute_job(job_list[index], timeout_s,
                                          retry))
            return BatchReport(_completed(results),
                               time.perf_counter() - start,
                               workers=1, executor="serial",
                               timeout_s=timeout_s,
                               timeout_enforced=enforced,
                               resumed_jobs=resumed_jobs)

        pool_cls = (ProcessPoolExecutor if executor == "process"
                    else ThreadPoolExecutor)
        if executor == "thread" and timeout_s:
            enforced = False  # SIGALRM cannot fire on worker threads
        pool_restarts = _run_pooled(
            pool_cls, workers, job_list, pending, timeout_s, retry,
            finish, max_pool_restarts)
    finally:
        if journal_obj is not None:
            journal_obj.close()
    return BatchReport(_completed(results), time.perf_counter() - start,
                       workers=workers, executor=executor,
                       timeout_s=timeout_s, timeout_enforced=enforced,
                       pool_restarts=pool_restarts,
                       resumed_jobs=resumed_jobs)


def _completed(results: List[Optional[JobResult]]) -> List[JobResult]:
    """Narrow the slot list once every index has been finished."""
    done = [r for r in results if r is not None]
    assert len(done) == len(results), "unfinished job slot in results"
    return done


def _run_pooled(pool_cls: Callable[..., Executor], workers: int,
                job_list: List[BatchJob], pending: List[int],
                timeout_s: Optional[float], retry: Optional[RetryPolicy],
                finish: Callable[[int, JobResult], None],
                max_pool_restarts: int) -> int:
    """Fan ``pending`` out over fresh pools, rebuilding on breakage.

    A worker killed mid-job (OOM, segfault, injected fault) breaks the
    executor: its own job *and* every in-flight or not-yet-started
    future raise ``BrokenExecutor``.  Completed jobs are never
    recompiled; the broken ones are resubmitted — each in its **own**
    single-worker pool, so an innocent job that merely shared the first
    pool with a worker-killing poison job always recovers, and only the
    job that keeps killing its (now private) worker converges to a
    structured failure once the restart budget is spent.  Returns the
    number of resubmission rounds taken (``batch.pool_restarts``).
    """

    def collect(pool: Executor, futures: Dict[Future[JobResult], int],
                broken: List[int]) -> None:
        for future, index in futures.items():
            try:
                finish(index, future.result())
            except BrokenExecutor as exc:
                broken.append(index)
                errors[index] = exc
            except Exception as exc:  # non-breakage pool failure
                finish(index, JobResult(
                    job=job_list[index], ok=False,
                    error=str(exc), error_type=type(exc).__name__))

    errors: Dict[int, BaseException] = {}
    restarts = 0
    while pending:
        broken: List[int] = []
        if restarts == 0:
            with pool_cls(max_workers=workers) as pool:
                collect(pool, {
                    pool.submit(execute_job, job_list[index], timeout_s,
                                retry): index
                    for index in pending}, broken)
        else:
            # Retry rounds quarantine each broken job: a poison job can
            # then only break its private pool, never its peers.
            for index in pending:
                with pool_cls(max_workers=1) as pool:
                    collect(pool, {
                        pool.submit(execute_job, job_list[index],
                                    timeout_s, retry): index}, broken)
        if not broken:
            break
        if restarts >= max_pool_restarts:
            for index in broken:
                finish(index, JobResult(
                    job=job_list[index], ok=False,
                    error=(f"worker died and the pool-restart budget "
                           f"({max_pool_restarts}) is spent: "
                           f"{errors[index]}"),
                    error_type=type(errors[index]).__name__))
            break
        restarts += 1
        count_event("batch.pool_restarts")
        pending = broken
    return restarts


def jobs_for(
    archs: Sequence[str],
    n_qubits: int,
    methods: Sequence[str] = ("hybrid",),
    workloads: Sequence[str] = ("rand",),
    density: float = 0.3,
    seeds: Sequence[int] = (0,),
    **job_kwargs: Any,
) -> List[BatchJob]:
    """The cartesian product helper behind ``python -m repro batch``."""
    return [
        BatchJob(arch=arch, n_qubits=n_qubits, workload=workload,
                 density=density, seed=seed, method=method, **job_kwargs)
        for arch in archs
        for workload in workloads
        for method in methods
        for seed in seeds
    ]
