"""The batch compilation engine: ``compile_many`` over a process pool.

Design (ISSUE 1 tentpole):

* **Fan-out** — jobs are picklable :class:`BatchJob` specs; workers
  rebuild each instance locally, so the process-local distance-matrix and
  pattern caches (see :mod:`repro._telemetry`) warm up once per worker and
  amortize across every job that worker handles.  With the default
  ``fork`` start method the workers additionally inherit any cache
  entries the parent already holds.
* **Per-job timeout** — enforced *inside* the worker with ``SIGALRM``
  (``signal.setitimer``), so an overrunning instance turns into an
  ``ok=False`` record instead of wedging a pool slot or killing the
  batch.  On platforms/threads without ``SIGALRM`` the timeout degrades
  to unenforced (noted in the report).
* **Graceful failure capture** — any exception in a job (bad spec,
  compilation error, validation failure, timeout) becomes a structured
  :class:`JobResult` with the exception type and message; the remaining
  jobs are unaffected.

``compile_many`` returns a :class:`BatchReport` that preserves job order,
aggregates cache hit/miss counters and stage timings, and renders a table
via :func:`repro.analysis.format_table`.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from .._telemetry import cache_delta, cache_info, count_event
from .jobs import BatchJob, JobResult

EXECUTORS = ("process", "thread", "serial")

#: Diagnostics embedded per job result (counts stay exact; the payload
#: crosses a process boundary, so the op-level list is capped).
MAX_LINT_DIAGNOSTICS_PER_JOB = 25


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its per-job timeout."""


def _alarm_supported() -> bool:
    return (hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread())


#: Process-local: the degraded-timeout warning fires at most once.
_timeout_warning_emitted = False


def _note_timeout_unavailable() -> None:
    """A requested per-job timeout cannot be enforced here.

    Counted per affected job in telemetry (``batch.timeout_unavailable``,
    the number of jobs that ran unprotected); warned once per process so a
    large batch does not spam.  ``BatchReport.summary()`` also carries a
    note whenever its batch degraded.
    """
    global _timeout_warning_emitted
    count_event("batch.timeout_unavailable")
    if not _timeout_warning_emitted:
        _timeout_warning_emitted = True
        warnings.warn(
            "per-job timeout requested but SIGALRM is unavailable on this "
            "thread/platform; jobs will run unbounded",
            RuntimeWarning, stacklevel=3)


#: Process-local: heavy third-party imports are warmed once per process.
_imports_warmed = False


def _warm_heavy_imports() -> None:
    """Import lazily-loaded heavy dependencies before arming SIGALRM.

    A ``JobTimeout`` raised while a module is mid-execution removes the
    half-initialised module from ``sys.modules``; the next job re-executes
    it from scratch, tripping import-time registries (networkx's backend
    dispatch raises ``KeyError: Algorithm already exists``) and poisoning
    every later job in the process.  Paying the import cost up front keeps
    alarm deliveries out of import machinery entirely.
    """
    global _imports_warmed
    if _imports_warmed:
        return
    import networkx  # noqa: F401  (lazily imported by problems/arch/compiler)
    _imports_warmed = True


class _deadline:
    """Context manager arming SIGALRM for ``seconds`` (no-op if unusable)."""

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self.armed = False

    def __enter__(self):
        if self.seconds and self.seconds > 0:
            if _alarm_supported():
                _warm_heavy_imports()
                def _on_alarm(signum, frame):
                    raise JobTimeout(
                        f"job exceeded the per-job timeout of "
                        f"{self.seconds}s")
                self._previous = signal.signal(signal.SIGALRM, _on_alarm)
                # Re-fire until disarmed: a single delivery can land while
                # the interpreter is inside a GC callback, where the raise
                # is swallowed as an unraisable exception and the job
                # would silently run to completion.
                signal.setitimer(signal.ITIMER_REAL, self.seconds,
                                 min(self.seconds, 0.05))
                self.armed = True
            else:
                _note_timeout_unavailable()
        return self

    def __exit__(self, *exc):
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


def execute_job(job: BatchJob, timeout_s: Optional[float] = None) -> JobResult:
    """Run one job to a :class:`JobResult`; never raises.

    This is the module-level worker entry point (must stay picklable for
    ``ProcessPoolExecutor``).  The compiler is resolved by name through
    the single method registry (:mod:`repro.pipeline.registry`), so any
    registered method — paper preset or baseline — batch-compiles without
    engine changes.  The per-job cache delta is measured around the whole
    job — including coupling/problem construction — so methods whose
    passes touch no cache still report cache reuse.
    """
    start = time.perf_counter()
    before = cache_info()
    lint_payload = None
    try:
        with _deadline(timeout_s):
            from .jobs import resolve_compiler

            coupling, problem, noise = job.build()
            compiler = resolve_compiler(job.method)
            result = compiler(coupling, problem, noise=noise,
                              gamma=job.gamma, **dict(job.options))
            if job.lint:
                # Lint before validating: the linter collects *all*
                # findings, so its report must survive even when the
                # fail-fast validator rejects the circuit next.
                from ..lint import lint_result, render_json

                lint_payload = render_json(
                    lint_result(result, coupling, problem),
                    max_diagnostics=MAX_LINT_DIAGNOSTICS_PER_JOB)
            if job.validate:
                result.validate(coupling, problem)
            record = result.to_record()
        return JobResult(
            job=job, ok=True, wall_time_s=time.perf_counter() - start,
            record=record, cache=cache_delta(before, cache_info()),
            lint=lint_payload)
    except Exception as exc:  # per-job failure capture, not batch abort
        return JobResult(
            job=job, ok=False, wall_time_s=time.perf_counter() - start,
            cache=cache_delta(before, cache_info()),
            error=str(exc), error_type=type(exc).__name__,
            lint=lint_payload)


@dataclass
class BatchReport:
    """Everything ``compile_many`` learned, in job order."""

    results: List[JobResult]
    wall_time_s: float
    workers: int
    executor: str
    timeout_s: Optional[float] = None
    timeout_enforced: bool = True

    @property
    def ok(self) -> List[JobResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> List[JobResult]:
        return [r for r in self.results if not r.ok]

    def cache_totals(self) -> Dict[str, Dict[str, int]]:
        """Summed per-job cache deltas: proof of cross-job memoization."""
        totals: Dict[str, Dict[str, int]] = {}
        for result in self.results:
            for name, delta in result.cache.items():
                bucket = totals.setdefault(name, {"hits": 0, "misses": 0})
                bucket["hits"] += delta.get("hits", 0)
                bucket["misses"] += delta.get("misses", 0)
        return totals

    def lint_totals(self) -> Dict[str, Dict[str, int]]:
        """Aggregated lint findings across every linted job.

        ``{"counts": {severity: n}, "by_rule": {code: n}}``; empty dicts
        when no job ran with ``lint=True``.
        """
        counts: Dict[str, int] = {}
        by_rule: Dict[str, int] = {}
        for result in self.results:
            if not result.lint:
                continue
            for severity, n in result.lint.get("counts", {}).items():
                counts[severity] = counts.get(severity, 0) + n
            for code, n in result.lint.get("by_rule", {}).items():
                by_rule[code] = by_rule.get(code, 0) + n
        return {"counts": dict(sorted(counts.items())),
                "by_rule": dict(sorted(by_rule.items()))}

    @property
    def lint_errors(self) -> int:
        """Total error-severity diagnostics across all linted jobs."""
        return self.lint_totals()["counts"].get("error", 0)

    def stage_totals(self) -> Dict[str, float]:
        """Summed per-stage compile seconds across successful jobs."""
        totals: Dict[str, float] = {}
        for result in self.ok:
            for stage, seconds in result.telemetry.get("timings",
                                                       {}).items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def compile_time_s(self) -> float:
        """Summed in-worker job seconds (the serial-equivalent cost)."""
        return sum(r.wall_time_s for r in self.results)

    def rows(self) -> List[List[object]]:
        out: List[List[object]] = []
        for r in self.results:
            if r.ok:
                out.append([r.job.name, "ok", r.record.get("depth"),
                            r.record.get("cx"), r.record.get("swaps"),
                            round(r.wall_time_s, 3)])
            else:
                out.append([r.job.name, f"FAILED ({r.error_type})",
                            "-", "-", "-", round(r.wall_time_s, 3)])
        return out

    def summary(self) -> str:
        lines = [
            f"{len(self.ok)}/{len(self.results)} jobs ok, "
            f"{len(self.failures)} failed; wall {self.wall_time_s:.2f}s "
            f"({self.compile_time_s():.2f}s of work, {self.workers} "
            f"{self.executor} worker(s))"]
        for name, totals in sorted(self.cache_totals().items()):
            lines.append(f"cache {name}: {totals['hits']} hits / "
                         f"{totals['misses']} misses")
        if any(r.lint for r in self.results):
            totals = self.lint_totals()
            rules = ", ".join(f"{code}x{n}"
                              for code, n in totals["by_rule"].items())
            lines.append(
                f"lint: {totals['counts'].get('error', 0)} error(s), "
                f"{totals['counts'].get('warning', 0)} warning(s)"
                + (f" [{rules}]" if rules else ""))
        if self.timeout_s and not self.timeout_enforced:
            lines.append(
                f"note: per-job timeout ({self.timeout_s:g}s) was NOT "
                f"enforced (SIGALRM unavailable with this "
                f"executor/platform)")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        """JSON-serializable dump (specs, records, errors, aggregates)."""
        return {
            "wall_time_s": self.wall_time_s,
            "workers": self.workers,
            "executor": self.executor,
            "timeout_s": self.timeout_s,
            "timeout_enforced": self.timeout_enforced,
            "cache_totals": self.cache_totals(),
            "stage_totals": self.stage_totals(),
            "lint_totals": self.lint_totals(),
            "jobs": [
                {
                    "name": r.job.name,
                    "spec": {
                        "arch": r.job.arch, "n_qubits": r.job.n_qubits,
                        "workload": r.job.workload,
                        "density": r.job.density, "seed": r.job.seed,
                        "method": r.job.method,
                    },
                    "ok": r.ok,
                    "wall_time_s": r.wall_time_s,
                    "record": r.record,
                    "cache": r.cache,
                    "lint": r.lint,
                    "error": r.error,
                    "error_type": r.error_type,
                }
                for r in self.results
            ],
        }


def default_workers(n_jobs: int) -> int:
    """Pool size: one worker per job up to the machine's CPU count."""
    return max(1, min(n_jobs, os.cpu_count() or 1))


def compile_many(
    jobs: Iterable[BatchJob],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    executor: str = "process",
) -> BatchReport:
    """Compile every job, fanning out over a worker pool.

    Parameters
    ----------
    jobs:
        Picklable :class:`BatchJob` specs; results preserve this order.
    workers:
        Pool size (default: one per job, capped at CPU count).  ``0`` or
        ``1`` degrades to the in-process serial path.
    timeout_s:
        Per-job wall-clock budget, enforced in-worker via ``SIGALRM``
        where available; an overrun becomes an ``ok=False`` record.
    executor:
        ``"process"`` (default), ``"thread"`` (no timeout enforcement,
        GIL-bound — mostly for debugging), or ``"serial"``.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}")
    job_list = list(jobs)
    if workers is None:
        workers = default_workers(len(job_list))
    if workers < 0:
        raise ValueError(f"workers must be >= 0 (got {workers})")
    start = time.perf_counter()
    enforced = _alarm_supported() if timeout_s else True

    if executor == "serial" or workers <= 1 or len(job_list) <= 1:
        results = [execute_job(job, timeout_s) for job in job_list]
        return BatchReport(results, time.perf_counter() - start,
                           workers=1, executor="serial",
                           timeout_s=timeout_s, timeout_enforced=enforced)

    pool_cls = (ProcessPoolExecutor if executor == "process"
                else ThreadPoolExecutor)
    if executor == "thread" and timeout_s:
        enforced = False  # SIGALRM cannot fire on worker threads
    results: List[Optional[JobResult]] = [None] * len(job_list)
    with pool_cls(max_workers=workers) as pool:
        futures = {
            pool.submit(execute_job, job, timeout_s): index
            for index, job in enumerate(job_list)}
        for future, index in futures.items():
            try:
                results[index] = future.result()
            except Exception as exc:  # pool breakage (e.g. worker killed)
                results[index] = JobResult(
                    job=job_list[index], ok=False,
                    error=str(exc), error_type=type(exc).__name__)
    return BatchReport(results, time.perf_counter() - start,
                       workers=workers, executor=executor,
                       timeout_s=timeout_s, timeout_enforced=enforced)


def jobs_for(
    archs: Sequence[str],
    n_qubits: int,
    methods: Sequence[str] = ("hybrid",),
    workloads: Sequence[str] = ("rand",),
    density: float = 0.3,
    seeds: Sequence[int] = (0,),
    **job_kwargs,
) -> List[BatchJob]:
    """The cartesian product helper behind ``python -m repro batch``."""
    return [
        BatchJob(arch=arch, n_qubits=n_qubits, workload=workload,
                 density=density, seed=seed, method=method, **job_kwargs)
        for arch in archs
        for workload in workloads
        for method in methods
        for seed in seeds
    ]
