"""Crash-safe append-only journal for batch sweeps.

A :class:`BatchJournal` records every finished :class:`JobResult` of a
``compile_many`` run as one JSONL line, written with a single
``os.write`` on an ``O_APPEND`` descriptor and ``fsync``-ed before the
engine moves on.  If the sweep dies — worker OOM, parent crash, ctrl-C —
the journal holds exactly the set of jobs that completed, and re-running
with ``resume=True`` (CLI: ``--journal FILE --resume``) skips them, so
the resumed :class:`~repro.batch.engine.BatchReport` carries the same
per-job records and aggregates as an uninterrupted run.

File format (version 1)::

    {"kind": "header", "version": 1, "fingerprint": "...", "n_jobs": N}
    {"kind": "result", "index": 3, "job": "grid/...", "result": {...}}
    ...

* The **header** is written when the journal is created.  Its
  ``fingerprint`` is a SHA-256 over the canonical JSON of every job
  spec, so resuming against a *different* job list (changed seeds,
  methods, order...) fails loudly instead of silently mixing sweeps.
* Each **result** line carries the job's index in the sweep plus the
  :meth:`JobResult.to_json` payload; the job spec itself is not stored —
  on resume the caller re-creates the same job list and the fingerprint
  proves it matches.
* A line is only trusted if it parses as complete JSON: a crash halfway
  through an append leaves a truncated tail that is detected and
  discarded on load (with everything before it kept).  Duplicate
  indexes keep the *last* record, so a sweep resumed twice stays
  consistent.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..batch.jobs import BatchJob, JobResult
from ..exceptions import JournalError

JOURNAL_VERSION = 1

#: Bumped whenever :func:`canonical_job_spec` changes shape, so a store
#: or journal keyed by an older canonicalization can never alias a new
#: one (the version is hashed into every fingerprint).
FINGERPRINT_VERSION = 2

__all__ = ["JOURNAL_VERSION", "FINGERPRINT_VERSION", "BatchJournal",
           "JournalError", "atomic_write_bytes", "canonical_json",
           "canonical_job_spec", "fsync_dir", "job_fingerprint",
           "spec_fingerprint"]

#: 2**53: the largest magnitude at which every integer is exactly
#: representable as a float, so the integral-float -> int rewrite below
#: is loss-free.
_EXACT_INT_BOUND = 9007199254740992


def _canonical_value(value: object) -> object:
    """Recursively rewrite ``value`` into its canonical JSON-ready form.

    Two values that compare semantically equal must canonicalize
    identically — this is what makes the fingerprint usable as a
    persistent content-address (an unstable key silently misses the
    store; worse, it lets a resumed journal accept the wrong sweep):

    * ``-0.0`` collapses to ``0`` (``json.dumps`` would render the two
      equal floats differently);
    * integral floats collapse to ``int`` (``gamma=2`` and
      ``gamma=2.0`` specify the same compilation; the rewrite is bounded
      to the exactly-representable range);
    * non-finite floats get explicit string spellings (``json.dumps``
      would emit non-standard ``NaN``/``Infinity`` tokens);
    * tuples, lists and (frozen)sets of knob values all collapse to
      sorted-or-ordered lists — a knob built as ``(1, 2)`` by one caller
      and ``[1, 2]`` by another is the same knob;
    * dict contents are canonicalized recursively with string keys, so
      nested knob dicts hash by content, not insertion order.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "float:nan"
        if math.isinf(value):
            return "float:inf" if value > 0 else "float:-inf"
        if value == 0.0:
            return 0  # merges 0.0 and -0.0 (and int 0)
        if value.is_integer() and abs(value) < _EXACT_INT_BOUND:
            return int(value)
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        canonical = [_canonical_value(item) for item in value]
        return sorted(canonical,
                      key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, dict):
        return {str(key): _canonical_value(item)
                for key, item in value.items()}
    # Last resort for exotic knob objects: a type-prefixed repr, so two
    # different types can never alias through equal string forms.
    return f"{type(value).__name__}:{value!r}"


def canonical_job_spec(job: BatchJob) -> Dict[str, object]:
    """The canonical plain-data spec of one job.

    ``options`` becomes a content-keyed mapping (duplicate names
    last-wins, ordering irrelevant — exactly :meth:`BatchJob.with_options`
    semantics), and the presentation-only ``label`` is excluded: it
    changes how a job is *named*, never what gets compiled, so it must
    not force a store miss or refuse a journal resume.
    """
    spec = asdict(job)
    del spec["label"]
    del spec["options"]
    canonical = {key: _canonical_value(value)
                 for key, value in spec.items()}
    canonical["options"] = _canonical_value(dict(job.options))
    return canonical


def canonical_json(payload: object) -> str:
    """Deterministic compact JSON of an already-canonicalized value."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def spec_fingerprint(job: BatchJob) -> str:
    """SHA-256 content-address of a single job spec.

    This is the serve daemon's result-store key: two
    semantically-identical jobs built by different code paths (tuple vs
    list knobs, ``-0.0`` vs ``0.0``, reordered knob dicts) produce the
    same digest, and any canonicalization change bumps
    :data:`FINGERPRINT_VERSION` into the hash.
    """
    payload = canonical_json([FINGERPRINT_VERSION,
                              canonical_job_spec(job)])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def job_fingerprint(jobs: Sequence[BatchJob]) -> str:
    """Stable identity of a job list (order-sensitive, spec-complete)."""
    payload = canonical_json(
        [FINGERPRINT_VERSION, [canonical_job_spec(job) for job in jobs]])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- durability helpers (shared with the serve result store) ---------------


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush directory metadata so a just-created entry survives a crash.

    ``fsync`` on a file descriptor makes the *contents* durable; the
    file's very existence lives in the parent directory and needs its
    own fsync.  Platforms that refuse to open directories degrade to a
    no-op (the historic, non-durable behavior).
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes,
                       publish_hook: Optional[Callable[[], None]] = None,
                       ) -> None:
    """Durably publish ``data`` at ``path``: all-or-nothing.

    Writes to a same-directory temp file, fsyncs it, renames it over
    ``path`` (atomic on POSIX), then fsyncs the directory.  A crash at
    any instant leaves either the old content or the new — never a
    truncated hybrid — which is what lets the serve result store treat
    any parseable entry as trustworthy.

    ``publish_hook`` runs between the temp-file fsync and the rename —
    the narrowest crash window.  It exists for fault injection (the
    serve store's ``serve.store_write`` site): a kill or raise there
    leaves an orphaned ``*.tmp.<pid>`` file and no entry, which is the
    exact on-disk state a real mid-publish crash produces.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    if publish_hook is not None:
        publish_hook()
    try:
        os.replace(tmp, target)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(target.parent)


class BatchJournal:
    """Append-only JSONL journal bound to one job list.

    ``resume=True`` loads any compatible existing journal at ``path``
    and exposes the completed results via :attr:`completed`;
    ``resume=False`` truncates whatever was there and starts fresh.
    Appends are atomic (single ``write`` + ``fsync``), so a kill at any
    instant loses at most the in-flight line.
    """

    def __init__(self, path: Union[str, Path], jobs: Sequence[BatchJob],
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.fingerprint = job_fingerprint(jobs)
        self.n_jobs = len(jobs)
        #: ``{job index: JobResult}`` recovered from a previous run.
        self.completed: Dict[int, JobResult] = {}
        existing = resume and self.path.exists() \
            and self.path.stat().st_size > 0
        if existing:
            self._load(jobs)
        was_present = self.path.exists()
        self._fd = os.open(
            self.path,
            os.O_WRONLY | os.O_APPEND | os.O_CREAT
            | (0 if existing else os.O_TRUNC),
            0o644)
        if not was_present:
            # fsync on the fd makes appended *lines* durable, but the
            # file's existence lives in the parent directory: without
            # this, a crash shortly after creation can lose the whole
            # journal — header, results and all.
            fsync_dir(self.path.parent)
        if not existing:
            self._append({"kind": "header", "version": JOURNAL_VERSION,
                          "fingerprint": self.fingerprint,
                          "n_jobs": self.n_jobs})

    # -- writing ------------------------------------------------------------

    def _append(self, payload: Dict[str, object]) -> None:
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        os.fsync(self._fd)

    def record(self, index: int, result: JobResult) -> None:
        """Durably append one finished job's result."""
        self._append({"kind": "result", "index": index,
                      "job": result.job.name, "result": result.to_json()})

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- loading ------------------------------------------------------------

    def _load(self, jobs: Sequence[BatchJob]) -> None:
        header: Optional[Dict[str, object]] = None
        entries: List[Dict[str, object]] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves one truncated tail line;
                    # everything after it is untrustworthy too.
                    break
                if not isinstance(entry, dict):
                    break
                entries.append(entry)
        if not entries or entries[0].get("kind") != "header":
            raise JournalError(
                f"{self.path}: not a batch journal (missing header); "
                f"remove the file or drop --resume")
        header = entries[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('version')!r} "
                f"!= supported {JOURNAL_VERSION}")
        if header.get("fingerprint") != self.fingerprint:
            raise JournalError(
                f"{self.path}: journal was written for a different job "
                f"list (fingerprint mismatch); resuming would mix "
                f"sweeps — remove the file or re-run the original "
                f"command line")
        for entry in entries[1:]:
            if entry.get("kind") != "result":
                continue
            index = entry.get("index")
            if not isinstance(index, int) or not 0 <= index < len(jobs):
                continue
            payload = entry.get("result")
            if not isinstance(payload, dict):
                continue
            self.completed[index] = JobResult.from_json(jobs[index],
                                                        payload)
