"""Crash-safe append-only journal for batch sweeps.

A :class:`BatchJournal` records every finished :class:`JobResult` of a
``compile_many`` run as one JSONL line, written with a single
``os.write`` on an ``O_APPEND`` descriptor and ``fsync``-ed before the
engine moves on.  If the sweep dies — worker OOM, parent crash, ctrl-C —
the journal holds exactly the set of jobs that completed, and re-running
with ``resume=True`` (CLI: ``--journal FILE --resume``) skips them, so
the resumed :class:`~repro.batch.engine.BatchReport` carries the same
per-job records and aggregates as an uninterrupted run.

File format (version 1)::

    {"kind": "header", "version": 1, "fingerprint": "...", "n_jobs": N}
    {"kind": "result", "index": 3, "job": "grid/...", "result": {...}}
    ...

* The **header** is written when the journal is created.  Its
  ``fingerprint`` is a SHA-256 over the canonical JSON of every job
  spec, so resuming against a *different* job list (changed seeds,
  methods, order...) fails loudly instead of silently mixing sweeps.
* Each **result** line carries the job's index in the sweep plus the
  :meth:`JobResult.to_json` payload; the job spec itself is not stored —
  on resume the caller re-creates the same job list and the fingerprint
  proves it matches.
* A line is only trusted if it parses as complete JSON: a crash halfway
  through an append leaves a truncated tail that is detected and
  discarded on load (with everything before it kept).  Duplicate
  indexes keep the *last* record, so a sweep resumed twice stays
  consistent.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..batch.jobs import BatchJob, JobResult
from ..exceptions import JournalError

JOURNAL_VERSION = 1

__all__ = ["JOURNAL_VERSION", "BatchJournal", "JournalError",
           "job_fingerprint"]


def job_fingerprint(jobs: Sequence[BatchJob]) -> str:
    """Stable identity of a job list (order-sensitive, spec-complete)."""
    specs = []
    for job in jobs:
        spec = asdict(job)
        spec["options"] = [list(pair) for pair in job.options]
        specs.append(spec)
    payload = json.dumps(specs, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class BatchJournal:
    """Append-only JSONL journal bound to one job list.

    ``resume=True`` loads any compatible existing journal at ``path``
    and exposes the completed results via :attr:`completed`;
    ``resume=False`` truncates whatever was there and starts fresh.
    Appends are atomic (single ``write`` + ``fsync``), so a kill at any
    instant loses at most the in-flight line.
    """

    def __init__(self, path: Union[str, Path], jobs: Sequence[BatchJob],
                 resume: bool = False) -> None:
        self.path = Path(path)
        self.fingerprint = job_fingerprint(jobs)
        self.n_jobs = len(jobs)
        #: ``{job index: JobResult}`` recovered from a previous run.
        self.completed: Dict[int, JobResult] = {}
        existing = resume and self.path.exists() \
            and self.path.stat().st_size > 0
        if existing:
            self._load(jobs)
        self._fd = os.open(
            self.path,
            os.O_WRONLY | os.O_APPEND | os.O_CREAT
            | (0 if existing else os.O_TRUNC),
            0o644)
        if not existing:
            self._append({"kind": "header", "version": JOURNAL_VERSION,
                          "fingerprint": self.fingerprint,
                          "n_jobs": self.n_jobs})

    # -- writing ------------------------------------------------------------

    def _append(self, payload: Dict[str, object]) -> None:
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        os.write(self._fd, line.encode("utf-8"))
        os.fsync(self._fd)

    def record(self, index: int, result: JobResult) -> None:
        """Durably append one finished job's result."""
        self._append({"kind": "result", "index": index,
                      "job": result.job.name, "result": result.to_json()})

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -- loading ------------------------------------------------------------

    def _load(self, jobs: Sequence[BatchJob]) -> None:
        header: Optional[Dict[str, object]] = None
        entries: List[Dict[str, object]] = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    # A crash mid-append leaves one truncated tail line;
                    # everything after it is untrustworthy too.
                    break
                if not isinstance(entry, dict):
                    break
                entries.append(entry)
        if not entries or entries[0].get("kind") != "header":
            raise JournalError(
                f"{self.path}: not a batch journal (missing header); "
                f"remove the file or drop --resume")
        header = entries[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('version')!r} "
                f"!= supported {JOURNAL_VERSION}")
        if header.get("fingerprint") != self.fingerprint:
            raise JournalError(
                f"{self.path}: journal was written for a different job "
                f"list (fingerprint mismatch); resuming would mix "
                f"sweeps — remove the file or re-run the original "
                f"command line")
        for entry in entries[1:]:
            if entry.get("kind") != "result":
                continue
            index = entry.get("index")
            if not isinstance(index, int) or not 0 <= index < len(jobs):
                continue
            payload = entry.get("result")
            if not isinstance(payload, dict):
                continue
            self.completed[index] = JobResult.from_json(jobs[index],
                                                        payload)
