"""Resilience layer: fault injection, retries, crash-safe journaling.

Production sweeps fail in ways unit tests never exercise — worker OOM
kills, flaky transient errors, exhausted solver budgets, interrupted
runs.  This package makes each failure mode (a) *injectable on demand*
so chaos tests prove the recovery path deterministically, and (b)
*survivable* through retry policies, pool restarts, journaled resume,
and graceful method degradation:

* :mod:`repro.resilience.faults` — ``FaultPlan`` / ``fault_point``:
  deterministic fault injection at named sites in the batch engine,
  pass pipeline, and exact solver (env: ``REPRO_FAULT_PLAN``);
* :mod:`repro.resilience.retry` — ``RetryPolicy`` /
  ``execute_with_retry``: exponential backoff with deterministic
  jitter, driven by the transient/permanent split in
  :mod:`repro.exceptions`;
* :mod:`repro.resilience.journal` — ``BatchJournal``: crash-safe
  append-only JSONL of finished jobs; ``compile_many(..., journal=...,
  resume=True)`` and ``python -m repro batch --journal --resume`` skip
  completed work after a crash.

See ``docs/resilience.md`` for the full reference.
"""

from .faults import (ENV_VAR, FaultPlan, FaultSpec, active_plan,
                     current_plan, fault_point, faults_active)
from .journal import (FINGERPRINT_VERSION, JOURNAL_VERSION, BatchJournal,
                      JournalError, atomic_write_bytes, canonical_job_spec,
                      fsync_dir, job_fingerprint, spec_fingerprint)
from .retry import (NO_RETRY, RetryOutcome, RetryPolicy, call_with_retry,
                    execute_with_retry)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "fault_point",
    "faults_active",
    "active_plan",
    "current_plan",
    "ENV_VAR",
    "RetryPolicy",
    "RetryOutcome",
    "execute_with_retry",
    "call_with_retry",
    "NO_RETRY",
    "BatchJournal",
    "JournalError",
    "job_fingerprint",
    "spec_fingerprint",
    "canonical_job_spec",
    "atomic_write_bytes",
    "fsync_dir",
    "JOURNAL_VERSION",
    "FINGERPRINT_VERSION",
]
