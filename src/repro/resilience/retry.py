"""Retry policies: exponential backoff with deterministic jitter.

The transient/permanent split lives in the exception taxonomy
(:mod:`repro.exceptions`): :class:`~repro.exceptions.TransientError`
subclasses are retried, everything else fails fast.  Two refinements:

* **timeouts** (:class:`~repro.exceptions.JobTimeoutError`) are
  transient by classification but *not retried by default* — a
  deterministic job that blew its wall-clock budget once will blow it
  again.  ``RetryPolicy(retry_timeouts=True)`` opts in.
* **per-error-class rules** — ``retry_on`` adds exception *names*
  (e.g. ``"ConnectionError"``, ``"OSError"``) to the transient set for
  third-party errors that cannot subclass the taxonomy, and
  ``never_retry`` force-classifies names as permanent.  Names (not
  types) keep the policy picklable across the pool boundary.

Backoff for attempt *n* (1-based) is ``base_delay_s * multiplier**(n-1)``
capped at ``max_delay_s``, then scattered by **deterministic jitter**: a
CRC32 of ``f"{key}:{n}"`` maps to a factor in ``[1 - jitter, 1 + jitter]``,
so two jobs retrying simultaneously de-synchronize, yet the exact same
job replays the exact same schedule on every run — chaos tests can
assert recorded backoffs to the microsecond.

Every attempt emits ``resilience.retry.*`` telemetry
(:func:`repro._telemetry.count_event`) and appends a structured record
that the batch engine surfaces as ``JobResult.attempts``.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .._telemetry import count_event
from ..exceptions import (JobTimeoutError, SpecificationError,
                          TransientError)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-attempt transient failures, and how fast.

    Immutable and built from primitives only, so it pickles across the
    batch engine's process-pool boundary unchanged.
    """

    #: Total attempts, including the first (1 = no retries).
    max_attempts: int = 3
    #: Backoff before the first retry.
    base_delay_s: float = 0.05
    #: Exponential growth factor between retries.
    multiplier: float = 2.0
    #: Backoff ceiling.
    max_delay_s: float = 5.0
    #: Jitter half-width as a fraction of the delay (0 disables).
    jitter: float = 0.1
    #: Retry :class:`JobTimeoutError` too (off: deterministic overruns
    #: would just burn the budget again).
    retry_timeouts: bool = False
    #: Extra exception-type *names* treated as transient.
    retry_on: Tuple[str, ...] = ()
    #: Exception-type names always treated as permanent.
    never_retry: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SpecificationError(
                f"max_attempts must be >= 1 (got {self.max_attempts})")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise SpecificationError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise SpecificationError(
                f"multiplier must be >= 1 (got {self.multiplier})")
        if not 0.0 <= self.jitter < 1.0:
            raise SpecificationError(
                f"jitter must be in [0, 1) (got {self.jitter})")

    # -- classification -----------------------------------------------------

    def is_transient(self, exc: BaseException) -> bool:
        """Should ``exc`` be retried under this policy?"""
        for klass in type(exc).__mro__:
            if klass.__name__ in self.never_retry:
                return False
        if isinstance(exc, JobTimeoutError):
            return self.retry_timeouts
        if isinstance(exc, TransientError):
            return True
        return any(klass.__name__ in self.retry_on
                   for klass in type(exc).__mro__)

    # -- backoff schedule ---------------------------------------------------

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff after failed attempt ``attempt`` (1-based).

        Deterministic: the jitter factor is a pure function of
        ``(key, attempt)``, never of a random generator or the clock.
        """
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                    self.max_delay_s)
        if self.jitter:
            digest = zlib.crc32(f"{key}:{attempt}".encode("utf-8"))
            fraction = digest / 0xFFFFFFFF  # in [0, 1]
            delay *= 1.0 + self.jitter * (2.0 * fraction - 1.0)
        return delay


#: A policy that never retries — the engine's behavior when no policy is
#: configured, expressed in the same vocabulary.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)


@dataclass
class RetryOutcome:
    """What :func:`execute_with_retry` observed across all attempts."""

    ok: bool
    value: Any = None
    error: Optional[BaseException] = None
    #: One record per *failed* attempt: ``attempt`` (1-based),
    #: ``error_type``, ``error``, ``transient``, and — when a retry
    #: followed — ``retried: True`` with the ``backoff_s`` slept.
    attempts: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def retries(self) -> int:
        """Backoff-then-retry transitions that actually happened."""
        return sum(1 for record in self.attempts if record.get("retried"))


def execute_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    key: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> RetryOutcome:
    """Run ``fn`` under ``policy``; never raises.

    ``key`` seeds the deterministic jitter (use a stable job identity).
    ``sleep`` is injectable so tests retire backoffs instantly while
    still asserting the recorded schedule.

    Telemetry: ``resilience.retry.attempts`` per call of ``fn``,
    ``.retries`` per backoff taken, ``.recovered`` when a retry
    succeeded, ``.exhausted`` when transient failures outlived the
    budget, ``.permanent`` for a non-retryable failure.
    """
    outcome = RetryOutcome(ok=False)
    for attempt in range(1, policy.max_attempts + 1):
        count_event("resilience.retry.attempts")
        try:
            outcome.value = fn()
            outcome.ok = True
            if attempt > 1:
                count_event("resilience.retry.recovered")
            return outcome
        except Exception as exc:
            transient = policy.is_transient(exc)
            record: Dict[str, Any] = {
                "attempt": attempt,
                "error_type": type(exc).__name__,
                "error": str(exc),
                "transient": transient,
            }
            outcome.attempts.append(record)
            outcome.error = exc
            if not transient:
                count_event("resilience.retry.permanent")
                return outcome
            if attempt == policy.max_attempts:
                count_event("resilience.retry.exhausted")
                return outcome
            backoff = policy.delay_s(attempt, key)
            record["retried"] = True
            record["backoff_s"] = backoff
            count_event("resilience.retry.retries")
            sleep(backoff)
    return outcome  # pragma: no cover — loop always returns


def call_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    key: str = "",
    sleep: Callable[[float], None] = time.sleep,
) -> Any:
    """Like :func:`execute_with_retry` but re-raises the final failure."""
    outcome = execute_with_retry(fn, policy, key=key, sleep=sleep)
    if not outcome.ok:
        assert outcome.error is not None
        raise outcome.error
    return outcome.value
