"""Deterministic, seeded fault injection for chaos testing.

Production resilience claims are worthless until a fault actually
happens; this module makes faults *happen on demand*, deterministically,
at named **fault points** compiled into the real code paths:

========================  ====================================================
site                      where it fires
========================  ====================================================
``batch.job``             inside a worker, at the start of every job attempt
                          (detail: the job name)
``batch.collect``         in the batch parent, after each result is recorded
                          (detail: the job name)
``pipeline.pass``         before every pipeline pass runs (detail: pass name)
``solver.solve``          at entry of :func:`repro.solver.solve_depth_optimal`
``solver.expand``         on every solver node expansion
``serve.request``         in the serve daemon, as each normalized compile
                          request starts (detail: ``job-name:fingerprint``)
``serve.store_write``     inside a result-store publish, after the temp file
                          is written but before the atomic rename (detail:
                          the fingerprint) — a kill here models a crash
                          mid-write
========================  ====================================================

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules.  Each rule
names a site, an optional substring ``match`` against the site's detail
string, a 0-based occurrence index ``at``, a repeat count ``times``, and
an ``action``:

* ``"raise"`` — raise an error of the named class (``error`` key of
  :data:`ERROR_CLASSES`; default a :class:`~repro.exceptions.TransientError`);
* ``"timeout"`` — raise :class:`~repro.exceptions.JobTimeoutError`,
  simulating a per-job deadline expiry without waiting for one;
* ``"sleep"`` — block for ``seconds`` (drives *real* ``SIGALRM``
  deadlines past their budget);
* ``"kill"`` — ``os._exit(exit_code)``: the process dies mid-job with no
  cleanup, exactly like an OOM kill.  In a pool worker this surfaces as
  ``BrokenProcessPool`` in the parent; in a serial run the whole sweep
  dies (the crash-safe journal is what survives).

Activation is either explicit and process-local::

    with active_plan(FaultPlan([FaultSpec(site="batch.job", at=1)])):
        compile_many(jobs, executor="serial")

or via the environment — ``REPRO_FAULT_PLAN`` holds the plan's JSON (or
``@/path/to/plan.json``), which is how a chaos test reaches a CLI
subprocess and its pool workers::

    REPRO_FAULT_PLAN=$(python -c 'print(plan.to_env())') python -m repro batch ...

When no plan is active a :func:`fault_point` call is one module-global
load and an ``is None`` test — effectively free, so the hooks stay
compiled into hot paths (including the solver's expansion loop)
unconditionally.

Determinism: rules trigger on exact per-process hit counts, never on
wall clocks or randomness, so a chaos test replays identically on every
run.  Hit counters are per :class:`FaultPlan` instance; under the
``fork`` start method pool workers inherit the parent's plan *and* its
counters at fork time, then count independently.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from ..exceptions import (CompilationError, JobTimeoutError,
                          ResourceExhaustedError, SolverError,
                          SolverExhaustedError, SpecificationError,
                          TransientError, ValidationError)

#: Environment variable carrying a serialized plan (JSON, or ``@file``).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Every registered fault-point site name (the module table above).
#: ``fault_point`` calls must use one of these — the CK021 static check
#: enforces it — so a typo'd site can never make a chaos plan
#: vacuously pass.  Extend this tuple (and the table) when compiling a
#: new injection site into a code path.
KNOWN_SITES: Tuple[str, ...] = ("batch.job", "batch.collect",
                                "pipeline.pass", "solver.solve",
                                "solver.expand", "serve.request",
                                "serve.store_write")

ACTIONS = ("raise", "timeout", "sleep", "kill")

#: ``error`` key -> exception class for ``action="raise"``.
ERROR_CLASSES: Dict[str, Type[BaseException]] = {
    "transient": TransientError,
    "resource": ResourceExhaustedError,
    "solver": SolverError,
    "solver_exhausted": SolverExhaustedError,
    "timeout": JobTimeoutError,
    "compilation": CompilationError,
    "validation": ValidationError,
    "runtime": RuntimeError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *where*, *when*, and *what kind of* fault."""

    #: Fault-point name this rule listens on (see the module table).
    site: str
    #: What happens when the rule fires.
    action: str = "raise"
    #: Exception class key (:data:`ERROR_CLASSES`) for ``"raise"``.
    error: str = "transient"
    #: 0-based index of the first matching hit that fires.
    at: int = 0
    #: How many consecutive matching hits fire (from ``at``).
    times: int = 1
    #: Substring filter against the site's detail string ("" matches all).
    match: str = ""
    #: Custom message for raised errors.
    message: str = ""
    #: Sleep duration for ``action="sleep"``.
    seconds: float = 0.0
    #: Process exit status for ``action="kill"`` (134 = SIGABRT-style).
    exit_code: int = 134

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise SpecificationError(f"unknown fault action {self.action!r}; "
                             f"expected one of {ACTIONS}")
        if self.action == "raise" and self.error not in ERROR_CLASSES:
            raise SpecificationError(
                f"unknown fault error class {self.error!r}; expected one "
                f"of {tuple(ERROR_CLASSES)}")
        if self.at < 0 or self.times < 1:
            raise SpecificationError(
                f"need at >= 0 and times >= 1 (got at={self.at}, "
                f"times={self.times})")

    def fire(self) -> None:
        """Perform this rule's fault action (may raise or exit)."""
        if self.action == "kill":
            os._exit(self.exit_code)
        if self.action == "sleep":
            time.sleep(self.seconds)
            return
        if self.action == "timeout":
            raise JobTimeoutError(
                self.message or f"injected timeout at {self.site!r}")
        raise ERROR_CLASSES[self.error](
            self.message
            or f"injected {self.error} fault at {self.site!r}")


class FaultPlan:
    """An ordered set of :class:`FaultSpec` rules with hit counters."""

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        #: Matching hits seen per spec (indexes align with ``specs``).
        self.hits: List[int] = [0] * len(self.specs)
        #: Faults actually fired per spec (sleep counts as fired).
        self.fired: List[int] = [0] * len(self.specs)

    def trigger(self, site: str, detail: Optional[str]) -> None:
        """Count a hit on ``site`` and fire whichever rule matches it."""
        for index, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.match and spec.match not in (detail or ""):
                continue
            hit = self.hits[index]
            self.hits[index] = hit + 1
            if spec.at <= hit < spec.at + spec.times:
                self.fired[index] += 1
                spec.fire()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"version": 1,
                "faults": [asdict(spec) for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict) or "faults" not in data:
            raise SpecificationError(
                "fault plan JSON must be an object with a 'faults' list")
        faults = data["faults"]
        if not isinstance(faults, list):
            raise SpecificationError("'faults' must be a list of fault specs")
        return cls([FaultSpec(**spec) for spec in faults])

    def to_env(self) -> str:
        """The compact JSON string to put in :data:`ENV_VAR`."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    def __repr__(self) -> str:
        return f"FaultPlan({self.specs!r})"


#: Sentinel: the environment has not been consulted yet in this process.
_UNLOADED = object()

#: ``_UNLOADED`` | ``None`` (inactive) | the active :class:`FaultPlan`.
_state: object = _UNLOADED


def _load_env_plan() -> Optional[FaultPlan]:
    """Resolve :data:`ENV_VAR` into the process-wide plan (once)."""
    global _state
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        _state = None
        return None
    try:
        if raw.startswith("@"):
            with open(raw[1:], encoding="utf-8") as handle:
                raw = handle.read()
        plan = FaultPlan.from_dict(json.loads(raw))
    except (OSError, ValueError, TypeError) as exc:
        raise SpecificationError(f"invalid {ENV_VAR}: {exc}") from exc
    _state = plan
    return plan


def fault_point(site: str, detail: Optional[str] = None) -> None:
    """A named injection site; free when no plan is active.

    Call this from real code paths with a stable ``site`` name (and an
    optional detail string rules can ``match`` on).  With no active plan
    this is a global load plus an ``is None`` test.
    """
    plan = _state
    if plan is None:
        return
    if plan is _UNLOADED:
        plan = _load_env_plan()
        if plan is None:
            return
    assert isinstance(plan, FaultPlan)
    plan.trigger(site, detail)


def faults_active() -> bool:
    """Is any fault plan (explicit or environment) currently active?"""
    if _state is _UNLOADED:
        _load_env_plan()
    return _state is not None


def current_plan() -> Optional[FaultPlan]:
    """The active plan, if any (for assertions on hit/fired counters)."""
    if _state is _UNLOADED:
        _load_env_plan()
    return _state if isinstance(_state, FaultPlan) else None


def reset() -> None:
    """Forget any loaded plan; the environment is re-read on next use."""
    global _state
    _state = _UNLOADED


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Explicitly activate ``plan`` for the current process (tests).

    Pool workers forked while the plan is active inherit it (and its
    counters as of fork time).  On exit the previous state is restored.
    """
    global _state
    previous = _state
    _state = plan
    try:
        yield plan
    finally:
        _state = previous
