"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ValidationError(ReproError):
    """A compiled circuit violates a hardware or semantic constraint."""


class LintError(ValidationError):
    """A lint run found error-severity diagnostics (``fail_on_error``).

    Subclasses :class:`ValidationError` because every lint *error* is a
    hardware or semantic violation; callers that already catch
    ``ValidationError`` keep working when they switch to ``LintPass``.
    """


class ArchitectureError(ReproError):
    """An architecture was constructed or queried inconsistently."""


class CompilationError(ReproError):
    """The compiler could not produce a valid circuit."""


class SolverError(ReproError):
    """The depth-optimal solver failed (e.g. exceeded its node budget)."""
