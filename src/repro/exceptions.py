"""Exception hierarchy for the repro package.

Errors split along a **transient/permanent** axis that the resilience
layer (:mod:`repro.resilience`) keys on:

* :class:`TransientError` subclasses mark failures that may succeed if
  simply retried (worker hiccups, injected chaos faults, timeouts); the
  batch engine's retry policy re-attempts them with backoff.
* :class:`ResourceExhaustedError` subclasses mark a *bounded budget*
  running out (solver node budgets, memory caps).  Retrying the same
  work cannot help, but a cheaper strategy might — the ``optimal``
  method degrades to the greedy preset on
  :class:`SolverExhaustedError` instead of failing the job.

Everything else is permanent: retrying is wasted work and the failure
surfaces immediately.  :class:`SpecificationError` (and its subclasses)
marks the *caller-error* half of that permanent set — invalid job specs,
unknown knobs, unusable journals — distinct from genuine compilation
failures.

Every ``raise`` in the retry-reachable subsystems (``batch``,
``pipeline``, ``solver``, ``resilience``) must use a class defined in
this module; the CK020 static check (:mod:`repro.checkers`) enforces
that, because the retry layer silently treats unknown exception types
as permanent.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class TransientError(ReproError):
    """A failure that may succeed if the same work is retried.

    The retry policy (:mod:`repro.resilience.retry`) re-attempts these
    with exponential backoff; every other exception class is treated as
    permanent and fails fast.
    """


class ResourceExhaustedError(ReproError):
    """A bounded resource budget (nodes, memory, attempts) ran out.

    Not transient — retrying identical work exhausts the same budget —
    but eligible for *degradation* to a cheaper strategy where one is
    registered (see :class:`repro.pipeline.solver.SolverPass`).
    """


class SpecificationError(ReproError, ValueError):
    """An invalid job, method, knob or plan specification (caller error).

    Permanent by classification: the same spec fails identically on
    every attempt, so the retry layer must never re-run it.  Subclasses
    :class:`ValueError` because these sites historically raised plain
    ``ValueError`` — callers (and tests) catching that keep working.
    """


class UnknownKnobError(SpecificationError, TypeError):
    """A compile call passed a knob no method declares.

    Additionally subclasses :class:`TypeError` to match the historic
    "unexpected keyword argument" contract of ``compile_qaoa``.
    """


class JournalError(SpecificationError):
    """A journal file cannot be used for the requested resume.

    Lives here (rather than in :mod:`repro.resilience.journal`, which
    re-exports it) so the whole transient/permanent taxonomy is defined
    in one module — the CK020 static check keys on exactly this set.
    """


class ValidationError(ReproError):
    """A compiled circuit violates a hardware or semantic constraint."""


class LintError(ValidationError):
    """A lint run found error-severity diagnostics (``fail_on_error``).

    Subclasses :class:`ValidationError` because every lint *error* is a
    hardware or semantic violation; callers that already catch
    ``ValidationError`` keep working when they switch to ``LintPass``.
    """


class ArchitectureError(ReproError):
    """An architecture was constructed or queried inconsistently."""


class CompilationError(ReproError):
    """The compiler could not produce a valid circuit."""


class SolverError(ReproError):
    """The depth-optimal solver failed (e.g. exceeded its node budget)."""


class SolverExhaustedError(SolverError, ResourceExhaustedError):
    """The exact solver ran out of its node budget.

    Subclasses both :class:`SolverError` (callers catching the historic
    type keep working) and :class:`ResourceExhaustedError` (the pipeline
    knows this instance is merely *too large*, not malformed, and may
    fall back to a heuristic method).
    """


class JobTimeoutError(TransientError):
    """A batch job exceeded its per-job wall-clock budget.

    Raised inside a worker by the ``SIGALRM`` deadline of
    :mod:`repro.batch.engine`.  Transient by classification, but the
    default retry policy does *not* re-attempt timeouts — a
    deterministic compilation that blew its budget once will blow it
    again (opt in with ``RetryPolicy(retry_timeouts=True)``).
    """


#: Historic name from ``repro.batch.engine``; kept for back-compat.
JobTimeout = JobTimeoutError
