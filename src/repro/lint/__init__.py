"""Circuit lint: a diagnostics-based static analyzer for compiled circuits.

Where :func:`repro.ir.validate.validate_compiled` raises on the first
violation, :func:`lint_circuit` replays the same mapping bookkeeping in
one tolerant scan and reports **every** finding as a structured
:class:`Diagnostic` (rule code, severity, op index, cycle, qubits,
message, fix hint) collected into a :class:`LintReport`.

Rule groups (full catalogue in ``docs/linting.md``):

* ``RL00x`` hardware conformance — uncoupled pairs, intra-cycle qubit
  reuse, out-of-range indices (errors);
* ``RL01x`` semantic integrity — spare-qubit gates, non-problem edges,
  repeated/missing edges, tag/mapping disagreement (errors);
* ``RL02x`` quality — cancelling SWAP pairs, metric-accounting drift,
  idle-heavy schedules (warnings/info).

Entry points:

* :func:`lint_circuit` / :func:`lint_result` — library API;
* :class:`repro.pipeline.LintPass` — in-pipeline linting with per-rule
  counts in ``CompiledResult.extra["lint"]``;
* ``python -m repro lint`` — CLI over serialized circuits/results/QASM;
* ``BatchJob(lint=True)`` — per-job diagnostics aggregated into the
  :class:`repro.batch.BatchReport`.
"""

from .diagnostics import (ERROR, INFO, SEVERITIES, WARNING, Diagnostic,
                          LintReport)
from .engine import LintContext, OpView, build_context, lint_circuit, \
    lint_result
from .program import lint_program
from .reporters import JSON_SCHEMA_VERSION, render_json, render_text
from .rules import (LintRule, all_rules, get_rule, register_rule,
                    resolve_rules, rule, rule_table)

__all__ = [
    "lint_program",
    "Diagnostic",
    "LintReport",
    "LintRule",
    "LintContext",
    "OpView",
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "JSON_SCHEMA_VERSION",
    "lint_circuit",
    "lint_result",
    "build_context",
    "render_text",
    "render_json",
    "rule",
    "register_rule",
    "get_rule",
    "all_rules",
    "resolve_rules",
    "rule_table",
]
