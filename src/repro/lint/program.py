"""Program-aware linting: per-layer rule runs plus the RL03x group.

A layered :class:`~repro.ir.program.Program` cannot be linted as one
flat circuit — every cost layer re-executes the full problem edge set,
so RL012 (repeated-edge) would fire on each repetition and RL013 would
never see a mixer wall cleanly.  :func:`lint_program` instead runs the
whole rule catalogue **once per layer**, each layer against its own
recorded input mapping (cost layers must implement exactly the problem;
mixer walls are exempt from the all-edges requirement), stamping every
diagnostic with its layer index.

The RL03x rules check what only a program can get wrong:

* **RL030 layer-mapping-discontinuity** (error) — a layer's recorded
  input mapping disagrees with the previous layer's recorded output;
* **RL031 layer-permutation-drift** (error) — a layer's recorded output
  mapping disagrees with what its SWAPs actually produce;
* **RL032 uncancelled-permutation** (warning) — an even number of cost
  layers whose net permutation is *not* the identity, i.e. the
  reversed-layer cancellation was available but not applied.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (Iterable, Iterator, List, Mapping as TypingMapping,
                    Optional, Sequence, Tuple)

from ..ir.program import Program
from .diagnostics import ERROR, WARNING, Diagnostic, LintReport
from .engine import LintContext, build_context
from .rules import resolve_rules, rule

Edge = Tuple[int, int]


@rule("RL030", "layer-mapping-discontinuity", ERROR,
      "a program layer's input mapping disagrees with the previous "
      "layer's output mapping")
def check_layer_continuity(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_layer_continuity.rule  # type: ignore[attr-defined]
    program = context.program
    index = context.layer_index
    if program is None or index is None or index == 0:
        return
    layer = program.layers[index]
    previous = program.layers[index - 1]
    if layer.input_log_to_phys != previous.output_log_to_phys:
        yield this.diagnostic(
            f"layer {index} ({layer.role}) starts from mapping "
            f"{list(layer.input_log_to_phys)} but layer {index - 1} "
            f"({previous.role}) ends at "
            f"{list(previous.output_log_to_phys)}",
            hint="layers must be mapping-continuous; the program was "
                 "assembled (or edited) inconsistently")


@rule("RL031", "layer-permutation-drift", ERROR,
      "a program layer's recorded output mapping disagrees with the "
      "layout its SWAPs actually produce")
def check_layer_permutation(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_layer_permutation.rule  # type: ignore[attr-defined]
    program = context.program
    index = context.layer_index
    if program is None or index is None or context.has_malformed:
        return
    layer = program.layers[index]
    scanned = context.final_mapping
    if scanned is None:
        return
    if tuple(scanned.log_to_phys) != layer.output_log_to_phys:
        yield this.diagnostic(
            f"layer {index} ({layer.role}) records output mapping "
            f"{list(layer.output_log_to_phys)} but its SWAPs produce "
            f"{list(scanned.log_to_phys)}",
            hint="the recorded mapping provenance and the circuit "
                 "drifted apart; reassemble the program")


@rule("RL032", "uncancelled-permutation", WARNING,
      "an even number of cost layers leaves a non-identity net "
      "permutation — the reversed-layer cancellation was not applied")
def check_uncancelled(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_uncancelled.rule  # type: ignore[attr-defined]
    program = context.program
    index = context.layer_index
    if program is None or index is None:
        return
    if index != len(program.layers) - 1:  # fire once, on the last layer
        return
    if program.p % 2 == 0 and not program.net_permutation_is_identity:
        yield this.diagnostic(
            f"{program.p} cost layers end at "
            f"{list(program.final_log_to_phys)} instead of the initial "
            f"placement {list(program.initial_mapping.log_to_phys)}",
            hint="alternate each cost layer with its op-reversal "
                 "(repro.ir.reversed_layer) so the permutations cancel "
                 "pairwise and measurement needs no remapping")


def lint_program(
    program: Program,
    coupling_edges: Iterable[Edge],
    problem_edges: Iterable[Edge],
    allow_repeats: bool = False,
    expected: Optional[TypingMapping[str, object]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint every layer of a program, one rule sweep per layer.

    Cost layers are held to the full single-circuit contract from their
    own input mapping (every problem edge exactly once, on hardware,
    semantically tracked); mixer walls skip the all-edges requirement.
    ``expected`` cross-checks recorded program totals (``ops`` /
    ``swaps``, e.g. from ``CompiledResult.extra["program"]``) against
    recomputation, the program-level analogue of RL021.
    """
    rules = resolve_rules(select=select, ignore=ignore)
    diagnostics: List[Diagnostic] = []
    for index, layer in enumerate(program.layers):
        context = build_context(
            layer.circuit, coupling_edges,
            layer.input_mapping(program.n_qubits), problem_edges,
            allow_repeats=allow_repeats,
            require_all_edges=layer.is_cost)
        context.program = program
        context.layer_index = index
        for lint_rule in rules:
            for diagnostic in lint_rule.check(context):
                if diagnostic.layer is None:
                    diagnostic = replace(diagnostic, layer=index)
                diagnostics.append(diagnostic)
    if expected:
        diagnostics.extend(_check_program_totals(program, expected))
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(diagnostics=diagnostics)


def _check_program_totals(
        program: Program,
        expected: TypingMapping[str, object]) -> List[Diagnostic]:
    """RL021 over program totals: recorded vs recomputed ops/swaps."""
    from .rules import get_rule

    rl021 = get_rule("RL021")
    recomputed = {"ops": program.n_ops(), "swaps": program.swap_count(),
                  "layers": len(program.layers), "p": program.p}
    out: List[Diagnostic] = []
    for key in sorted(recomputed):
        if key not in expected:
            continue
        if expected[key] != recomputed[key]:
            out.append(rl021.diagnostic(
                f"recorded program {key}={expected[key]} but the layers "
                f"recompute to {key}={recomputed[key]}",
                hint="the program record and its layer circuits drifted "
                     "apart; regenerate the serialized program"))
    return out
