"""The lint engine: one tolerant scan, then every registered rule.

:func:`lint_circuit` generalises :func:`repro.ir.validate.validate_compiled`
from fail-fast exceptions to a full report.  The engine makes **one** pass
over the circuit building a :class:`LintContext` — per-op ASAP cycle,
the logical occupants each CPHASE touches under the tracked mapping, the
executed-edge index, per-cycle activity — and each rule then reads those
precomputed tables, so a full multi-rule lint stays ``O(ops)``.

Unlike :class:`repro.ir.circuit.Circuit` construction, the scan is
*tolerant*: out-of-range or duplicated qubit indices (a corrupted or
hand-built document) mark the op as malformed and become diagnostics
instead of crashes, which is what lets the linter report on circuits the
strict constructors would refuse to build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Mapping as TypingMapping,
                    Optional, Sequence, Tuple)

from ..ir.circuit import Circuit
from ..ir.gates import CPHASE, SWAP, Op, canonical_edge, canonical_edges
from ..ir.mapping import Mapping
from ..ir.program import Program
from .diagnostics import Diagnostic, LintReport

Edge = Tuple[int, int]


@dataclass(frozen=True)
class OpView:
    """One op plus everything the scan learned about it."""

    index: int
    op: Op
    #: ASAP cycle the op lands in (unit-duration schedule, as
    #: :meth:`repro.ir.circuit.Circuit.depth` computes it).
    cycle: int
    #: Qubit indices outside ``[0, n_qubits)``.
    out_of_range: Tuple[int, ...] = ()
    #: Qubit indices the op names more than once.
    duplicated: Tuple[int, ...] = ()
    #: Logical occupants ``(lu, lv)`` of a CPHASE's physical qubits at
    #: the moment the gate runs; ``None`` entries are spare qubits.
    logical: Optional[Tuple[Optional[int], Optional[int]]] = None
    #: Canonical logical edge, when both occupants exist.
    logical_edge: Optional[Edge] = None

    @property
    def malformed(self) -> bool:
        return bool(self.out_of_range or self.duplicated)


@dataclass
class LintContext:
    """Precomputed circuit state shared by every rule."""

    circuit: Circuit
    hardware: FrozenSet[Edge]
    problem_edges: FrozenSet[Edge]
    initial_mapping: Mapping
    allow_repeats: bool = False
    require_all_edges: bool = True
    #: Recorded metrics (``depth``/``cx``/``swaps``/``ops``) to cross-check
    #: against recomputation — the batch/serialisation accounting rule.
    expected: Optional[TypingMapping[str, float]] = None
    views: List[OpView] = field(default_factory=list)
    #: Problem-or-not logical edge -> op indices of the CPHASEs that
    #: implemented it, in program order.
    executed: Dict[Edge, List[int]] = field(default_factory=dict)
    final_mapping: Optional[Mapping] = None
    n_cycles: int = 0
    #: Number of distinct in-range qubits busy in each cycle.
    cycle_active: List[int] = field(default_factory=list)
    #: Set by :func:`repro.lint.program.lint_program`: the layered
    #: program being linted and the index of the layer this context
    #: covers.  Plain single-circuit runs leave both ``None``, which is
    #: what keeps the RL03x program rules silent for them.
    program: Optional[Program] = None
    layer_index: Optional[int] = None

    @property
    def has_malformed(self) -> bool:
        return any(view.malformed for view in self.views)

    def executed_problem_edges(self) -> FrozenSet[Edge]:
        return frozenset(edge for edge in self.executed
                         if edge in self.problem_edges)


def build_context(
    circuit: Circuit,
    coupling_edges: Iterable[Edge],
    initial_mapping: Mapping,
    problem_edges: Iterable[Edge],
    allow_repeats: bool = False,
    require_all_edges: bool = True,
    expected: Optional[TypingMapping[str, float]] = None,
) -> LintContext:
    """One tolerant scan of ``circuit`` into a :class:`LintContext`."""
    context = LintContext(
        circuit=circuit,
        hardware=canonical_edges(coupling_edges),
        problem_edges=canonical_edges(problem_edges),
        initial_mapping=initial_mapping,
        allow_repeats=allow_repeats,
        require_all_edges=require_all_edges,
        expected=expected,
    )
    n_qubits = circuit.n_qubits
    mapping = initial_mapping.copy()
    busy_until: Dict[int, int] = {}
    cycle_active: List[int] = []

    for index, op in enumerate(circuit.ops):
        qubits = op.qubits
        seen: List[int] = []
        duplicated_list: List[int] = []
        for q in qubits:
            if q in seen:
                duplicated_list.append(q)
            else:
                seen.append(q)
        duplicated = tuple(duplicated_list)
        out_of_range = tuple(q for q in seen if not 0 <= q < n_qubits)
        start = max((busy_until.get(q, 0) for q in seen), default=0)
        for q in seen:
            busy_until[q] = start + 1
        while len(cycle_active) <= start:
            cycle_active.append(0)
        cycle_active[start] += sum(1 for q in seen if 0 <= q < n_qubits)

        logical: Optional[Tuple[Optional[int], Optional[int]]] = None
        logical_edge: Optional[Edge] = None
        well_formed_pair = (len(qubits) == 2 and not duplicated
                            and not out_of_range)
        if op.kind == CPHASE and well_formed_pair:
            u, v = qubits
            lu, lv = mapping.logical(u), mapping.logical(v)
            logical = (lu, lv)
            if lu is not None and lv is not None:
                logical_edge = canonical_edge(lu, lv)
                context.executed.setdefault(logical_edge, []).append(index)
        elif op.kind == SWAP and well_formed_pair:
            mapping.swap_physical(*qubits)

        context.views.append(OpView(
            index=index, op=op, cycle=start,
            out_of_range=out_of_range, duplicated=duplicated,
            logical=logical, logical_edge=logical_edge))

    context.final_mapping = mapping
    context.n_cycles = len(cycle_active)
    context.cycle_active = cycle_active
    return context


def lint_circuit(
    circuit: Circuit,
    coupling_edges: Iterable[Edge],
    initial_mapping: Mapping,
    problem_edges: Iterable[Edge],
    allow_repeats: bool = False,
    require_all_edges: bool = True,
    expected: Optional[TypingMapping[str, float]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run every registered (or selected) rule and collect all findings.

    Parameters mirror :func:`repro.ir.validate.validate_compiled`, plus:

    expected:
        Recorded metrics (``depth``, ``cx``, ``swaps``, ``ops``) from a
        serialized result or batch record; rule RL021 cross-checks them
        against recomputation.
    select / ignore:
        Rule codes to run exclusively / to skip.  Unknown codes raise
        ``ValueError`` naming the registered set.
    """
    from .rules import resolve_rules

    context = build_context(
        circuit, coupling_edges, initial_mapping, problem_edges,
        allow_repeats=allow_repeats, require_all_edges=require_all_edges,
        expected=expected)
    diagnostics: List[Diagnostic] = []
    for rule in resolve_rules(select=select, ignore=ignore):
        diagnostics.extend(rule.check(context))
    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(diagnostics=diagnostics)


def lint_result(result: object, coupling: object, problem: object,
                **kwargs: object) -> LintReport:
    """Lint a :class:`repro.compiler.result.CompiledResult`.

    Accepts the same keyword arguments as :func:`lint_circuit`; the
    circuit and initial mapping come from ``result``, the hardware and
    problem edges from ``coupling``/``problem``.  Results carrying a
    multi-layer program (``layers > 1``) are linted per layer through
    :func:`repro.lint.program.lint_program`; single-layer results keep
    the historic flat-circuit lint byte for byte.
    """
    program = getattr(result, "program", None)
    if program is not None and program.p > 1:
        from .program import lint_program

        kwargs.pop("require_all_edges", None)
        kwargs.pop("expected", None)
        return lint_program(
            program,
            coupling.edges,        # type: ignore[attr-defined]
            problem.edges,         # type: ignore[attr-defined]
            **kwargs)              # type: ignore[arg-type]
    return lint_circuit(
        result.circuit,            # type: ignore[attr-defined]
        coupling.edges,            # type: ignore[attr-defined]
        result.initial_mapping,    # type: ignore[attr-defined]
        problem.edges,             # type: ignore[attr-defined]
        **kwargs)                  # type: ignore[arg-type]
