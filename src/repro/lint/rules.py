"""The lint rule catalogue and registry.

Rules are grouped by code range (see ``docs/linting.md`` for the full
catalogue with examples):

* **RL00x — hardware conformance** (error): the circuit must be runnable
  on the coupling graph at all.
* **RL01x — semantic integrity** (error): tracking the logical mapping
  through every SWAP, the circuit must implement exactly the problem.
* **RL02x — quality** (warning/info): legal but wasteful or inconsistent
  schedules.

Each rule is a pure function over the precomputed
:class:`~repro.lint.engine.LintContext`; registering one is a
:func:`rule` decoration, after which it participates in
:func:`~repro.lint.engine.lint_circuit`, ``LintPass``, the batch
engine's ``lint=True`` and the ``repro lint`` CLI with no further
wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List
from typing import Optional, Sequence, Tuple

from ..ir.gates import CPHASE, SWAP, canonical_edge
from .diagnostics import ERROR, INFO, SEVERITIES, WARNING, Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .engine import LintContext

CheckFn = Callable[["LintContext"], Iterator[Diagnostic]]

#: RL013 emits one diagnostic per missing edge up to this cap, then a
#: single summary diagnostic for the remainder.
MISSING_EDGE_CAP = 10
#: RL022 stays silent below this depth (short circuits are never
#: meaningfully "idle-heavy").
IDLE_MIN_CYCLES = 8
#: RL022 fires when the mean idle fraction of mapped qubits exceeds this.
IDLE_FRACTION_THRESHOLD = 0.85


@dataclass(frozen=True)
class LintRule:
    """One registered diagnostic rule."""

    code: str
    name: str
    severity: str
    description: str
    check: CheckFn

    def diagnostic(self, message: str, **kwargs: object) -> Diagnostic:
        """A :class:`Diagnostic` pre-stamped with this rule's identity."""
        return Diagnostic(code=self.code, severity=self.severity,
                          rule=self.name, message=message,
                          **kwargs)  # type: ignore[arg-type]


_RULES: Dict[str, LintRule] = {}


def register_rule(rule_obj: LintRule) -> LintRule:
    """Register (or deliberately replace) a rule under its code."""
    if rule_obj.severity not in SEVERITIES:
        raise ValueError(
            f"rule {rule_obj.code} has unknown severity "
            f"{rule_obj.severity!r}; expected one of {SEVERITIES}")
    _RULES[rule_obj.code] = rule_obj
    return rule_obj


def rule(code: str, name: str, severity: str,
         description: str) -> Callable[[CheckFn], CheckFn]:
    """Decorator: register ``fn`` as the check of a new :class:`LintRule`.

    The decorated function receives the rule object as an extra first
    binding via closure-free convention: it is called as ``fn(context)``
    and should use :func:`get_rule` (or the module-level helper created
    here) to stamp diagnostics; to keep rule bodies terse the decorator
    rebinds ``fn`` so that ``fn.rule`` is the registered rule.
    """
    def wrap(fn: CheckFn) -> CheckFn:
        rule_obj = LintRule(code=code, name=name, severity=severity,
                            description=description, check=fn)
        register_rule(rule_obj)
        fn.rule = rule_obj  # type: ignore[attr-defined]
        return fn
    return wrap


def get_rule(code: str) -> LintRule:
    try:
        return _RULES[code]
    except KeyError:
        raise ValueError(
            f"unknown lint rule {code!r}; registered rules: "
            f"{', '.join(sorted(_RULES))}") from None


def all_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(_RULES[code] for code in sorted(_RULES))


def rule_table() -> Dict[str, Tuple[str, str, str]]:
    """``{code: (name, severity, description)}`` for docs and ``--help``."""
    return {r.code: (r.name, r.severity, r.description)
            for r in all_rules()}


def resolve_rules(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None,
                  ) -> Tuple[LintRule, ...]:
    """The rule set to run, honouring ``select``/``ignore`` code lists."""
    for code in list(select or ()) + list(ignore or ()):
        get_rule(code)  # raise early on unknown codes
    chosen = all_rules()
    if select:
        wanted = set(select)
        chosen = tuple(r for r in chosen if r.code in wanted)
    if ignore:
        unwanted = set(ignore)
        chosen = tuple(r for r in chosen if r.code not in unwanted)
    return chosen


# ---------------------------------------------------------------------------
# RL00x — hardware conformance
# ---------------------------------------------------------------------------

@rule("RL001", "uncoupled-pair", ERROR,
      "a two-qubit op acts on a physical pair the coupling graph lacks")
def check_uncoupled_pair(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_uncoupled_pair.rule  # type: ignore[attr-defined]
    for view in context.views:
        op = view.op
        if not op.is_two_qubit or view.malformed or len(op.qubits) != 2:
            continue
        pair = canonical_edge(*op.qubits)
        if pair not in context.hardware:
            yield this.diagnostic(
                f"{op.kind} acts on uncoupled physical pair {pair}",
                op_index=view.index, cycle=view.cycle, qubits=pair,
                hint="route the pair adjacent with SWAPs along coupled "
                     "edges, or fix the coupling graph passed to the "
                     "linter")


@rule("RL002", "cycle-qubit-conflict", ERROR,
      "a qubit is used more than once in the same cycle")
def check_cycle_conflict(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_cycle_conflict.rule  # type: ignore[attr-defined]
    for view in context.views:
        for q in view.duplicated:
            yield this.diagnostic(
                f"qubit {q} used twice in cycle {view.cycle} by "
                f"{view.op.kind} on {view.op.qubits}",
                op_index=view.index, cycle=view.cycle,
                qubits=tuple(view.op.qubits),
                hint="an op cannot touch the same qubit twice; the "
                     "producing compiler emitted a corrupt gate")


@rule("RL003", "qubit-out-of-range", ERROR,
      "an op names a qubit outside the circuit's register")
def check_qubit_range(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_qubit_range.rule  # type: ignore[attr-defined]
    width = context.circuit.n_qubits
    for view in context.views:
        for q in view.out_of_range:
            yield this.diagnostic(
                f"qubit {q} out of range for the {width}-qubit register",
                op_index=view.index, cycle=view.cycle,
                qubits=tuple(view.op.qubits),
                hint=f"valid physical indices are 0..{width - 1}")


# ---------------------------------------------------------------------------
# RL01x — semantic integrity
# ---------------------------------------------------------------------------

@rule("RL010", "spare-qubit-gate", ERROR,
      "a CPHASE touches a physical qubit holding no logical qubit")
def check_spare_qubit(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_spare_qubit.rule  # type: ignore[attr-defined]
    for view in context.views:
        if view.op.kind != CPHASE or view.logical is None:
            continue
        lu, lv = view.logical
        if lu is None or lv is None:
            spares = tuple(q for q, occupant
                           in zip(view.op.qubits, view.logical)
                           if occupant is None)
            yield this.diagnostic(
                f"cphase touches spare physical qubit(s) {spares} "
                f"(logical occupants: {lu}, {lv})",
                op_index=view.index, cycle=view.cycle,
                qubits=tuple(view.op.qubits),
                hint="problem gates must act on two mapped qubits; "
                     "check the initial mapping and the SWAP history")


@rule("RL011", "non-problem-edge", ERROR,
      "a CPHASE implements a logical pair that is not a problem edge")
def check_non_problem_edge(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_non_problem_edge.rule  # type: ignore[attr-defined]
    for view in context.views:
        if view.logical_edge is None:
            continue
        if view.logical_edge not in context.problem_edges:
            yield this.diagnostic(
                f"cphase implements {view.logical_edge}, which is not a "
                f"problem edge",
                op_index=view.index, cycle=view.cycle,
                qubits=tuple(view.op.qubits), logical=view.logical_edge,
                hint="the compiler scheduled a gate the program never "
                     "asked for; the mapping trace and the gate list "
                     "disagree")


@rule("RL012", "repeated-edge", ERROR,
      "a problem edge receives more than one CPHASE")
def check_repeated_edge(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_repeated_edge.rule  # type: ignore[attr-defined]
    if context.allow_repeats:
        return
    for edge, indices in sorted(context.executed.items()):
        if edge not in context.problem_edges or len(indices) < 2:
            continue
        first = indices[0]
        for index in indices[1:]:
            view = context.views[index]
            yield this.diagnostic(
                f"problem edge {edge} repeated (first executed at "
                f"op#{first})",
                op_index=index, cycle=view.cycle,
                qubits=tuple(view.op.qubits), logical=edge,
                hint="each problem edge must execute exactly once; pass "
                     "allow_repeats=True only for patterns that revisit "
                     "pairs deliberately")


@rule("RL013", "missing-edge", ERROR,
      "a problem edge is never executed by any CPHASE")
def check_missing_edges(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_missing_edges.rule  # type: ignore[attr-defined]
    if not context.require_all_edges:
        return
    missing = sorted(context.problem_edges
                     - context.executed_problem_edges())
    for edge in missing[:MISSING_EDGE_CAP]:
        yield this.diagnostic(
            f"problem edge {edge} never executed",
            logical=edge,
            hint="the compiler dropped this gate; the circuit does not "
                 "implement the program")
    if len(missing) > MISSING_EDGE_CAP:
        rest = len(missing) - MISSING_EDGE_CAP
        yield this.diagnostic(
            f"...and {rest} more problem edges never executed "
            f"({len(missing)} missing in total)",
            hint="re-run with --select RL013 after fixing the first "
                 "batch to see the remainder")


@rule("RL014", "tag-mapping-disagreement", ERROR,
      "a CPHASE's logical tag disagrees with the tracked mapping")
def check_tag_mismatch(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_tag_mismatch.rule  # type: ignore[attr-defined]
    for view in context.views:
        op = view.op
        if (op.kind != CPHASE or op.tag is None
                or view.logical_edge is None):
            continue
        tagged = canonical_edge(*op.tag)
        if tagged != view.logical_edge:
            yield this.diagnostic(
                f"cphase tag {tagged} disagrees with tracked logical "
                f"pair {view.logical_edge}",
                op_index=view.index, cycle=view.cycle,
                qubits=tuple(op.qubits), logical=view.logical_edge,
                hint="either the tag or the SWAP bookkeeping of the "
                     "producing compiler is wrong")


# ---------------------------------------------------------------------------
# RL02x — quality
# ---------------------------------------------------------------------------

@rule("RL020", "cancelling-swaps", WARNING,
      "two adjacent SWAPs on the same pair cancel to the identity")
def check_cancelling_swaps(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_cancelling_swaps.rule  # type: ignore[attr-defined]
    last_touch: Dict[int, int] = {}
    for view in context.views:
        op = view.op
        if op.kind == SWAP and not view.malformed and len(op.qubits) == 2:
            u, v = op.qubits
            prev_u = last_touch.get(u)
            prev_v = last_touch.get(v)
            if prev_u is not None and prev_u == prev_v:
                prev = context.views[prev_u].op
                if (prev.kind == SWAP
                        and canonical_edge(*prev.qubits)
                        == canonical_edge(u, v)):
                    yield this.diagnostic(
                        f"swap on {canonical_edge(u, v)} immediately "
                        f"cancels the swap at op#{prev_u}",
                        op_index=view.index, cycle=view.cycle,
                        qubits=tuple(op.qubits),
                        hint="delete both SWAPs; they compose to the "
                             "identity and waste two cycles")
        for q in op.qubits:
            last_touch[q] = view.index


@rule("RL021", "metric-mismatch", WARNING,
      "recorded metrics disagree with recomputation from the circuit")
def check_metric_mismatch(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_metric_mismatch.rule  # type: ignore[attr-defined]
    if not context.expected or context.has_malformed:
        return
    circuit = context.circuit
    recomputed: Dict[str, int] = {
        "depth": circuit.depth(),
        "swaps": circuit.swap_count,
        "ops": len(circuit),
    }
    if "cx" in context.expected:
        recomputed["cx"] = circuit.cx_count(unify=True)
    for key in sorted(recomputed):
        if key not in context.expected:
            continue
        recorded = context.expected[key]
        if recorded != recomputed[key]:
            yield this.diagnostic(
                f"recorded {key}={recorded} but the circuit recomputes "
                f"to {key}={recomputed[key]}",
                hint="the record and the circuit drifted apart; "
                     "regenerate the serialized result "
                     "(analysis.metrics.result_metrics is the ground "
                     "truth)")


@rule("RL022", "idle-heavy-schedule", INFO,
      "most mapped qubits sit idle through most cycles")
def check_idle_heavy(context: "LintContext") -> Iterator[Diagnostic]:
    this = check_idle_heavy.rule  # type: ignore[attr-defined]
    if context.has_malformed or context.n_cycles < IDLE_MIN_CYCLES:
        return
    n_mapped = min(context.initial_mapping.n_logical,
                   context.circuit.n_qubits)
    if n_mapped == 0:
        return
    idle_fractions: List[float] = [
        max(0.0, 1.0 - active / n_mapped)
        for active in context.cycle_active]
    mean_idle = sum(idle_fractions) / len(idle_fractions)
    if mean_idle > IDLE_FRACTION_THRESHOLD:
        worst = sum(1 for f in idle_fractions
                    if f > IDLE_FRACTION_THRESHOLD)
        yield this.diagnostic(
            f"{mean_idle:.0%} of mapped-qubit cycles are idle on "
            f"average ({worst}/{context.n_cycles} cycles exceed "
            f"{IDLE_FRACTION_THRESHOLD:.0%} idle)",
            hint="the schedule serialises work that could overlap; "
                 "compare against the hybrid preset's depth")
