"""Text and JSON rendering of lint reports.

Both reporters are pure functions of a :class:`~repro.lint.diagnostics.
LintReport`; the CLI, the batch engine and ``LintPass`` all share them so
a diagnostic looks the same everywhere it surfaces.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .diagnostics import LintReport

#: Version stamp of the JSON reporter schema.
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport, source: Optional[str] = None) -> str:
    """Human-readable rendering, one line per diagnostic.

    Example::

        fixture.json: 2 error(s), 1 warning(s), 0 info
          RL001 error   op#3 cycle 1 qubits (0, 4): cphase acts on ...
                hint: route the pair adjacent with SWAPs ...
    """
    prefix = f"{source}: " if source else ""
    lines: List[str] = [f"{prefix}{report.summary()}"]
    for diagnostic in report.diagnostics:
        lines.append(f"  {diagnostic.code} {diagnostic.severity:<7} "
                     f"{diagnostic.location()}: {diagnostic.message}")
        if diagnostic.hint:
            lines.append(f"        hint: {diagnostic.hint}")
    return "\n".join(lines)


def render_json(report: LintReport,
                source: Optional[str] = None,
                max_diagnostics: Optional[int] = None) -> Dict[str, Any]:
    """Plain-JSON rendering (the ``--format json`` / batch payload).

    ``max_diagnostics`` caps the embedded diagnostic list (batch reports
    cross process boundaries); ``truncated`` records how many were
    dropped so aggregation stays honest.
    """
    diagnostics = report.diagnostics
    truncated = 0
    if max_diagnostics is not None and len(diagnostics) > max_diagnostics:
        truncated = len(diagnostics) - max_diagnostics
        diagnostics = diagnostics[:max_diagnostics]
    payload: Dict[str, Any] = {
        "version": JSON_SCHEMA_VERSION,
        "ok": report.ok,
        "counts": report.counts(),
        "by_rule": report.by_rule(),
        "diagnostics": [d.to_dict() for d in diagnostics],
        "truncated": truncated,
    }
    if source is not None:
        payload["source"] = source
    return payload
