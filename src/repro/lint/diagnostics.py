"""Structured diagnostics for the circuit lint subsystem.

Where :func:`repro.ir.validate.validate_compiled` raises on the *first*
violation, the linter collects **every** finding in one scan as
:class:`Diagnostic` records — rule code, severity, offending op index and
cycle, the physical (and, where known, logical) qubits involved, a
message and a fix hint — aggregated into a :class:`LintReport`.  The
records are plain data so they serialise into batch reports, CI output
and ``CompiledResult.extra`` without further ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES: Tuple[str, ...] = (ERROR, WARNING, INFO)

#: Rank used to order diagnostics of equal position (errors first).
_SEVERITY_RANK: Dict[str, int] = {sev: i for i, sev in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, pinpointed to an op where possible.

    ``op_index``/``cycle`` are ``None`` for circuit-level findings (a
    problem edge that was never executed has no op to point at).
    ``qubits`` are *physical* indices; ``logical`` is the logical pair a
    CPHASE implements under the tracked mapping, when that is known.
    """

    code: str
    severity: str
    rule: str
    message: str
    op_index: Optional[int] = None
    cycle: Optional[int] = None
    qubits: Tuple[int, ...] = ()
    logical: Optional[Tuple[int, int]] = None
    hint: Optional[str] = None
    #: Program layer index when linting a layered program; ``None`` for
    #: plain single-circuit lint runs.
    layer: Optional[int] = None
    #: Source-file coordinates for *static* findings (``repro.checkers``);
    #: ``None`` for circuit lint, where ``op_index``/``cycle`` locate the
    #: finding instead.
    path: Optional[str] = None
    line: Optional[int] = None
    #: Named program entity the finding is about (a global, a fault-point
    #: site, a knob name) — used for baseline matching.
    symbol: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the batch/CLI reporter payload).

        The source-coordinate keys (``path``/``line``/``symbol``) appear
        only on static findings, so the circuit-lint payload is
        unchanged by their existence.
        """
        if self.path is not None:
            return {
                "code": self.code,
                "severity": self.severity,
                "rule": self.rule,
                "message": self.message,
                "path": self.path,
                "line": self.line,
                "symbol": self.symbol,
                "hint": self.hint,
            }
        return {
            "code": self.code,
            "severity": self.severity,
            "rule": self.rule,
            "message": self.message,
            "op_index": self.op_index,
            "cycle": self.cycle,
            "qubits": list(self.qubits),
            "logical": list(self.logical) if self.logical is not None
            else None,
            "hint": self.hint,
            "layer": self.layer,
        }

    def location(self) -> str:
        """Compact ``layer k op#i cycle c`` prefix for text rendering.

        Static findings render as the familiar ``path:line`` instead.
        """
        if self.path is not None:
            return (f"{self.path}:{self.line}" if self.line is not None
                    else self.path)
        parts: List[str] = []
        if self.layer is not None:
            parts.append(f"layer {self.layer}")
        if self.op_index is not None:
            parts.append(f"op#{self.op_index}")
        if self.cycle is not None:
            parts.append(f"cycle {self.cycle}")
        if self.qubits:
            parts.append(f"qubits {tuple(self.qubits)}")
        return " ".join(parts) if parts else "circuit"

    def sort_key(self) -> Tuple[Any, ...]:
        """Layer, then op order (circuit-level findings last), then
        severity.  Static findings sort by ``(path, line)`` instead."""
        if self.path is not None:
            return (self.path, self.line if self.line is not None else 0,
                    _SEVERITY_RANK.get(self.severity, len(SEVERITIES)),
                    self.code)
        layer = self.layer if self.layer is not None else -1
        index = self.op_index if self.op_index is not None else 1 << 30
        return (layer, index,
                _SEVERITY_RANK.get(self.severity, len(SEVERITIES)),
                self.code)


@dataclass
class LintReport:
    """Every diagnostic one lint run produced, in op order."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == INFO]

    @property
    def ok(self) -> bool:
        """True when no *error*-severity diagnostic was found."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        """``{severity: count}`` over every known severity."""
        out = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity] = out.get(diagnostic.severity, 0) + 1
        return out

    def by_rule(self) -> Dict[str, int]:
        """``{rule code: count}``, sorted by code."""
        out: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            out[diagnostic.code] = out.get(diagnostic.code, 0) + 1
        return dict(sorted(out.items()))

    def codes(self) -> Tuple[str, ...]:
        """The distinct rule codes that fired, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def summary(self) -> str:
        counts = self.counts()
        if not self.diagnostics:
            return "clean: no diagnostics"
        return (f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
                f"{counts[INFO]} info")

    def __len__(self) -> int:
        return len(self.diagnostics)
