"""Gate-scheduling sub-module of the greedy component — Section 6.2.

"Each hardware-compliant gate is a node.  Each edge represents if they
share a qubit or if they have non-trivial crosstalk.  Then we try to color
the graph and choose the color that has maximal number of gates."

Greedy colouring is used (the classic linear-time heuristic); with no
noise model only qubit-sharing conflicts exist and the result degenerates
to a maximal independent set of gates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.noise import NoiseModel
from ..ir.gates import canonical_edge

#: (physical u, physical v, logical pair) for a hardware-compliant gate.
ExecutableGate = Tuple[int, int, Tuple[int, int]]


def select_gates(
    executable: Sequence[ExecutableGate],
    noise: Optional[NoiseModel] = None,
    crosstalk_aware: bool = True,
) -> List[ExecutableGate]:
    """Choose a conflict-free subset of gates for this cycle.

    Conflicts: shared qubits always; crosstalk pairs when a noise model is
    supplied and ``crosstalk_aware``.  The largest colour class of a greedy
    colouring is returned.
    """
    if not executable:
        return []
    n = len(executable)
    conflicts: List[List[int]] = [[] for _ in range(n)]
    qubit_users: Dict[int, List[int]] = {}
    for index, (u, v, _) in enumerate(executable):
        for q in (u, v):
            for other in qubit_users.get(q, ()):
                conflicts[index].append(other)
                conflicts[other].append(index)
            qubit_users.setdefault(q, []).append(index)
    if noise is not None and crosstalk_aware:
        pairs = noise.crosstalk_pairs
        for i in range(n):
            ei = canonical_edge(executable[i][0], executable[i][1])
            for j in range(i + 1, n):
                ej = canonical_edge(executable[j][0], executable[j][1])
                if tuple(sorted((ei, ej))) in pairs:
                    conflicts[i].append(j)
                    conflicts[j].append(i)

    if not any(conflicts):
        # Conflict-free cycle: every gate lands in colour 0 and the
        # single colour class is returned whole, in input order.
        return list(executable)

    # Greedy colouring in decreasing-conflict order.
    order = sorted(range(n), key=lambda i: -len(conflicts[i]))
    colour: Dict[int, int] = {}
    for node in order:
        taken = {colour[other] for other in conflicts[node]
                 if other in colour}
        c = 0
        while c in taken:
            c += 1
        colour[node] = c

    classes: Dict[int, List[int]] = {}
    for node, c in colour.items():
        classes.setdefault(c, []).append(node)
    best = max(classes.values(), key=len)
    return [executable[i] for i in sorted(best)]
