"""SWAP-insertion sub-module of the greedy component — Section 6.2.

For each idle coupling we score the SWAP by how much closer it brings
logical qubits to their nearest pending gate partners, weighted by the
link's CX error when a noise model is present (Factor III, Section 5.3):
low-error links are preferred, characterising hardware variability exactly
as the paper's minimum-weight-perfect-matching formulation does.

Matching modes:

* ``"greedy"`` (default) — sort candidates by weight, take a maximal
  disjoint set; linear-time, used for large devices.
* ``"exact"`` — maximum-weight matching via networkx (the paper's MWPM on
  the benefit-weighted graph); cubic, fine below a few hundred qubits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..arch.coupling import CouplingGraph
from ..arch.noise import NoiseModel
from ..ir.mapping import Mapping

SwapCandidate = Tuple[float, int, int]  # (weight, physical u, physical v)


class _PartnerCache:
    """Per-cycle cache of each logical qubit's partner positions.

    Positions only change between cycles (or when the caller applies trial
    swaps, which invalidates explicitly), so the numpy gather per qubit is
    built once per cycle instead of once per candidate evaluation.
    """

    __slots__ = ("mapping", "pending", "_positions")

    def __init__(self, mapping: Mapping,
                 pending: Dict[int, Set[int]]) -> None:
        self.mapping = mapping
        self.pending = pending
        self._positions: Dict[int, Optional[np.ndarray]] = {}

    def partner_positions(self, logical: int) -> Optional[np.ndarray]:
        if logical in self._positions:
            return self._positions[logical]
        partners = self.pending.get(logical)
        if not partners:
            positions = None
        else:
            log_to_phys = self.mapping.log_to_phys
            positions = np.fromiter(
                (log_to_phys[p] for p in partners), dtype=np.int64,
                count=len(partners))
        self._positions[logical] = positions
        return positions

    def invalidate(self, moved_logical: int) -> None:
        """Forget entries that reference a moved qubit's position."""
        self._positions.pop(moved_logical, None)
        for partner in self.pending.get(moved_logical, ()):
            self._positions.pop(partner, None)


def swap_benefit(
    u: int,
    v: int,
    coupling: CouplingGraph,
    mapping: Mapping,
    pending: Dict[int, Set[int]],
    cache: Optional[_PartnerCache] = None,
) -> float:
    """Distance improvement of swapping (u, v), by nearest pending partner."""
    dist = coupling.distance_matrix
    if cache is None:
        cache = _PartnerCache(mapping, pending)
    benefit = 0.0
    for here, there in ((u, v), (v, u)):
        logical = mapping.logical(here)
        if logical is None:
            continue
        positions = cache.partner_positions(logical)
        if positions is None:
            continue
        benefit += int(dist[here, positions].min())
        benefit -= int(dist[there, positions].min())
    return benefit


def _link_factor(u: int, v: int, noise: Optional[NoiseModel]) -> float:
    if noise is None:
        return 1.0
    # A SWAP costs 3 CX on this link; discount by its success rate.
    return (1.0 - noise.edge_error(u, v)) ** 3


def select_swaps(
    coupling: CouplingGraph,
    mapping: Mapping,
    pending: Dict[int, Set[int]],
    busy: Set[int],
    noise: Optional[NoiseModel] = None,
    matching: str = "greedy",
    fast=None,
) -> List[Tuple[int, int]]:
    """Pick a disjoint set of beneficial SWAPs on idle qubits.

    Swaps are committed *sequentially* against a scratch mapping so that
    later choices see the effect of earlier ones.  Without this, the two
    endpoints of a distant pending pair can each swap towards the other's
    old position every cycle and orbit forever.

    ``fast`` is an optional :class:`repro.compiler.fastpath.GreedyFastPath`
    kept in lockstep by the caller; when present the candidate scan is a
    vectorized, byte-identical replica of the scalar loop below.
    """
    if fast is not None:
        candidates = fast.swap_candidates(busy)
    else:
        candidates = []
        cache = _PartnerCache(mapping, pending)
        for u, v in coupling.edges:
            if u in busy or v in busy:
                continue
            benefit = swap_benefit(u, v, coupling, mapping, pending, cache)
            if benefit <= 0:
                continue
            candidates.append((benefit * _link_factor(u, v, noise), u, v))

    if not candidates:
        return []
    if matching == "exact":
        chosen = _exact_matching(candidates)
    else:
        chosen = _greedy_matching(candidates)
    return _sequential_filter(chosen, coupling, mapping, pending, noise)


def _sequential_filter(
    swaps: List[Tuple[int, int]],
    coupling: CouplingGraph,
    mapping: Mapping,
    pending: Dict[int, Set[int]],
    noise: Optional[NoiseModel],
) -> List[Tuple[int, int]]:
    """Re-validate each swap against the cumulative effect of earlier ones."""
    scratch = mapping.copy()
    cache = _PartnerCache(scratch, pending)
    kept: List[Tuple[int, int]] = []
    for u, v in swaps:
        if swap_benefit(u, v, coupling, scratch, pending, cache) > 0:
            kept.append((u, v))
            lu, lv = scratch.logical(u), scratch.logical(v)
            scratch.swap_physical(u, v)
            for moved in (lu, lv):
                if moved is not None:
                    cache.invalidate(moved)
    return kept


def _greedy_matching(candidates: Sequence[SwapCandidate]
                     ) -> List[Tuple[int, int]]:
    chosen: List[Tuple[int, int]] = []
    used: Set[int] = set()
    for weight, u, v in sorted(candidates, key=lambda c: (-c[0], c[1], c[2])):
        if u in used or v in used:
            continue
        chosen.append((u, v))
        used.add(u)
        used.add(v)
    return chosen


def _exact_matching(candidates: Sequence[SwapCandidate]
                    ) -> List[Tuple[int, int]]:
    import networkx as nx

    graph = nx.Graph()
    for weight, u, v in candidates:
        graph.add_edge(u, v, weight=weight)
    matching = nx.max_weight_matching(graph)
    return [tuple(sorted(edge)) for edge in sorted(map(sorted, matching))]
