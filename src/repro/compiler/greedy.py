"""The greedy processing component — Section 6.2 and Fig 18.

Iteratively schedules hardware-compliant candidate gates (graph-colouring
selection) and inserts beneficial SWAPs on idle qubits (error-weighted
matching), recording a snapshot whenever the qubit mapping changes so the
ATA-prediction component can later splice a structured suffix at any point
(Section 6.3).

A forced-progress rule guarantees termination: if a cycle schedules no gate
and finds no beneficial SWAP, the closest pending pair is moved one step
along its shortest path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..arch.noise import NoiseModel
from ..exceptions import CompilationError
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph
from .fastpath import GreedyFastPath
from .scheduling import select_gates
from .swap_insertion import select_swaps


@dataclass
class Snapshot:
    """Compilation state right after a mapping change (cycle boundary)."""

    cycle: int
    op_count: int
    mapping: Mapping
    remaining: frozenset


@dataclass
class GreedyTrace:
    """Full output of the greedy engine, snapshots included."""

    circuit: Circuit
    initial_mapping: Mapping
    final_mapping: Mapping
    snapshots: List[Snapshot] = field(default_factory=list)
    cycles: int = 0
    wall_time_s: float = 0.0
    remaining: frozenset = frozenset()


def greedy_compile(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    initial_mapping: Mapping,
    noise: Optional[NoiseModel] = None,
    gamma: float = 0.0,
    matching: str = "greedy",
    crosstalk_aware: bool = True,
    record_snapshots: bool = True,
    max_cycles: Optional[int] = None,
    unify_swaps: bool = False,
    gate_selection: str = "color",
) -> GreedyTrace:
    """Run the pure greedy scheduler to completion.

    With ``max_cycles`` the loop stops early and leaves the remainder in the
    last snapshot — the hybrid framework then finishes with the ATA suffix.

    ``unify_swaps`` enables the 2QAN-style optimisation: when an inserted
    SWAP's pair still has a pending gate, the gate is emitted immediately
    before the SWAP so the decomposer fuses them into 3 CX.

    ``gate_selection`` — ``"color"`` uses the crosstalk-aware colouring
    scheduler (the paper's design); ``"greedy"`` schedules executable gates
    first-come (used by baselines without that machinery).
    """
    start = time.perf_counter()
    mapping = initial_mapping.copy()
    circuit = Circuit(coupling.n_qubits)

    pending: Dict[int, Set[int]] = {}
    remaining: Set[Tuple[int, int]] = set()
    for u, v in problem.edges:
        pair = canonical_edge(u, v)
        remaining.add(pair)
        pending.setdefault(u, set()).add(v)
        pending.setdefault(v, set()).add(u)

    # Numpy mirrors of (mapping, remaining, pending): the per-cycle
    # executable and SWAP-candidate scans run vectorized but produce
    # byte-identical results to the scalar loops they replace.
    fast = GreedyFastPath(coupling, problem, mapping, noise)

    trace = GreedyTrace(circuit=circuit, initial_mapping=initial_mapping,
                        final_mapping=mapping)
    if record_snapshots:
        trace.snapshots.append(Snapshot(0, 0, mapping.copy(),
                                        frozenset(remaining)))

    cycle = 0
    # Absolute bound against pathological swap oscillation; on hitting it
    # the remainder is finished by plain shortest-path routing.
    hard_limit = 50 * coupling.n_qubits + 4 * len(problem.edges) + 100
    while remaining:
        if max_cycles is not None and cycle >= max_cycles:
            break
        if cycle >= hard_limit:
            from ..ata.executor import greedy_completion

            greedy_completion(coupling, circuit, mapping, remaining, gamma)
            break
        cycle += 1

        executable = fast.executable()
        if gate_selection == "color":
            scheduled = select_gates(executable, noise=noise,
                                     crosstalk_aware=crosstalk_aware)
        else:
            scheduled = _first_come(executable)

        busy: Set[int] = set()
        for u, v, pair in scheduled:
            circuit.append(Op.cphase(u, v, gamma, tag=pair))
            remaining.discard(pair)
            fast.mark_done(pair)
            a, b = pair
            pending[a].discard(b)
            pending[b].discard(a)
            busy.add(u)
            busy.add(v)

        if not remaining:
            break

        swaps = select_swaps(coupling, mapping, pending, busy,
                             noise=noise, matching=matching, fast=fast)
        if not scheduled and not swaps:
            swaps = [_forced_step(coupling, mapping, remaining)]
        for u, v in swaps:
            if unify_swaps:
                lu, lv = mapping.logical(u), mapping.logical(v)
                if lu is not None and lv is not None:
                    pair = canonical_edge(lu, lv)
                    if pair in remaining:
                        circuit.append(Op.cphase(u, v, gamma, tag=pair))
                        remaining.discard(pair)
                        fast.mark_done(pair)
                        pending[pair[0]].discard(pair[1])
                        pending[pair[1]].discard(pair[0])
            circuit.append(Op.swap(u, v))
            mapping.swap_physical(u, v)
            fast.swap(u, v)
        if swaps and record_snapshots:
            trace.snapshots.append(Snapshot(cycle, len(circuit),
                                            mapping.copy(),
                                            frozenset(remaining)))

    if remaining and record_snapshots:
        # Terminal snapshot so the hybrid framework can splice an ATA
        # suffix after a capped greedy run.
        trace.snapshots.append(Snapshot(cycle, len(circuit), mapping.copy(),
                                        frozenset(remaining)))
    trace.final_mapping = mapping
    trace.cycles = cycle
    trace.wall_time_s = time.perf_counter() - start
    if max_cycles is None and remaining:
        raise CompilationError("greedy engine stalled with remaining gates")
    # Expose the unfinished remainder (empty on full runs).
    trace.remaining = frozenset(remaining)
    return trace


def _first_come(executable):
    chosen = []
    used: Set[int] = set()
    for u, v, pair in executable:
        if u in used or v in used:
            continue
        chosen.append((u, v, pair))
        used.add(u)
        used.add(v)
    return chosen


def _forced_step(
    coupling: CouplingGraph,
    mapping: Mapping,
    remaining: Set[Tuple[int, int]],
) -> Tuple[int, int]:
    """Move the closest pending pair one step together (progress guarantee)."""
    dist = coupling.distance_matrix
    # Tie-break equal distances by the pair itself: `remaining` is a set,
    # so min() over the raw distance would pick whichever equally-close
    # pair hash order surfaced first.
    best_pair = min(
        remaining,
        key=lambda pair: (int(dist[mapping.physical(pair[0]),
                                   mapping.physical(pair[1])]), pair))
    pu = mapping.physical(best_pair[0])
    pv = mapping.physical(best_pair[1])
    path = coupling.shortest_path(pu, pv)
    return (path[0], path[1])
