"""Compilation result container shared by the compiler and all baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..arch.coupling import CouplingGraph
from ..arch.noise import NoiseModel
from ..ir.circuit import Circuit
from ..ir.mapping import Mapping
from ..ir.program import Program
from ..ir.validate import (ValidationReport, validate_compiled,
                           validate_program)
from ..problems.graphs import ProblemGraph


@dataclass
class CompiledResult:
    """A compiled circuit plus everything needed to check and score it.

    ``circuit`` is always the single compiled cost layer — the unit the
    golden fixtures pin byte-for-byte.  When the pipeline assembles a
    multi-layer schedule (``layers`` knob), the full p-layer artifact
    lives in ``program`` and its plain-data summary in
    ``extra["program"]``.
    """

    circuit: Circuit
    initial_mapping: Mapping
    method: str
    wall_time_s: float = 0.0
    extra: dict = field(default_factory=dict)
    program: Optional[Program] = None

    def depth(self) -> int:
        return self.circuit.depth()

    def cx_count(self, unify: bool = True) -> int:
        return self.circuit.cx_count(unify=unify)

    @property
    def swap_count(self) -> int:
        return self.circuit.swap_count

    @property
    def gate_count(self) -> int:
        """Two-qubit CX count with gate unification (the paper's metric)."""
        return self.cx_count(unify=True)

    def esp(self, noise: NoiseModel) -> float:
        return noise.esp(self.circuit)

    # -- telemetry ---------------------------------------------------------

    @property
    def stage_timings(self) -> dict:
        """Per-stage wall-clock seconds recorded by ``compile_qaoa``
        (``placement``, ``pattern``, ``greedy``, ``prediction``,
        ``selection``); empty for baselines that don't report stages."""
        return self.extra.get("timings", {})

    @property
    def cache_stats(self) -> dict:
        """Hit/miss deltas of the process-local caches during this
        compilation, keyed by cache name (``distance_matrix``, ``pattern``,
        ``pattern_cycles``)."""
        return self.extra.get("cache", {})

    def to_record(self) -> dict:
        """Plain-data summary (metrics + telemetry, no circuit) safe to
        pickle across processes or dump as JSON — the batch engine's
        per-job payload."""
        return {
            "method": self.method,
            "depth": self.depth(),
            "cx": self.gate_count,
            "swaps": self.swap_count,
            "ops": len(self.circuit),
            "wall_time_s": self.wall_time_s,
            "extra": self.extra,
        }

    def validate(self, coupling: CouplingGraph,
                 problem: ProblemGraph) -> ValidationReport:
        """Semantic validation of the cost layer — and, when a
        multi-layer program is attached, of its per-layer mapping
        provenance and the even-p cancellation invariant."""
        report = validate_compiled(self.circuit, coupling.edges,
                                   self.initial_mapping, problem.edges)
        if self.program is not None and self.program.p > 1:
            validate_program(self.program)
        return report

    def summary(self) -> str:
        return (f"{self.method}: depth={self.depth()} "
                f"cx={self.gate_count} swaps={self.swap_count} "
                f"time={self.wall_time_s:.3f}s")
