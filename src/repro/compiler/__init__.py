"""The hybrid compiler — Sections 5 and 6 (Fig 18).

The algorithmic components live here (greedy engine, ATA prediction,
selector, placements); the staged workflow that composes them is the
pass pipeline in :mod:`repro.pipeline`, and :func:`compile_qaoa` is the
thin facade over its method registry.
"""

from .framework import compile_qaoa
from .greedy import GreedyTrace, Snapshot, greedy_compile
from .mapping import (degree_placement, noise_aware_placement,
                      quadratic_placement, trivial_placement)
from .prediction import ata_suffix, detect_ranges
from .result import CompiledResult
from .scheduling import select_gates
from .selector import Candidate, cost_f, make_candidate, score_candidates
from .swap_insertion import select_swaps, swap_benefit

__all__ = [
    "compile_qaoa",
    "CompiledResult",
    "greedy_compile",
    "GreedyTrace",
    "Snapshot",
    "ata_suffix",
    "detect_ranges",
    "select_gates",
    "select_swaps",
    "swap_benefit",
    "cost_f",
    "score_candidates",
    "make_candidate",
    "Candidate",
    "trivial_placement",
    "degree_placement",
    "quadratic_placement",
    "noise_aware_placement",
]
