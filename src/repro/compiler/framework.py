"""The full compiler workflow — Section 6.1 / Fig 18.

``compile_qaoa`` is the package's headline entry point.  Methods:

* ``"hybrid"`` (default) — greedy processing with snapshots at every
  mapping change, ATA-suffix candidates spliced at sampled snapshots, and
  the cost-F selector (Theorem 6.1: never worse than pure ATA).
* ``"greedy"`` — the pure greedy engine (the "greedy" bars of Fig 17).
* ``"ata"`` — rigid pattern following from the initial mapping (the
  "solver"-guided bars of Fig 17).

The paper predicts after *every* mapping change; evaluating a full ATA
suffix per snapshot is O(n) each, so we score an evenly-spaced sample
(``max_predictions``, default 24, always including the pure-ATA and
pure-greedy endpoints).  This preserves the guarantee and, in practice,
the paper's "better than the best of the two" behaviour.

Every result carries structured telemetry in ``CompiledResult.extra``:
per-stage wall-clock timings, the hit/miss deltas of the process-local
distance-matrix/pattern caches, and candidate-pool statistics.  The batch
engine (:mod:`repro.batch`) aggregates these across jobs; see
``docs/batch.md`` for the field-by-field reference.
"""

from __future__ import annotations

import time
from typing import Optional

from .._telemetry import StageTimer, cache_delta, cache_info
from ..arch.coupling import CouplingGraph
from ..arch.noise import NoiseModel
from ..ata.base import AtaPattern
from ..ata.registry import get_pattern
from ..ir.circuit import Circuit
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph
from .greedy import greedy_compile
from .mapping import (degree_placement, noise_aware_placement,
                      quadratic_placement, trivial_placement)
from .prediction import ata_suffix
from .result import CompiledResult
from .selector import make_candidate, score_candidates


def compile_qaoa(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    method: str = "hybrid",
    noise: Optional[NoiseModel] = None,
    gamma: float = 0.0,
    initial_mapping: Optional[Mapping] = None,
    placement: str = "quadratic",
    alpha: float = 0.5,
    max_predictions: int = 24,
    matching: str = "greedy",
    crosstalk_aware: bool = True,
    use_range_detection: bool = True,
    pattern: Optional[AtaPattern] = None,
    greedy_cycle_cap: Optional[int] = None,
    unify_swaps: bool = True,
) -> CompiledResult:
    """Compile a program with permutable two-qubit operators.

    Parameters mirror the framework of Fig 18; see module docstring for the
    ``method`` choices.  The returned circuit is validated in tests against
    the semantic validator for every method.
    """
    if problem.n_vertices > coupling.n_qubits:
        raise ValueError(
            f"problem has {problem.n_vertices} qubits but {coupling.name} "
            f"has only {coupling.n_qubits}")
    if max_predictions < 1:
        raise ValueError(
            f"max_predictions must be >= 1 (got {max_predictions}); 1 keeps "
            "only the pure-ATA prediction, the default 24 samples evenly")
    start = time.perf_counter()
    timer = StageTimer()
    cache_before = cache_info()
    if initial_mapping is None:
        timer.start("placement")
        if placement == "noise" and noise is not None:
            # Quality-seeded region, then refined for problem compactness.
            seed_mapping = noise_aware_placement(coupling, problem, noise)
            initial_mapping = quadratic_placement(coupling, problem,
                                                  initial=seed_mapping)
        elif placement in ("quadratic", "noise"):
            initial_mapping = quadratic_placement(coupling, problem)
        elif placement == "degree":
            initial_mapping = degree_placement(coupling, problem)
        elif placement == "trivial":
            initial_mapping = trivial_placement(coupling, problem)
        else:
            raise ValueError(f"unknown placement {placement!r}")
        timer.stop()
    if pattern is None and method in ("hybrid", "ata"):
        timer.start("pattern")
        pattern = get_pattern(coupling)
        timer.stop()

    def finalize(result: CompiledResult) -> CompiledResult:
        result.extra["timings"] = timer.timings
        result.extra["cache"] = cache_delta(cache_before, cache_info())
        return result

    if method == "ata":
        timer.start("prediction")
        circuit, _ = ata_suffix(
            coupling, pattern, initial_mapping, problem.edges, gamma=gamma,
            use_range_detection=use_range_detection)
        timer.stop()
        return finalize(CompiledResult(circuit, initial_mapping, "ata",
                                       time.perf_counter() - start))

    if method == "greedy":
        timer.start("greedy")
        trace = greedy_compile(
            coupling, problem, initial_mapping, noise=noise, gamma=gamma,
            matching=matching, crosstalk_aware=crosstalk_aware,
            record_snapshots=False, unify_swaps=unify_swaps)
        timer.stop()
        return finalize(CompiledResult(trace.circuit, initial_mapping,
                                       "greedy",
                                       time.perf_counter() - start))
    if method != "hybrid":
        raise ValueError(f"unknown method {method!r}")

    # Candidate 0: the pure ATA circuit (Theorem 6.1's cc0).  Its depth
    # also bounds how long the greedy phase may run: a greedy schedule
    # three times deeper than the structured one will never be selected.
    timer.start("prediction")
    ata_circuit, _ = ata_suffix(
        coupling, pattern, initial_mapping, problem.edges, gamma=gamma,
        use_range_detection=use_range_detection)
    timer.stop()
    ata_candidate = make_candidate("ata", ata_circuit, noise)
    if greedy_cycle_cap is None:
        greedy_cycle_cap = 3 * ata_candidate.depth + 50

    timer.start("greedy")
    trace = greedy_compile(
        coupling, problem, initial_mapping, noise=noise, gamma=gamma,
        matching=matching, crosstalk_aware=crosstalk_aware,
        record_snapshots=True, max_cycles=greedy_cycle_cap,
        unify_swaps=unify_swaps)
    timer.stop()

    candidates = [ata_candidate]
    if not trace.remaining:
        candidates.append(make_candidate("greedy", trace.circuit, noise))
    sampled = _sample(trace.snapshots, max_predictions)
    prediction_times = []
    for snapshot in sampled:
        if not snapshot.remaining or snapshot.op_count == 0:
            continue  # snapshot 0 duplicates the pure ATA candidate
        timer.start("prediction")
        prefix = Circuit(coupling.n_qubits,
                         list(trace.circuit.ops[:snapshot.op_count]))
        suffix_circuit, _ = ata_suffix(
            coupling, pattern, snapshot.mapping, snapshot.remaining,
            gamma=gamma, use_range_detection=use_range_detection,
            circuit=prefix)
        prediction_times.append(timer.stop())
        candidates.append(make_candidate(
            f"hybrid@{snapshot.cycle}", suffix_circuit, noise))

    if trace.remaining:
        norm_depth = ata_candidate.depth
        norm_gates = ata_candidate.gate_count
    else:
        norm_depth = trace.circuit.depth()
        norm_gates = trace.circuit.cx_count(unify=True)
    timer.start("selection")
    best = score_candidates(candidates, greedy_depth=norm_depth,
                            greedy_gates=norm_gates, alpha=alpha)
    timer.stop()
    result = CompiledResult(best.circuit, initial_mapping, "hybrid",
                            time.perf_counter() - start)
    result.extra["selected"] = best.label
    result.extra["n_candidates"] = len(candidates)
    result.extra["scores"] = {c.label: c.score for c in candidates}
    result.extra["candidates"] = {
        "count": len(candidates),
        "snapshots_total": len(trace.snapshots),
        "snapshots_sampled": len(sampled),
        "greedy_finished": not trace.remaining,
        "greedy_cycles": trace.cycles,
    }
    result.extra["prediction_times_s"] = prediction_times
    return finalize(result)


def _sample(snapshots, max_predictions: int):
    """Evenly sample snapshots, always keeping the first (pure ATA)."""
    if len(snapshots) <= max_predictions:
        return snapshots
    if max_predictions == 1:
        # A single allowed prediction keeps the pure-ATA endpoint; the
        # general formula below would divide by zero here.
        return snapshots[:1]
    step = (len(snapshots) - 1) / (max_predictions - 1)
    indices = sorted({round(i * step) for i in range(max_predictions)})
    return [snapshots[i] for i in indices]
