"""The full compiler workflow — Section 6.1 / Fig 18.

``compile_qaoa`` is the package's headline entry point.  It is a thin
facade over the pass pipeline in :mod:`repro.pipeline`: the method name
is resolved through the single method registry
(:mod:`repro.pipeline.registry`) to a preset pipeline — or to a wrapped
baseline — and the context is threaded through the passes.  Methods:

* ``"hybrid"`` (default) — greedy processing with snapshots at every
  mapping change, ATA-suffix candidates spliced at sampled snapshots, and
  the cost-F selector (Theorem 6.1: never worse than pure ATA).
* ``"greedy"`` — the pure greedy engine (the "greedy" bars of Fig 17).
* ``"ata"`` — rigid pattern following from the initial mapping (the
  "solver"-guided bars of Fig 17).
* any registered baseline name (``"sabre"``, ``"qaim"``, ``"2qan"``,
  ``"paulihedral"``, ``"olsq"``, ``"satmap"``) — the Section 7.1
  reference compilers, run through the same telemetry envelope.

The paper predicts after *every* mapping change; evaluating a full ATA
suffix per snapshot is O(n) each, so we score an evenly-spaced sample
(``max_predictions``, default 24, always including the pure-ATA and
pure-greedy endpoints).  This preserves the guarantee and, in practice,
the paper's "better than the best of the two" behaviour.

Every result carries structured telemetry in ``CompiledResult.extra``:
per-pass records (``extra["passes"]``), per-stage wall-clock timings,
the hit/miss deltas of the process-local distance-matrix/pattern caches,
and candidate-pool statistics.  The batch engine (:mod:`repro.batch`)
aggregates these across jobs; see ``docs/batch.md`` for the
field-by-field reference and ``docs/compiler.md`` for the pass table.
"""

from __future__ import annotations

from typing import Optional

from ..arch.coupling import CouplingGraph
from ..arch.noise import NoiseModel
from ..problems.graphs import ProblemGraph
from .result import CompiledResult


def compile_qaoa(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    method: str = "hybrid",
    noise: Optional[NoiseModel] = None,
    gamma: float = 0.0,
    **options,
) -> CompiledResult:
    """Compile a program with permutable two-qubit operators.

    ``method`` is resolved through the single method registry
    (:func:`repro.pipeline.registry.get_method`); an unknown name raises
    ``ValueError`` listing every registered method.  ``options`` are the
    method's knobs — for the paper methods: ``initial_mapping``,
    ``placement`` (``"quadratic"`` default, ``"degree"``, ``"trivial"``,
    ``"noise"``), ``alpha``, ``max_predictions``, ``matching``,
    ``crosstalk_aware``, ``use_range_detection``, ``pattern``,
    ``greedy_cycle_cap`` and ``unify_swaps``; for baselines, the keyword
    arguments of the underlying ``repro.baselines.compile_*`` function.
    Pass ``on_pass_end=callback`` to observe each pipeline pass as it
    finishes.

    Every method additionally understands the program-assembly knobs
    ``layers`` (p, default 1), ``mixer`` (``"rx"`` / ``"none"``) and the
    optional per-layer angle schedules ``gammas`` / ``betas``: the
    compiled cost layer is assembled into a p-layer
    :class:`~repro.ir.program.Program` (odd layers replay the compiled
    layer in reversed op order so the net qubit permutation cancels
    pairwise), attached as ``CompiledResult.program`` with summary
    telemetry in ``extra["program"]``.  ``CompiledResult.circuit`` is
    always the single cost layer, byte-identical across ``layers``
    values.

    The returned circuit is validated in tests against the semantic
    validator for every method.
    """
    from ..pipeline.registry import get_method

    on_pass_end = options.pop("on_pass_end", None)
    return get_method(method).compile(coupling, problem, noise=noise,
                                      gamma=gamma, on_pass_end=on_pass_end,
                                      **options)


def _sample(snapshots, max_predictions: int):
    """Back-compat alias for :func:`repro.pipeline.prediction.sample_snapshots`."""
    from ..pipeline.prediction import sample_snapshots

    return sample_snapshots(snapshots, max_predictions)
