"""Numpy state mirrors for the greedy engine's per-cycle scans.

The greedy scheduler's two inner loops — the hardware-compliant gate scan
and the SWAP-candidate scoring — are O(edges) Python loops with per-edge
set membership and per-qubit numpy gathers.  At the paper's 1024-qubit
scale (Section 7) they dominate compile time.  :class:`GreedyFastPath`
maintains flat numpy mirrors of the mutable compilation state and
answers both scans with vectorized gathers instead:

* ``p2l`` / ``l2p`` — the mapping, with ``-1`` / a sentinel index for
  spare physical qubits so every gather stays branch-free;
* ``rem`` — a boolean matrix of the still-pending logical pairs;
* a fixed-width partner matrix padded with a sentinel logical qubit
  whose "position" is a virtual node at distance ``BIG`` from
  everything, so nearest-pending-partner minima never need masking.

Byte-identity is a hard contract (the golden fixtures pin it): the edge
list is captured **once** from ``coupling.edges`` — per-cycle results
are produced in exactly the order the Python loops iterated that same
frozenset — benefits are computed in integer arithmetic identical to
the scalar :func:`repro.compiler.swap_insertion.swap_benefit`, and the
error-weight factors are precomputed with the *scalar* link-factor
function so no float operation is re-associated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..arch.coupling import CouplingGraph
from ..arch.noise import NoiseModel
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph
from .swap_insertion import SwapCandidate, _link_factor

#: Farther than any real device distance (device distances are int32).
BIG = np.int64(1) << 40


class GreedyFastPath:
    """Vectorized executable-gate and SWAP-benefit scans for one run.

    The instance must be kept in lockstep with the engine's mutable
    state: call :meth:`mark_done` whenever a pending pair is emitted and
    :meth:`swap` whenever the mapping changes.
    """

    def __init__(self, coupling: CouplingGraph, problem: ProblemGraph,
                 mapping: Mapping,
                 noise: Optional[NoiseModel] = None) -> None:
        n_log = mapping.n_logical
        n_phys = coupling.n_qubits
        self.n_log = n_log
        self.n_phys = n_phys

        # Edge order is captured once; `coupling.edges` is a frozenset,
        # so per-cycle iteration in the scalar loops always replayed this
        # exact order.
        edge_list = list(coupling.edges)
        self.edge_list = edge_list
        self.edges_u = np.fromiter((e[0] for e in edge_list),
                                   dtype=np.int64, count=len(edge_list))
        self.edges_v = np.fromiter((e[1] for e in edge_list),
                                   dtype=np.int64, count=len(edge_list))
        # Scalar link factors (identical floats to the per-call path).
        self.link_factor = np.fromiter(
            (_link_factor(u, v, noise) for u, v in edge_list),
            dtype=np.float64, count=len(edge_list))

        # Distance matrix extended by a virtual node at distance BIG;
        # the sentinel logical qubit "lives" there, so min() over a
        # padded partner row never sees a spurious small distance.
        dist = coupling.distance_matrix
        self.dist_ext = np.full((n_phys + 1, n_phys + 1), BIG,
                                dtype=np.int64)
        self.dist_ext[:n_phys, :n_phys] = dist

        # Mapping mirrors.  l2p has one extra slot: the sentinel logical
        # qubit n_log sits on the virtual physical node n_phys.
        self.p2l = np.full(n_phys, -1, dtype=np.int64)
        self.l2p = np.full(n_log + 1, n_phys, dtype=np.int64)
        for logical, physical in enumerate(mapping.log_to_phys):
            self.p2l[physical] = logical
            self.l2p[logical] = physical

        # Pending pairs as a symmetric boolean matrix plus a fixed-width
        # partner matrix (row n_log is the all-sentinel row that -1
        # physical qubits resolve to).
        self.rem = np.zeros((n_log, n_log), dtype=bool)
        adjacency: List[List[int]] = [[] for _ in range(n_log)]
        for a, b in problem.edges:
            self.rem[a, b] = True
            self.rem[b, a] = True
            adjacency[a].append(b)
            adjacency[b].append(a)
        width = max(1, max((len(row) for row in adjacency), default=1))
        self.partners = np.full((n_log + 1, width), n_log, dtype=np.int64)
        self.partner_count = np.zeros(n_log + 1, dtype=np.int64)
        for logical, row in enumerate(adjacency):
            self.partners[logical, :len(row)] = row
            self.partner_count[logical] = len(row)

    # -- state updates ------------------------------------------------------

    def mark_done(self, pair: Tuple[int, int]) -> None:
        """A pending pair was emitted: clear it from both mirrors."""
        a, b = pair
        self.rem[a, b] = False
        self.rem[b, a] = False
        for q, partner in ((a, b), (b, a)):
            row = self.partners[q]
            count = int(self.partner_count[q])
            index = int(np.nonzero(row[:count] == partner)[0][0])
            count -= 1
            row[index] = row[count]
            row[count] = self.n_log
            self.partner_count[q] = count

    def swap(self, u: int, v: int) -> None:
        """Mirror of ``Mapping.swap_physical``."""
        lu = int(self.p2l[u])
        lv = int(self.p2l[v])
        self.p2l[u] = lv
        self.p2l[v] = lu
        if lu >= 0:
            self.l2p[lu] = v
        if lv >= 0:
            self.l2p[lv] = u

    # -- per-cycle scans ----------------------------------------------------

    def executable(self) -> List[Tuple[int, int, Tuple[int, int]]]:
        """Hardware-compliant pending gates, in captured edge order."""
        lu = self.p2l[self.edges_u]
        lv = self.p2l[self.edges_v]
        valid = (lu >= 0) & (lv >= 0)
        hits = np.nonzero(valid)[0]
        if hits.size:
            hits = hits[self.rem[lu[hits], lv[hits]]]
        out = []
        edge_list = self.edge_list
        for index in hits:
            u, v = edge_list[index]
            a = int(lu[index])
            b = int(lv[index])
            out.append((u, v, (a, b) if a < b else (b, a)))
        return out

    def swap_candidates(self, busy: Set[int]) -> List[SwapCandidate]:
        """Positive-benefit SWAPs on idle links, in captured edge order.

        Integer-exact replica of the scalar loop in
        :func:`repro.compiler.swap_insertion.select_swaps`: for each idle
        edge ``(u, v)`` the benefit is the drop in
        nearest-pending-partner distance for both occupants, and the
        weight is that integer times the precomputed link factor.
        """
        busy_mask = np.zeros(self.n_phys, dtype=bool)
        if busy:
            busy_mask[list(busy)] = True
        idle = ~(busy_mask[self.edges_u] | busy_mask[self.edges_v])
        indices = np.nonzero(idle)[0]
        if not indices.size:
            return []
        us = self.edges_u[indices]
        vs = self.edges_v[indices]
        # -1 (spare qubit) resolves to the sentinel row: all partners
        # are the sentinel logical at distance BIG, contributing
        # BIG - BIG = 0 exactly as the scalar loop's `continue` does.
        lu = np.where(self.p2l[us] >= 0, self.p2l[us], self.n_log)
        lv = np.where(self.p2l[vs] >= 0, self.p2l[vs], self.n_log)
        pos_u = self.l2p[self.partners[lu]]
        pos_v = self.l2p[self.partners[lv]]
        benefit = (
            self.dist_ext[us[:, None], pos_u].min(axis=1)
            - self.dist_ext[vs[:, None], pos_u].min(axis=1)
            + self.dist_ext[vs[:, None], pos_v].min(axis=1)
            - self.dist_ext[us[:, None], pos_v].min(axis=1))
        positive = np.nonzero(benefit > 0)[0]
        if not positive.size:
            return []
        weights = (benefit[positive].astype(np.float64)
                   * self.link_factor[indices[positive]])
        return [(float(weight), int(u), int(v))
                for weight, u, v in zip(weights, us[positive],
                                        vs[positive])]


def build_pending(problem: ProblemGraph) -> Dict[int, Set[int]]:
    """The scalar pending-partner map the sequential filter still uses."""
    pending: Dict[int, Set[int]] = {}
    for u, v in problem.edges:
        pending.setdefault(u, set()).add(v)
        pending.setdefault(v, set()).add(u)
    return pending
