"""The ATA pattern-prediction component — Section 6.3.

Given the current mapping and the remaining problem edges, produce the
circuit suffix that finishes everything by following the structured ATA
pattern:

* **Range detector** — split the remaining problem graph into connected
  components, map each to the minimal structured sub-region of the
  architecture (via ``pattern.restrict``), and merge regions that overlap.
  Disjoint regions run their patterns in parallel (ASAP layering overlaps
  them automatically).
* **Pattern generator** — execute each region's pattern from the current
  mapping, skipping absent gates and stopping at the last needed one.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..ata.base import AtaPattern
from ..ata.executor import execute_pattern, greedy_completion
from ..ir.circuit import Circuit
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph


def detect_ranges(
    pattern: AtaPattern,
    mapping: Mapping,
    remaining: Iterable[Tuple[int, int]],
) -> List[Tuple[AtaPattern, Set[Tuple[int, int]]]]:
    """Regions (restricted patterns) with their edge groups, Fig 19 style."""
    remaining = list(remaining)
    if not remaining:
        return []
    components = ProblemGraph(
        1 + max(q for e in remaining for q in e), remaining
    ).connected_components()

    groups: List[Set[int]] = [set(c) for c in components]
    regions: List[AtaPattern] = [
        pattern.restrict({mapping.physical(v) for v in group})
        for group in groups]

    # Merge overlapping regions until a fixpoint.
    merged = True
    while merged:
        merged = False
        for i in range(len(regions)):
            for j in range(i + 1, len(regions)):
                if regions[i].region & regions[j].region:
                    groups[i] |= groups[j]
                    del groups[j], regions[j]
                    regions[i] = pattern.restrict(
                        {mapping.physical(v) for v in groups[i]})
                    merged = True
                    break
            if merged:
                break

    edge_groups: List[Set[Tuple[int, int]]] = []
    for group in groups:
        edge_groups.append({e for e in remaining if e[0] in group})
    return list(zip(regions, edge_groups))


def ata_suffix(
    coupling: CouplingGraph,
    pattern: AtaPattern,
    mapping: Mapping,
    remaining: Iterable[Tuple[int, int]],
    gamma: float = 0.0,
    use_range_detection: bool = True,
    circuit: Optional[Circuit] = None,
) -> Tuple[Circuit, Mapping]:
    """Finish the remaining edges by following the structured pattern.

    Returns the (possibly extended) circuit and the final mapping.  Ops for
    disjoint regions are appended sequentially; ASAP layering parallelises
    them, so the reported depth equals the max over regions.
    """
    if circuit is None:
        circuit = Circuit(coupling.n_qubits)
    mapping = mapping.copy()
    remaining = set(remaining)
    if not remaining:
        return circuit, mapping

    if use_range_detection:
        plan = detect_ranges(pattern, mapping, remaining)
    else:
        plan = [(pattern, set(remaining))]

    for region_pattern, edges in plan:
        _, region_mapping, residual = execute_pattern(
            region_pattern, mapping, edges, gamma=gamma, circuit=circuit)
        _absorb(mapping, region_mapping, region_pattern.region)
        if residual:
            greedy_completion(coupling, circuit, mapping, residual, gamma)
    return circuit, mapping


def _absorb(target: Mapping, source: Mapping, region) -> None:
    """Copy region-local occupancy changes from ``source`` into ``target``."""
    for physical in region:
        occupant = source.phys_to_log[physical]
        target.phys_to_log[physical] = occupant
        if occupant is not None:
            target.log_to_phys[occupant] = physical
