"""The ATA pattern-prediction component — Section 6.3.

Given the current mapping and the remaining problem edges, produce the
circuit suffix that finishes everything by following the structured ATA
pattern:

* **Range detector** — split the remaining problem graph into connected
  components, map each to the minimal structured sub-region of the
  architecture (via ``pattern.restrict``), and merge regions that overlap.
  Disjoint regions run their patterns in parallel (ASAP layering overlaps
  them automatically).
* **Pattern generator** — execute each region's pattern from the current
  mapping, skipping absent gates and stopping at the last needed one.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..ata.base import AtaPattern
from ..ata.executor import execute_pattern, greedy_completion
from ..ir.circuit import Circuit
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph


def detect_ranges(
    pattern: AtaPattern,
    mapping: Mapping,
    remaining: Iterable[Tuple[int, int]],
) -> List[Tuple[AtaPattern, Set[Tuple[int, int]]]]:
    """Regions (restricted patterns) with their edge groups, Fig 19 style.

    Overlapping regions are merged with a union-find sweep over a
    qubit-ownership map: each round costs O(total region qubits), merges
    every currently-overlapping cluster transitively, and re-restricts
    only clusters that actually grew.  Region bounding boxes only grow
    under union, so any overlap persists until merged — the result is
    the same least fixpoint the quadratic restart-on-every-merge loop
    computed, with final regions never re-restricted.
    """
    remaining = list(remaining)
    if not remaining:
        return []
    # Size the component graph by the true problem size, not the highest
    # index with a *pending* edge — the graphs are equivalent (isolated
    # vertices are omitted from components), but the problem's own vertex
    # count is the honest bound and cannot be invalidated by whichever
    # qubit happens to finish its edges first.
    components = ProblemGraph(
        mapping.n_logical, remaining).connected_components()

    groups: List[Set[int]] = [set(c) for c in components]
    regions: List[AtaPattern] = [
        pattern.restrict({mapping.physical(v) for v in group})
        for group in groups]

    n = len(regions)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    while True:
        owner: dict = {}
        grew: Set[int] = set()
        for i in range(n):
            if find(i) != i:
                continue
            for q in regions[i].region:
                j = find(owner.setdefault(q, i))
                if j != i:
                    # Keep the smaller original index as representative —
                    # the order the pairwise loop preserved.
                    keep, gone = (i, j) if i < j else (j, i)
                    parent[gone] = keep
                    groups[keep] |= groups[gone]
                    grew.add(keep)
                    if find(i) != i:
                        break  # region i itself was absorbed
        if not grew:
            break
        for i in sorted(grew):
            if find(i) == i:
                regions[i] = pattern.restrict(
                    {mapping.physical(v) for v in groups[i]})

    order = [i for i in range(n) if find(i) == i]
    edge_groups: List[Set[Tuple[int, int]]] = []
    for i in order:
        group = groups[i]
        edge_groups.append({e for e in remaining if e[0] in group})
    return [(regions[i], edge_group)
            for i, edge_group in zip(order, edge_groups)]


def ata_suffix(
    coupling: CouplingGraph,
    pattern: AtaPattern,
    mapping: Mapping,
    remaining: Iterable[Tuple[int, int]],
    gamma: float = 0.0,
    use_range_detection: bool = True,
    circuit: Optional[Circuit] = None,
) -> Tuple[Circuit, Mapping]:
    """Finish the remaining edges by following the structured pattern.

    Returns the (possibly extended) circuit and the final mapping.  Ops for
    disjoint regions are appended sequentially; ASAP layering parallelises
    them, so the reported depth equals the max over regions.
    """
    if circuit is None:
        circuit = Circuit(coupling.n_qubits)
    mapping = mapping.copy()
    remaining = set(remaining)
    if not remaining:
        return circuit, mapping

    if use_range_detection:
        plan = detect_ranges(pattern, mapping, remaining)
    else:
        plan = [(pattern, set(remaining))]

    for region_pattern, edges in plan:
        _, region_mapping, residual = execute_pattern(
            region_pattern, mapping, edges, gamma=gamma, circuit=circuit)
        _absorb(mapping, region_mapping, region_pattern.region)
        if residual:
            greedy_completion(coupling, circuit, mapping, residual, gamma)
    return circuit, mapping


def _absorb(target: Mapping, source: Mapping, region) -> None:
    """Copy region-local occupancy changes from ``source`` into ``target``."""
    for physical in region:
        occupant = source.phys_to_log[physical]
        target.phys_to_log[physical] = occupant
        if occupant is not None:
            target.log_to_phys[occupant] = physical
