"""Initial placement strategies."""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from ..arch.coupling import CouplingGraph
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph


def trivial_placement(coupling: CouplingGraph,
                      problem: ProblemGraph) -> Mapping:
    """Logical ``i`` on physical ``i``.

    For clique inputs every placement behaves identically (Section 4,
    Discussion), so this is the default.
    """
    return Mapping.trivial(problem.n_vertices, coupling.n_qubits)


def degree_placement(coupling: CouplingGraph,
                     problem: ProblemGraph,
                     center: Optional[int] = None) -> Mapping:
    """Place high-degree problem vertices on central, well-connected qubits.

    A BFS from the architecture's most central qubit enumerates physical
    sites from the core outwards; problem vertices are assigned in
    decreasing problem-degree order.  This mirrors the placement heuristics
    of the QAIM baseline and helps the greedy router on sparse inputs.
    """
    if center is None:
        ecc = coupling.distance_matrix.max(axis=1)
        center = int(ecc.argmin())
    order = []
    seen = {center}
    queue = deque([center])
    while queue:
        q = queue.popleft()
        order.append(q)
        for nbr in coupling.neighbors(q):
            if nbr not in seen:
                seen.add(nbr)
                queue.append(nbr)
    # Disconnected leftovers (shouldn't happen on our architectures).
    order.extend(q for q in range(coupling.n_qubits) if q not in seen)

    degrees = problem.degrees()
    by_degree = sorted(range(problem.n_vertices),
                       key=lambda v: (-degrees[v], v))
    log_to_phys = [0] * problem.n_vertices
    for physical, logical in zip(order, by_degree):
        log_to_phys[logical] = physical
    return Mapping(log_to_phys, coupling.n_qubits)


def noise_aware_placement(coupling: CouplingGraph,
                          problem: ProblemGraph,
                          noise) -> Mapping:
    """Grow a connected region of high-quality qubits (Factor III).

    Each physical qubit is scored by the mean success rate of its incident
    couplings times its readout fidelity.  Starting from the best qubit,
    the region grows by always absorbing the best-scoring frontier qubit,
    yielding a compact, well-calibrated patch; high-degree problem
    vertices are assigned first (as in :func:`degree_placement`).
    """
    def quality(q: int) -> float:
        edges = [1.0 - noise.edge_error(q, nbr)
                 for nbr in coupling.neighbors(q)]
        edge_quality = sum(edges) / len(edges) if edges else 0.0
        return edge_quality * (1.0 - noise.readout_error[q])

    scores = {q: quality(q) for q in range(coupling.n_qubits)}
    start = max(scores, key=lambda q: (scores[q], -q))
    chosen = [start]
    chosen_set = {start}
    frontier = set(coupling.neighbors(start))
    while len(chosen) < problem.n_vertices:
        if not frontier:  # disconnected leftovers
            remaining = [q for q in range(coupling.n_qubits)
                         if q not in chosen_set]
            frontier = {max(remaining, key=lambda q: scores[q])}
        best = max(frontier, key=lambda q: (scores[q], -q))
        frontier.discard(best)
        chosen.append(best)
        chosen_set.add(best)
        frontier.update(n for n in coupling.neighbors(best)
                        if n not in chosen_set)

    degrees = problem.degrees()
    by_degree = sorted(range(problem.n_vertices),
                       key=lambda v: (-degrees[v], v))
    log_to_phys = [0] * problem.n_vertices
    for physical, logical in zip(chosen, by_degree):
        log_to_phys[logical] = physical
    return Mapping(log_to_phys, coupling.n_qubits)


def quadratic_placement(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    iterations: Optional[int] = None,
    seed: int = 0,
    initial: Optional[Mapping] = None,
) -> Mapping:
    """Distance-minimising placement by pairwise-exchange local search.

    Starts from :func:`degree_placement` (or ``initial``) and hill-climbs
    on the summed physical distance over problem edges (the
    quadratic-assignment objective 2QAN introduced).  The iteration budget
    is capped so the search stays effectively linear at large scale.
    """
    rng = random.Random(seed)
    mapping = (initial.copy() if initial is not None
               else degree_placement(coupling, problem))
    # Plain nested lists: ~10x faster than numpy scalar indexing in the
    # tight hill-climbing loop below.
    dist = coupling.distance_matrix.tolist()
    n = problem.n_vertices
    if iterations is None:
        iterations = min(8 * n * n, 60_000)

    adjacency = {v: problem.neighbors(v) for v in range(n)}
    log_to_phys = mapping.log_to_phys

    def vertex_cost(v: int, position: int) -> int:
        row = dist[position]
        return sum(row[log_to_phys[w]] for w in adjacency[v])

    for _ in range(iterations):
        a = rng.randrange(n)
        pa = mapping.physical(a)
        pb = rng.choice(coupling.neighbors(pa))
        b = mapping.logical(pb)
        before = vertex_cost(a, pa) + (vertex_cost(b, pb)
                                       if b is not None else 0)
        mapping.swap_physical(pa, pb)
        after = vertex_cost(a, pb) + (vertex_cost(b, pa)
                                      if b is not None else 0)
        if after - before > 0:
            mapping.swap_physical(pa, pb)  # revert
    return mapping
