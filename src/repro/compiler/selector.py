"""Compiled-circuit selector — Section 6.4.

Each candidate is a greedy prefix (cut at a snapshot where the mapping
changed) completed by the ATA suffix.  Candidates are scored by

    F = alpha * depth / greedy_depth + (1 - alpha) * quality_term

where ``quality_term`` is ``1 - ESP^(1/gate_count)`` (one minus the
geometric-mean gate success rate) when a noise model is available, and the
gate-count ratio against the pure-greedy circuit otherwise.  Smaller is
better.  Candidate 0 is the pure ATA circuit and the last candidate is the
pure greedy circuit, so the selected circuit is never worse (in F) than
either — Theorem 6.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..arch.noise import NoiseModel
from ..ir.circuit import Circuit


@dataclass
class Candidate:
    """One scored prefix+suffix combination.

    ``circuit`` may be ``None`` for a lazily-scored candidate whose
    metrics were streamed by :mod:`repro.ata.simulate`; ``materialize``
    then rebuilds the real circuit on demand.  Only the selection
    winner is ever materialised — the losing candidates' circuits are
    never constructed at all.
    """

    label: str
    circuit: Optional[Circuit]
    depth: int
    gate_count: int
    esp: Optional[float]
    score: float = 0.0
    materialize: Optional[Callable[[], Circuit]] = None

    def realized(self) -> Circuit:
        """The candidate's circuit, materialising it if still lazy."""
        if self.circuit is None:
            if self.materialize is None:
                raise ValueError(
                    f"candidate {self.label!r} has no circuit and no "
                    "materializer")
            self.circuit = self.materialize()
        return self.circuit


def cost_f(
    depth: int,
    gate_count: int,
    greedy_depth: int,
    greedy_gates: int,
    esp: Optional[float],
    alpha: float = 0.5,
) -> float:
    """The selector cost F (smaller is better)."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    depth_term = depth / max(greedy_depth, 1)
    if esp is not None and gate_count > 0:
        quality = 1.0 - esp ** (1.0 / gate_count)
    else:
        quality = gate_count / max(greedy_gates, 1)
    return alpha * depth_term + (1.0 - alpha) * quality


def score_candidates(
    candidates: list,
    greedy_depth: int,
    greedy_gates: int,
    alpha: float = 0.5,
) -> "Candidate":
    """Attach scores and return the best candidate (stable on ties)."""
    if not candidates:
        raise ValueError("no candidates to select from")
    for candidate in candidates:
        candidate.score = cost_f(candidate.depth, candidate.gate_count,
                                 greedy_depth, greedy_gates,
                                 candidate.esp, alpha=alpha)
    return min(candidates, key=lambda c: c.score)


def make_candidate(label: str, circuit: Circuit,
                   noise: Optional[NoiseModel]) -> Candidate:
    """Measure a finished candidate circuit."""
    return Candidate(
        label=label,
        circuit=circuit,
        depth=circuit.depth(),
        gate_count=circuit.cx_count(unify=True),
        esp=noise.esp(circuit) if noise is not None else None,
    )
