"""Pipeline stage exposing the depth-optimal solver as a method.

Registering :class:`SolverPass` behind the ``optimal`` method name (see
:mod:`repro.pipeline.registry`) gives the Section 4 exact search the same
envelope as every other compiler: it batch-compiles, shows up in
``available_methods()``, and lands its search counters in
``CompiledResult.extra["solver"]`` where sweep tables and the batch
report can read them.

The solver enumerates an exponential state space — it is intended for
the paper's discovery-scale instances (≲ 8 qubits).  The ``max_nodes``
knob turns a too-large instance into a clean :class:`SolverError` rather
than an unbounded run.
"""

from __future__ import annotations

from .base import Pass
from .context import CompilationContext


class SolverPass(Pass):
    """Run the exact depth-optimal search end to end.

    Reads the instance fields plus the knobs ``max_nodes``,
    ``use_heuristic``, ``minimize_swaps``, ``strategy`` and
    ``prune_unhelpful_swaps`` (defaults match
    :func:`repro.solver.solve_depth_optimal`); writes ``context.circuit``,
    ``context.mapping`` and ``extras["solver"]`` (the optimal depth plus
    the run's :class:`~repro.solver.SolverStats` counters).
    """

    name = "solve"
    stage = "solve"

    def run(self, context: CompilationContext) -> bool:
        from ..solver import solve_depth_optimal

        result = solve_depth_optimal(
            context.coupling,
            context.problem.edges,
            initial_mapping=context.mapping,
            gamma=context.gamma,
            max_nodes=int(context.knob("max_nodes", 500_000)),
            prune_unhelpful_swaps=bool(
                context.knob("prune_unhelpful_swaps", True)),
            use_heuristic=bool(context.knob("use_heuristic", True)),
            minimize_swaps=bool(context.knob("minimize_swaps", False)),
            strategy=str(context.knob("strategy", "astar")),
        )
        context.circuit = result.circuit
        context.mapping = result.initial_mapping
        context.extras["solver"] = {
            "depth": result.depth,
            **result.stats.as_dict(),
        }
        return True
