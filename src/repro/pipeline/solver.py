"""Pipeline stage exposing the depth-optimal solver as a method.

Registering :class:`SolverPass` behind the ``optimal`` method name (see
:mod:`repro.pipeline.registry`) gives the Section 4 exact search the same
envelope as every other compiler: it batch-compiles, shows up in
``available_methods()``, and lands its search counters in
``CompiledResult.extra["solver"]`` where sweep tables and the batch
report can read them.

The solver enumerates an exponential state space — it is intended for
the paper's discovery-scale instances (≲ 8 qubits).  The ``max_nodes``
knob bounds the search; when the budget is exhausted
(:class:`~repro.exceptions.SolverExhaustedError`) the pass **degrades
gracefully** by default: it falls back to the greedy preset's passes and
tags the result with ``extra["degraded"]`` provenance instead of failing
the job.  ``fallback=None`` (or ``""``) restores the historic hard
error, which is what ``python -m repro solve`` wants.
"""

from __future__ import annotations

from .._telemetry import count_event
from ..exceptions import ResourceExhaustedError, SpecificationError
from .base import Pass
from .context import CompilationContext

#: Fallback chains the pass knows how to run when the exact search
#: exhausts its budget, keyed by the ``fallback`` knob's value.
FALLBACKS = ("greedy",)


class SolverPass(Pass):
    """Run the exact depth-optimal search end to end.

    Reads the instance fields plus the knobs ``max_nodes``,
    ``use_heuristic``, ``minimize_swaps``, ``strategy`` and
    ``prune_unhelpful_swaps`` (defaults match
    :func:`repro.solver.solve_depth_optimal`); writes ``context.circuit``,
    ``context.mapping`` and ``extras["solver"]`` (the optimal depth plus
    the run's :class:`~repro.solver.SolverStats` counters).

    **Degradation** — resource exhaustion
    (:class:`~repro.exceptions.ResourceExhaustedError`: the node budget,
    or an injected resource fault) is recoverable when the ``fallback``
    knob names a chain (default ``"greedy"``): the pass runs the greedy
    preset's placement + greedy passes inline, records
    ``extras["degraded"]`` (``method``/``fallback``/``error_type``/
    ``reason``) and counts ``resilience.fallback`` telemetry.  The
    compiled circuit is then *valid but not depth-optimal*.
    Infeasibility errors (plain ``SolverError``) still raise: no
    fallback can fix an unsatisfiable instance, and silently compiling
    something else would be worse than failing.
    """

    name = "solve"
    stage = "solve"

    def run(self, context: CompilationContext) -> bool:
        from ..solver import solve_depth_optimal

        try:
            result = solve_depth_optimal(
                context.coupling,
                context.problem.edges,
                initial_mapping=context.mapping,
                gamma=context.gamma,
                max_nodes=int(context.knob("max_nodes", 500_000)),
                prune_unhelpful_swaps=bool(
                    context.knob("prune_unhelpful_swaps", True)),
                use_heuristic=bool(context.knob("use_heuristic", True)),
                minimize_swaps=bool(context.knob("minimize_swaps", False)),
                strategy=str(context.knob("strategy", "astar")),
            )
        except ResourceExhaustedError as exc:
            fallback = context.knob("fallback", "greedy")
            if not fallback:
                raise
            if fallback not in FALLBACKS:
                raise SpecificationError(
                    f"unknown solver fallback {fallback!r}; expected "
                    f"one of {FALLBACKS} (or None to disable)") from exc
            self._degrade(context, exc, str(fallback))
            return True
        context.circuit = result.circuit
        context.mapping = result.initial_mapping
        context.extras["solver"] = {
            "depth": result.depth,
            **result.stats.as_dict(),
        }
        return True

    @staticmethod
    def _degrade(context: CompilationContext, exc: BaseException,
                 fallback: str) -> None:
        """Compile the instance with the greedy preset's passes inline.

        Runs inside this pass's ``run``, so the fallback's wall time
        lands in the ``solve`` timings bucket — the degraded path is
        still "what the optimal method cost".  The provenance record is
        written *before* the fallback runs: if greedy also fails, the
        failure report shows the job was already degraded.
        """
        from .greedy import GreedyPass
        from .placement import PlacementPass

        count_event("resilience.fallback")
        count_event(f"resilience.fallback.{fallback}")
        context.extras["degraded"] = {
            "method": "optimal",
            "fallback": fallback,
            "error_type": type(exc).__name__,
            "reason": str(exc),
        }
        # PlacementPass skips itself when the caller supplied a mapping,
        # matching the exact search's own treatment of initial_mapping.
        PlacementPass().run(context)
        GreedyPass(record_snapshots=False).run(context)
