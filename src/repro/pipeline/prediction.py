"""ATA-suffix prediction and candidate-pool passes (Sections 6.3-6.4).

``PredictionPass`` executes the structured pattern from the *initial*
mapping — the pure-ATA circuit ``cc0`` of Theorem 6.1.  ``CandidatePass``
then splices ATA suffixes onto greedy prefixes at an evenly-spaced sample
of the recorded snapshots (:func:`sample_snapshots`), building the
candidate pool the selector scores.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..ata.simulate import candidate_metrics, make_tracker
from ..compiler.prediction import ata_suffix
from ..compiler.selector import Candidate, make_candidate
from ..ir.circuit import Circuit
from .base import Pass
from .context import CompilationContext


def sample_snapshots(snapshots: Sequence, max_predictions: int) -> List:
    """Evenly sample snapshots, always keeping the first (pure ATA).

    The paper predicts after *every* mapping change; each prediction
    costs a full suffix execution, so we score an evenly-spaced sample of
    at most ``max_predictions`` snapshots, endpoints included.
    """
    if len(snapshots) <= max_predictions:
        return list(snapshots)
    if max_predictions == 1:
        # A single allowed prediction keeps the pure-ATA endpoint; the
        # general formula below would divide by zero here.
        return list(snapshots[:1])
    step = (len(snapshots) - 1) / (max_predictions - 1)
    indices = sorted({round(i * step) for i in range(max_predictions)})
    return [snapshots[i] for i in indices]


class PredictionPass(Pass):
    """Execute the full ATA pattern from the initial mapping.

    Reads ``mapping``, ``pattern`` and the ``use_range_detection`` knob.
    With ``as_result=True`` (the ``ata`` preset) the suffix circuit *is*
    the compiled circuit; otherwise (the hybrid preset) it becomes
    candidate 0 of the pool — ``cc0``, whose presence is what makes
    Theorem 6.1 hold.
    """

    name = "prediction"

    def __init__(self, as_result: bool = False) -> None:
        self.as_result = as_result

    def run(self, context: CompilationContext):
        context.require("mapping", "pattern")
        urd = context.knob("use_range_detection", True)
        if self.as_result:
            circuit, _ = ata_suffix(
                context.coupling, context.pattern, context.mapping,
                context.problem.edges, gamma=context.gamma,
                use_range_detection=urd)
            context.circuit = circuit
            return True
        # Hybrid preset: cc0 joins the pool as a lazily-materialised
        # candidate — its metrics are streamed by the simulator and the
        # circuit is only built if it wins selection.
        coupling, pattern = context.coupling, context.pattern
        mapping, gamma = context.mapping, context.gamma
        edges = context.problem.edges
        depth, gates, esp = candidate_metrics(
            coupling, pattern, mapping, edges, noise=context.noise,
            use_range_detection=urd)
        context.candidates.append(Candidate(
            label="ata", circuit=None, depth=depth, gate_count=gates,
            esp=esp,
            materialize=lambda: ata_suffix(
                coupling, pattern, mapping, edges, gamma=gamma,
                use_range_detection=urd)[0]))
        return True


class CandidatePass(Pass):
    """Build the hybrid candidate pool from the greedy trace.

    Reads ``trace`` (and ``pattern`` / ``max_predictions``); appends to
    ``candidates`` — the finished greedy circuit (when the engine
    completed within its cycle cap) plus one ``hybrid@<cycle>`` candidate
    per sampled snapshot, each a greedy prefix completed by the ATA
    suffix.  Writes the ``extra["candidates"]`` pool statistics and
    ``extra["prediction_times_s"]``.

    Shares the ``prediction`` timings bucket with ``PredictionPass``:
    both are executions of the same Section 6.3 predictor.
    """

    name = "candidates"
    stage = "prediction"

    def run(self, context: CompilationContext):
        context.require("trace", "pattern")
        trace = context.trace
        if not trace.remaining:
            context.candidates.append(
                make_candidate("greedy", trace.circuit, context.noise))
        sampled = sample_snapshots(trace.snapshots,
                                   context.knob("max_predictions", 24))
        prediction_times: List[float] = []
        coupling, pattern = context.coupling, context.pattern
        gamma = context.gamma
        urd = context.knob("use_range_detection", True)
        # One streaming walk of the greedy circuit: the tracker is fed
        # up to each sampled snapshot's op count (snapshots are in
        # emission order) and forked there, so scoring all candidates
        # costs one prefix pass plus one simulated suffix each — no
        # intermediate circuits are built.
        tracker = make_tracker(coupling.n_qubits, context.noise)
        ops = trace.circuit.ops
        fed = 0
        for snapshot in sampled:
            if not snapshot.remaining or snapshot.op_count == 0:
                continue  # snapshot 0 duplicates the pure ATA candidate
            started = time.perf_counter()
            while fed < snapshot.op_count:
                tracker.feed_op(ops[fed])
                fed += 1
            fork = tracker.copy()
            depth, gates, esp = candidate_metrics(
                coupling, pattern, snapshot.mapping, snapshot.remaining,
                noise=context.noise, use_range_detection=urd,
                prefix_tracker=fork)
            prediction_times.append(time.perf_counter() - started)
            op_count, mapping = snapshot.op_count, snapshot.mapping
            remaining = snapshot.remaining
            context.candidates.append(Candidate(
                label=f"hybrid@{snapshot.cycle}", circuit=None,
                depth=depth, gate_count=gates, esp=esp,
                materialize=lambda op_count=op_count, mapping=mapping,
                remaining=remaining: ata_suffix(
                    coupling, pattern, mapping, remaining, gamma=gamma,
                    use_range_detection=urd,
                    circuit=Circuit(coupling.n_qubits,
                                    list(ops[:op_count])))[0]))
        context.extras["candidates"] = {
            "count": len(context.candidates),
            "snapshots_total": len(trace.snapshots),
            "snapshots_sampled": len(sampled),
            "greedy_finished": not trace.remaining,
            "greedy_cycles": trace.cycles,
        }
        context.extras["prediction_times_s"] = prediction_times
        return True
