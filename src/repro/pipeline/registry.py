"""One registry for every compiler method — paper presets and baselines.

``compile_qaoa(method=...)``, the batch engine (:mod:`repro.batch`),
``analysis.run_sweep`` and the CLI all resolve method names here, so
adding a compiler is **one** :func:`register_method` call instead of
edits to five dispatch sites.

The module imports nothing from the rest of :mod:`repro` at import time:
each :class:`MethodSpec` carries a lazy runner that pulls in the preset
pipeline (or the baseline module) only when the method actually runs, so
``import repro.batch`` stays light and worker processes pay the import
cost once.

>>> from repro.pipeline.registry import get_method, available_methods
>>> available_methods()[:3]
('hybrid', 'greedy', 'ata')
>>> result = get_method("sabre").compile(coupling, problem)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import SpecificationError
from typing import Callable, Dict, FrozenSet, Tuple

#: Runner signature: ``(coupling, problem, noise, gamma, on_pass_end,
#: options) -> CompiledResult``.
MethodRunner = Callable[..., object]

#: Knob names the paper presets understand.  This is the *declared*
#: schema the CK030 static check validates pass-level knob reads
#: against; a drift-guard test pins it equal to the keys of
#: ``presets.PAPER_KNOBS`` (kept as a literal here because this module
#: must stay import-light — it cannot pull in the preset pipeline).
PAPER_KNOB_NAMES: Tuple[str, ...] = (
    "initial_mapping", "placement", "alpha", "max_predictions",
    "matching", "crosstalk_aware", "use_range_detection", "pattern",
    "greedy_cycle_cap", "unify_swaps", "allow_repeats", "layers",
    "mixer", "gammas", "betas")

#: Knobs of the depth-optimal solver method (read by ``SolverPass``).
SOLVER_KNOB_NAMES: Tuple[str, ...] = (
    "max_nodes", "prune_unhelpful_swaps", "use_heuristic",
    "minimize_swaps", "strategy", "fallback")

#: Program-assembly knobs every method accepts (``_pop_assembly``
#: forwards them to ``AssemblyPass`` for baselines and the solver).
ASSEMBLY_KNOB_NAMES: Tuple[str, ...] = ("layers", "mixer", "gammas",
                                        "betas")


@dataclass(frozen=True)
class MethodSpec:
    """A registered compiler method."""

    name: str
    #: ``"paper"`` (hybrid/greedy/ata presets), ``"baseline"``, or
    #: ``"exact"`` (the depth-optimal solver — small instances only).
    kind: str
    runner: MethodRunner = field(repr=False)
    description: str = ""
    #: Knob names this method understands.  Baseline methods forward
    #: any further keyword arguments verbatim to the wrapped compiler
    #: function; for pipeline methods this is the complete schema.
    knobs: Tuple[str, ...] = ()

    def compile(self, coupling, problem, noise=None, gamma: float = 0.0,
                on_pass_end=None, **options):
        """Compile one instance with this method.

        ``options`` are method-specific knobs (``alpha``,
        ``max_predictions``, ... for paper methods; the baseline
        function's own keyword arguments otherwise).  ``on_pass_end`` is
        the per-pass observability callback of
        :class:`repro.pipeline.base.Pipeline`.
        """
        if problem.n_vertices > coupling.n_qubits:
            raise SpecificationError(
                f"problem has {problem.n_vertices} qubits but "
                f"{coupling.name} has only {coupling.n_qubits}")
        return self.runner(coupling, problem, noise, gamma, on_pass_end,
                           options)


_REGISTRY: Dict[str, MethodSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_method(spec: MethodSpec,
                    aliases: Tuple[str, ...] = ()) -> MethodSpec:
    """Register a method (and optional alias names) for global lookup.

    Re-registering a name replaces the previous spec — deliberate, so
    downstream users can swap in an instrumented or experimental variant
    of a stock method.
    """
    _REGISTRY[spec.name] = spec
    for alias in aliases:
        _ALIASES[alias] = spec.name
    return spec


def get_method(name: str) -> MethodSpec:
    """Resolve a method name (or alias); ``ValueError`` names the valid
    set so CLI/batch error messages are actionable."""
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        raise SpecificationError(
            f"unknown compiler method {name!r}; registered methods: "
            f"{', '.join(available_methods())}") from None


def available_methods() -> Tuple[str, ...]:
    """Canonical method names, paper methods first (registration order)."""
    return tuple(_REGISTRY)


def method_table() -> Dict[str, str]:
    """``{name: description}`` for help text and docs."""
    return {name: spec.description for name, spec in _REGISTRY.items()}


def declared_knobs() -> FrozenSet[str]:
    """Union of every registered method's declared knob names.

    The CK030 static check validates each ``context.knob(...)`` read in
    a ``Pass`` subclass against this set, so a pass cannot grow a knob
    that no method exposes to callers.
    """
    names = set()
    for spec in _REGISTRY.values():
        names.update(spec.knobs)
    return frozenset(names)


# ---------------------------------------------------------------------------
# Stock registrations.
# ---------------------------------------------------------------------------

def _paper_runner(method: str) -> MethodRunner:
    def run(coupling, problem, noise, gamma, on_pass_end, options):
        from .presets import build_context, build_pipeline

        context = build_context(method, coupling, problem, noise=noise,
                                gamma=gamma, options=options)
        return build_pipeline(method, on_pass_end=on_pass_end) \
            .compile(context)
    return run


def _pop_assembly(options: Dict) -> "object":
    """Split the program-assembly knobs out of a baseline's options.

    Baseline pipelines forward ``knobs`` verbatim to the wrapped
    compiler function, so the assembly knobs must ride on the pass
    itself rather than stay in the dict.
    """
    from .assembly import AssemblyPass

    return AssemblyPass(
        layers=options.pop("layers", None),
        mixer=options.pop("mixer", None),
        gammas=options.pop("gammas", None),
        betas=options.pop("betas", None))


def _baseline_runner(name: str, loader: Callable[[], Callable],
                     forward_gamma: bool = True) -> MethodRunner:
    def run(coupling, problem, noise, gamma, on_pass_end, options):
        from .base import Pipeline
        from .baseline import BaselinePass
        from .context import CompilationContext

        options = dict(options)
        assembly = _pop_assembly(options)
        context = CompilationContext(
            coupling=coupling, problem=problem, method=name, noise=noise,
            gamma=gamma, knobs=options)
        pipeline = Pipeline(
            [BaselinePass(name, loader(), forward_gamma=forward_gamma),
             assembly],
            name=name, on_pass_end=on_pass_end)
        return pipeline.compile(context)
    return run


def _solver_runner() -> MethodRunner:
    def run(coupling, problem, noise, gamma, on_pass_end, options):
        from .base import Pipeline
        from .context import CompilationContext
        from .solver import SolverPass

        options = dict(options)
        assembly = _pop_assembly(options)
        context = CompilationContext(
            coupling=coupling, problem=problem, method="optimal",
            noise=noise, gamma=gamma, knobs=options)
        pipeline = Pipeline([SolverPass(), assembly], name="optimal",
                            on_pass_end=on_pass_end)
        return pipeline.compile(context)
    return run


def _register_stock_methods() -> None:
    for method, description in (
        ("hybrid", "greedy + ATA-suffix candidates + cost-F selector "
                   "(the paper's compiler, Fig 18)"),
        ("greedy", "pure greedy processing (Fig 17's 'greedy' bars)"),
        ("ata", "rigid structured-pattern following ('solver' bars)"),
    ):
        register_method(MethodSpec(method, "paper",
                                   _paper_runner(method), description,
                                   knobs=PAPER_KNOB_NAMES))

    def baseline(loader_name: str) -> Callable[[], Callable]:
        def load() -> Callable:
            from .. import baselines
            return getattr(baselines, loader_name)
        return load

    for name, loader_name, description, aliases in (
        ("sabre", "compile_sabre",
         "SABRE-style heuristic routing of the fixed gate order", ()),
        ("qaim", "compile_qaim",
         "QAIM-style cycle-by-cycle SWAP chasing", ()),
        ("2qan", "compile_twoqan",
         "2QAN-style quadratic placement search + unified routing",
         ("twoqan",)),
        ("paulihedral", "compile_paulihedral",
         "Paulihedral-style layer-ordered block scheduling", ()),
        ("olsq", "compile_olsq",
         "OLSQ-style exact depth-minimal search with beam fallback", ()),
        ("satmap", "compile_satmap",
         "SATMAP-style gate-count-minimising multi-restart search", ()),
    ):
        register_method(
            MethodSpec(name, "baseline",
                       _baseline_runner(name, baseline(loader_name)),
                       description, knobs=ASSEMBLY_KNOB_NAMES),
            aliases=aliases)

    register_method(
        MethodSpec("optimal", "exact", _solver_runner(),
                   "depth-optimal A*/IDA* search "
                   "(Section 4; small instances only)",
                   knobs=SOLVER_KNOB_NAMES + ASSEMBLY_KNOB_NAMES),
        aliases=("exact",))


_register_stock_methods()
