"""Composable pass-pipeline compiler core (the Fig 18 workflow as data).

The paper's staged framework — placement, pattern selection, greedy
processing, ATA-suffix prediction, cost-F selection — is expressed as
:class:`Pass` objects run by a :class:`Pipeline` over one mutable
:class:`CompilationContext`.  The pipeline owns per-pass timing,
cache-delta telemetry and the ``on_pass_end`` observability hook; the
passes own the algorithms.

* :mod:`~repro.pipeline.presets` — the declarative ``hybrid`` /
  ``greedy`` / ``ata`` pipelines behind :func:`repro.compile_qaoa`.
* :mod:`~repro.pipeline.registry` — the single method registry through
  which ``compile_qaoa``, :mod:`repro.batch`, ``analysis.run_sweep`` and
  the CLI resolve every method name, baselines included.

See ``docs/compiler.md`` for the pass table and an extension example.
"""

from .assembly import AssemblyPass, assemble_program
from .base import Pass, PassObserver, Pipeline
from .baseline import BaselinePass
from .context import CompilationContext
from .greedy import GreedyPass
from .lint import LintPass
from .placement import PatternPass, PlacementPass
from .prediction import CandidatePass, PredictionPass, sample_snapshots
from .presets import PAPER_KNOBS, PRESETS, build_context, build_pipeline
from .registry import (MethodSpec, available_methods, get_method,
                       method_table, register_method)
from .selection import SelectionPass
from .validate import ValidatePass

__all__ = [
    "CompilationContext",
    "Pass",
    "PassObserver",
    "Pipeline",
    "PlacementPass",
    "PatternPass",
    "GreedyPass",
    "PredictionPass",
    "CandidatePass",
    "SelectionPass",
    "AssemblyPass",
    "assemble_program",
    "ValidatePass",
    "LintPass",
    "BaselinePass",
    "sample_snapshots",
    "PAPER_KNOBS",
    "PRESETS",
    "build_context",
    "build_pipeline",
    "MethodSpec",
    "register_method",
    "get_method",
    "available_methods",
    "method_table",
]
