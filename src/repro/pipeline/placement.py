"""Initial-placement and pattern-selection passes (Fig 18, first row).

``PlacementPass`` turns the ``placement`` knob into an initial mapping;
``PatternPass`` resolves the architecture's structured ATA pattern
through the process-local registry cache.
"""

from __future__ import annotations

import warnings

from ..ata.registry import get_pattern
from ..exceptions import SpecificationError
from ..compiler.mapping import (degree_placement, noise_aware_placement,
                                quadratic_placement, trivial_placement)
from .base import Pass
from .context import CompilationContext


class PlacementPass(Pass):
    """Choose the initial logical->physical mapping.

    Reads ``knobs["placement"]`` (``"quadratic"`` default, ``"degree"``,
    ``"trivial"``, or ``"noise"``); writes ``context.mapping``.  Skips
    when a mapping was supplied by the caller.

    ``placement="noise"`` needs a noise model to rank qubits; without one
    it falls back to quadratic placement.  That fallback used to be
    silent — sweeps comparing "noise-aware" runs could mislabel plain
    quadratic ones — so it now emits a :class:`UserWarning` and records
    ``extra["placement_fallback"]``.
    """

    name = "placement"

    def run(self, context: CompilationContext):
        if context.mapping is not None:
            return False
        placement = context.knob("placement", "quadratic")
        coupling, problem, noise = (context.coupling, context.problem,
                                    context.noise)
        if placement == "noise" and noise is None:
            warnings.warn(
                "placement='noise' requested but no noise model was "
                "given; falling back to quadratic placement (recorded in "
                "extra['placement_fallback'])",
                UserWarning, stacklevel=2)
            context.extras["placement_fallback"] = {
                "requested": "noise",
                "used": "quadratic",
                "reason": "no noise model provided",
            }
        if placement == "noise" and noise is not None:
            # Quality-seeded region, then refined for problem compactness.
            seed_mapping = noise_aware_placement(coupling, problem, noise)
            context.mapping = quadratic_placement(coupling, problem,
                                                  initial=seed_mapping)
        elif placement in ("quadratic", "noise"):
            context.mapping = quadratic_placement(coupling, problem)
        elif placement == "degree":
            context.mapping = degree_placement(coupling, problem)
        elif placement == "trivial":
            context.mapping = trivial_placement(coupling, problem)
        else:
            raise SpecificationError(f"unknown placement {placement!r}")
        return True


class PatternPass(Pass):
    """Resolve the architecture's ATA pattern (cached per process).

    Writes ``context.pattern``; skips when the caller supplied one.
    """

    name = "pattern"

    def run(self, context: CompilationContext):
        if context.pattern is not None:
            return False
        context.pattern = get_pattern(context.coupling)
        return True
