"""In-pipeline static analysis pass.

Like :class:`~repro.pipeline.validate.ValidatePass`, ``LintPass`` is not
part of the default presets — callers append it (or pass ``lint=True``
to :func:`~repro.pipeline.presets.build_pipeline`).  Unlike the
validator it never raises by default: it records the full diagnostic
summary in ``extra["lint"]`` (counts, per-rule tallies, the first
diagnostics) and bumps the process-local ``lint.*`` event counters
(:func:`repro._telemetry.event_info`), so batch sweeps can see *every*
violation of every job instead of one exception per compilation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .._telemetry import count_event
from ..exceptions import LintError
from ..lint import lint_circuit, lint_program, render_json
from .base import Pass
from .context import CompilationContext

#: Diagnostics embedded per compilation; the counts stay exact.
MAX_EMBEDDED_DIAGNOSTICS = 25


class LintPass(Pass):
    """Run the circuit linter over the compiled circuit.

    Reads ``circuit`` and ``mapping``; writes ``extra["lint"]`` (the
    :func:`repro.lint.render_json` payload, diagnostics capped at
    :data:`MAX_EMBEDDED_DIAGNOSTICS`) and counts ``lint.runs``,
    ``lint.errors``, ``lint.warnings`` and ``lint.info`` events.

    Parameters
    ----------
    allow_repeats:
        Forwarded to the linter; ``None`` (default) reads the
        ``allow_repeats`` knob from the context, matching
        ``ValidatePass``.
    fail_on_error:
        When true, error-severity diagnostics raise
        :class:`repro.exceptions.LintError` after recording the full
        report — opt-in fail-fast with lossless diagnostics.
    select / ignore:
        Rule-code filters, as in :func:`repro.lint.lint_circuit`.
    """

    name = "lint"

    def __init__(self,
                 allow_repeats: Optional[bool] = None,
                 fail_on_error: bool = False,
                 select: Optional[Sequence[str]] = None,
                 ignore: Optional[Sequence[str]] = None) -> None:
        self.allow_repeats = allow_repeats
        self.fail_on_error = fail_on_error
        self.select = select
        self.ignore = ignore

    def run(self, context: CompilationContext) -> bool:
        context.require("circuit", "mapping")
        allow_repeats = (self.allow_repeats
                         if self.allow_repeats is not None
                         else bool(context.knob("allow_repeats", False)))
        if context.program is not None and context.program.p > 1:
            # Multi-layer schedules lint per layer (the flat circuit
            # would trip RL012 on every repeated cost layer).
            report = lint_program(
                context.program, context.coupling.edges,
                context.problem.edges, allow_repeats=allow_repeats,
                select=self.select, ignore=self.ignore)
        else:
            report = lint_circuit(
                context.circuit, context.coupling.edges, context.mapping,
                context.problem.edges, allow_repeats=allow_repeats,
                select=self.select, ignore=self.ignore)
        context.extras["lint"] = render_json(
            report, max_diagnostics=MAX_EMBEDDED_DIAGNOSTICS)
        counts = report.counts()
        count_event("lint.runs")
        count_event("lint.errors", counts["error"])
        count_event("lint.warnings", counts["warning"])
        count_event("lint.info", counts["info"])
        if self.fail_on_error and not report.ok:
            first = report.errors[0]
            raise LintError(
                f"lint found {counts['error']} error(s); first: "
                f"{first.code} at {first.location()}: {first.message}")
        return True
