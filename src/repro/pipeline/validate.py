"""Semantic-validation pass.

Not part of the default presets (callers opt in, exactly as they opted
into ``CompiledResult.validate`` before), but any pipeline can append a
``ValidatePass`` to fail the compilation — rather than a later consumer —
when the produced circuit does not implement the problem from the chosen
initial mapping.
"""

from __future__ import annotations

from typing import Optional

from ..ir.validate import validate_compiled, validate_program
from .base import Pass
from .context import CompilationContext


class ValidatePass(Pass):
    """Check the compiled circuit with the semantic validator.

    Reads ``circuit`` and ``mapping``; raises
    :class:`repro.exceptions.ValidationError` when the circuit uses a
    non-existent coupling, drops a problem gate, or applies one under the
    wrong mapping.  ``allow_repeats`` (constructor argument, falling back
    to the context's ``allow_repeats`` knob) admits clique-style patterns
    that deliberately revisit pairs.

    On success it records ``extra["validated_edges"]`` (backwards
    compatible) plus ``extra["validate"]`` with everything
    :func:`~repro.ir.validate.validate_compiled` computed: distinct edge
    count, CPHASE/SWAP tallies and the final logical-to-physical layout.
    """

    name = "validate"

    def __init__(self, allow_repeats: Optional[bool] = None) -> None:
        self.allow_repeats = allow_repeats

    def run(self, context: CompilationContext) -> bool:
        context.require("circuit", "mapping")
        allow_repeats = (self.allow_repeats
                         if self.allow_repeats is not None
                         else bool(context.knob("allow_repeats", False)))
        report = validate_compiled(context.circuit, context.coupling.edges,
                                   context.mapping, context.problem.edges,
                                   allow_repeats=allow_repeats)
        context.extras["validated_edges"] = report.n_edges
        context.extras["validate"] = {
            "n_edges": report.n_edges,
            "n_cphase": report.n_cphase,
            "n_swap": report.n_swap,
            "allow_repeats": allow_repeats,
            "final_log_to_phys": list(report.final_mapping.log_to_phys)
            if report.final_mapping is not None else None,
        }
        if context.program is not None:
            context.extras["validate"]["program"] = \
                validate_program(context.program)
        return True
