"""Semantic-validation pass.

Not part of the default presets (callers opt in, exactly as they opted
into ``CompiledResult.validate`` before), but any pipeline can append a
``ValidatePass`` to fail the compilation — rather than a later consumer —
when the produced circuit does not implement the problem from the chosen
initial mapping.
"""

from __future__ import annotations

from ..ir.validate import validate_compiled
from .base import Pass
from .context import CompilationContext


class ValidatePass(Pass):
    """Check the compiled circuit with the semantic validator.

    Reads ``circuit`` and ``mapping``; raises
    :class:`repro.exceptions.ValidationError` when the circuit uses a
    non-existent coupling, drops a problem gate, or applies one under the
    wrong mapping.  Records the number of distinct problem edges the
    validator replayed in ``extra["validated_edges"]`` on success.
    """

    name = "validate"

    def run(self, context: CompilationContext):
        context.require("circuit", "mapping")
        report = validate_compiled(context.circuit, context.coupling.edges,
                                   context.mapping, context.problem.edges)
        context.extras["validated_edges"] = report.n_edges
        return True
