"""The cost-F selection pass (Section 6.4, Theorem 6.1)."""

from __future__ import annotations

from ..compiler.selector import score_candidates
from ..exceptions import SpecificationError
from .base import Pass
from .context import CompilationContext


class SelectionPass(Pass):
    """Score the candidate pool with cost F and keep the winner.

    Reads ``candidates`` (candidate 0 must be the pure-ATA ``cc0``),
    ``trace`` and the ``alpha`` knob; writes ``context.selected`` /
    ``context.circuit`` and the ``selected`` / ``n_candidates`` /
    ``scores`` extras.  Depth and gate-count terms are normalised by the
    finished greedy circuit when the engine completed, by ``cc0``
    otherwise (the greedy prefix alone is not a complete program).
    """

    name = "selection"

    def run(self, context: CompilationContext):
        if not context.candidates:
            raise SpecificationError(
                "SelectionPass needs a non-empty candidate pool; run "
                "PredictionPass/CandidatePass first")
        context.require("trace")
        trace = context.trace
        cc0 = context.candidates[0]
        if trace.remaining:
            norm_depth = cc0.depth
            norm_gates = cc0.gate_count
        else:
            # The finished greedy circuit is candidate "greedy"; reuse
            # its already-measured metrics rather than re-walking the
            # circuit (identical values — same circuit, same measures).
            greedy = next((c for c in context.candidates
                           if c.label == "greedy"), None)
            if greedy is not None:
                norm_depth = greedy.depth
                norm_gates = greedy.gate_count
            else:
                norm_depth = trace.circuit.depth()
                norm_gates = trace.circuit.cx_count(unify=True)
        best = score_candidates(context.candidates,
                                greedy_depth=norm_depth,
                                greedy_gates=norm_gates,
                                alpha=context.knob("alpha", 0.5))
        context.selected = best
        context.circuit = best.realized()
        context.extras["selected"] = best.label
        context.extras["n_candidates"] = len(context.candidates)
        context.extras["scores"] = {c.label: c.score
                                    for c in context.candidates}
        return True
