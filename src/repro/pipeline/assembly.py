"""Program assembly: one compiled cost layer -> the full p-layer schedule.

The compiler proper (every preset, baseline and the exact solver) emits a
single permuted cost layer.  ``AssemblyPass`` turns that layer into the
:class:`~repro.ir.program.Program` a p-layer QAOA run (or a Trotterized
Hamiltonian simulation) actually executes, using the **reversed-layer
optimization**: even cost layers replay the compiled layer verbatim, odd
cost layers replay its op-reversal.  All problem gates commute and SWAP
is self-inverse, so the reversed layer implements the same logical gate
set while applying the *inverse* net permutation — the permutations
cancel pairwise, no inter-layer remapping SWAPs are ever inserted, and
after an even number of cost layers every logical qubit is back at its
initial home (measurement layout recovered for free).

``layers=1`` (the default) assembles a one-cost-layer program whose layer
circuit is the compiled circuit **object itself** — byte-identical to
today's output — so the pass is always on without disturbing any golden
fixture.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..exceptions import SpecificationError
from ..ir.circuit import Circuit
from ..ir.gates import CPHASE, SWAP, Op
from ..ir.mapping import Mapping
from ..ir.program import (ROLE_COST, ROLE_MIXER, ROLE_REVERSED_COST, Program,
                          ProgramLayer, layer_permutation, reversed_layer)
from ..problems.graphs import ProblemGraph
from .base import Pass
from .context import CompilationContext

#: Mixer kinds the assembler understands.
MIXERS = ("rx", "none")


def _reangled_layer(circuit: Circuit, ops: Sequence[Op], mapping: Mapping,
                    gamma: float, problem: Optional[ProblemGraph]
                    ) -> "tuple[Circuit, Mapping]":
    """Rebuild a cost layer with per-edge angles ``gamma * weight``.

    Walks ``ops`` from ``mapping`` (mutated in place to the layer's final
    layout) so each CPHASE's *logical* edge — hence its weight — is known
    regardless of tags.
    """
    rebuilt: List[Op] = []
    for op in ops:
        if op.kind == CPHASE:
            lu = mapping.logical(op.qubits[0])
            lv = mapping.logical(op.qubits[1])
            if lu is None or lv is None:
                raise SpecificationError(
                    f"cannot re-angle {op!r}: it touches an unoccupied "
                    f"physical qubit")
            weight = (problem.weight(lu, lv)
                      if problem is not None and problem.is_weighted
                      else 1.0)
            rebuilt.append(Op(CPHASE, op.qubits, gamma * weight, op.tag))
        else:
            if op.kind == SWAP:
                mapping.swap_physical(*op.qubits)
            rebuilt.append(op)
    return Circuit.from_ops_unchecked(circuit.n_qubits, rebuilt), mapping


def assemble_program(
    circuit: Circuit,
    initial_mapping: Mapping,
    layers: int = 1,
    mixer: str = "rx",
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    compile_gamma: float = 0.0,
    problem: Optional[ProblemGraph] = None,
    name: str = "",
) -> Program:
    """Assemble a p-layer program from one compiled cost layer.

    Parameters
    ----------
    layers:
        p, the number of cost layers (>= 1).
    mixer:
        ``"rx"`` interleaves an RX wall on every mapped physical qubit
        after each cost layer; ``"none"`` emits cost layers only (the
        Trotterization schedule).
    gammas / betas:
        Optional per-layer angles (length ``layers`` each).  When absent
        the cost layers keep the compile-time angle and mixer walls are
        emitted at angle 0 with ``param=None`` — the simulator re-angles
        at run time either way.
    compile_gamma:
        The angle the compiler stamped on every CPHASE; layers whose
        requested angle equals it (on unweighted problems) reuse the
        compiled circuit object verbatim, which is what keeps ``p=1``
        byte-identical to the single-circuit output.
    problem:
        When weighted, each CPHASE is re-angled to ``gamma_k * w(edge)``
        (weighted MaxCut).
    """
    if layers < 1:
        raise SpecificationError(f"layers must be >= 1, got {layers}")
    if mixer not in MIXERS:
        raise SpecificationError(f"unknown mixer {mixer!r}; expected one of {MIXERS}")
    if gammas is not None and len(gammas) != layers:
        raise SpecificationError(
            f"gammas has {len(gammas)} entries for {layers} cost layers")
    if betas is not None and len(betas) != layers:
        raise SpecificationError(
            f"betas has {len(betas)} entries for {layers} mixer layers")

    n_qubits = circuit.n_qubits
    weighted = problem is not None and problem.is_weighted
    program_layers: List[ProgramLayer] = []
    current = initial_mapping.copy()
    for k in range(layers):
        role = ROLE_COST if k % 2 == 0 else ROLE_REVERSED_COST
        gamma_k = gammas[k] if gammas is not None else None
        angle = gamma_k if gamma_k is not None else compile_gamma
        entry = tuple(current.log_to_phys)
        if not weighted and angle == compile_gamma:
            layer_circuit = (circuit if role == ROLE_COST
                             else reversed_layer(circuit))
            current = layer_permutation(layer_circuit, current)
        else:
            ops = list(circuit.ops)
            if role == ROLE_REVERSED_COST:
                ops.reverse()
            layer_circuit, current = _reangled_layer(
                circuit, ops, current.copy(), angle, problem)
        program_layers.append(ProgramLayer(
            role=role, circuit=layer_circuit, param=gamma_k,
            input_log_to_phys=entry,
            output_log_to_phys=tuple(current.log_to_phys)))
        if mixer == "rx":
            beta_k = betas[k] if betas is not None else None
            homes = tuple(current.log_to_phys)
            wall = Circuit.from_ops_unchecked(
                n_qubits,
                [Op.rx(phys, 2.0 * (beta_k if beta_k is not None else 0.0))
                 for phys in homes])
            program_layers.append(ProgramLayer(
                role=ROLE_MIXER, circuit=wall, param=beta_k,
                input_log_to_phys=homes, output_log_to_phys=homes))
    return Program(n_qubits, program_layers, initial_mapping, name=name)


class AssemblyPass(Pass):
    """Build the layered program after the cost layer is compiled.

    Reads the compiled circuit and initial mapping (from the context, or
    from ``baseline_result`` for wrapped baselines); writes
    ``context.program`` and the plain-data ``extras["program"]``
    telemetry.  The knobs come from constructor arguments when given
    (baseline/solver pipelines, whose ``knobs`` dict is forwarded
    verbatim to the wrapped compiler) and fall back to the context's
    ``layers`` / ``mixer`` / ``gammas`` / ``betas`` knobs (paper
    presets).
    """

    name = "assembly"

    def __init__(self,
                 layers: Optional[int] = None,
                 mixer: Optional[str] = None,
                 gammas: Optional[Sequence[float]] = None,
                 betas: Optional[Sequence[float]] = None) -> None:
        self.layers = layers
        self.mixer = mixer
        self.gammas = gammas
        self.betas = betas

    def run(self, context: CompilationContext) -> bool:
        if context.baseline_result is not None:
            circuit = context.baseline_result.circuit
            mapping = context.baseline_result.initial_mapping
        else:
            context.require("circuit", "mapping")
            circuit = context.circuit
            mapping = context.mapping
        assert circuit is not None and mapping is not None
        layers = (self.layers if self.layers is not None
                  else int(context.knob("layers", 1) or 1))
        mixer = (self.mixer if self.mixer is not None
                 else str(context.knob("mixer", "rx") or "rx"))
        gammas = (self.gammas if self.gammas is not None
                  else context.knob("gammas"))
        betas = (self.betas if self.betas is not None
                 else context.knob("betas"))
        program = assemble_program(
            circuit, mapping, layers=layers, mixer=mixer,
            gammas=gammas, betas=betas, compile_gamma=context.gamma,
            problem=context.problem,
            name=f"{context.problem.name}@{context.method}-p{layers}")
        context.program = program
        context.extras["program"] = program.telemetry()
        return True
