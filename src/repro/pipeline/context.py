"""The typed compilation state threaded through every pass.

A :class:`CompilationContext` is the single mutable object a
:class:`~repro.pipeline.base.Pipeline` hands from pass to pass: the
immutable instance description (coupling graph, problem graph, noise
model, gamma), the work-in-progress artefacts (mapping, pattern, circuit,
greedy trace, candidate pool), the method knobs, and the ``extras``
dictionary that becomes ``CompiledResult.extra`` verbatim.

Passes communicate exclusively through the context — no pass holds
per-compilation state of its own — so a pipeline preset is just an
ordered list of stateless pass objects and the same pass instances can be
reused across compilations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..arch.coupling import CouplingGraph
from ..exceptions import SpecificationError
from ..arch.noise import NoiseModel
from ..ata.base import AtaPattern
from ..compiler.greedy import GreedyTrace
from ..compiler.result import CompiledResult
from ..compiler.selector import Candidate
from ..ir.circuit import Circuit
from ..ir.mapping import Mapping
from ..ir.program import Program
from ..problems.graphs import ProblemGraph


@dataclass
class CompilationContext:
    """Everything a pass may read or write during one compilation.

    Construction-time fields describe the instance; the remaining fields
    start empty and are filled in by passes (see each pass's docstring
    for its reads/writes contract).
    """

    #: The target architecture (read-only for passes).
    coupling: CouplingGraph
    #: The permutable-operator program being compiled (read-only).
    problem: ProblemGraph
    #: Method label stamped on the final :class:`CompiledResult`.
    method: str = "hybrid"
    #: Optional noise calibration used by placement, SWAP scoring and ESP.
    noise: Optional[NoiseModel] = None
    #: The ZZ rotation angle applied to every problem gate.
    gamma: float = 0.0
    #: The *initial* logical->physical mapping.  ``PlacementPass`` fills
    #: this in when ``None``; it is never mutated afterwards (engines copy
    #: it), so it is always safe to validate the final circuit against.
    mapping: Optional[Mapping] = None
    #: The structured ATA pattern (``PatternPass``).
    pattern: Optional[AtaPattern] = None
    #: The circuit-in-progress; whichever pass runs last must leave the
    #: finished circuit here for :meth:`to_result`.
    circuit: Optional[Circuit] = None
    #: Method-specific tuning knobs (``alpha``, ``max_predictions``, ...).
    knobs: Dict[str, Any] = field(default_factory=dict)
    #: Telemetry and per-method metadata; becomes ``CompiledResult.extra``.
    extras: Dict[str, Any] = field(default_factory=dict)
    #: Output of ``GreedyPass`` (circuit, snapshots, remaining edges).
    trace: Optional[GreedyTrace] = None
    #: The scored candidate pool (``PredictionPass`` / ``CandidatePass``).
    candidates: List[Candidate] = field(default_factory=list)
    #: The winning candidate chosen by ``SelectionPass``.
    selected: Optional[Candidate] = None
    #: Set by ``BaselinePass``: the wrapped compiler's own result object,
    #: returned (with pipeline telemetry merged in) instead of building a
    #: fresh one from ``circuit``/``mapping``.
    baseline_result: Optional[CompiledResult] = None
    #: The assembled p-layer program (``AssemblyPass``); attached to the
    #: final :class:`CompiledResult` by :meth:`to_result`.
    program: Optional[Program] = None

    def knob(self, name: str, default: Any = None) -> Any:
        """A tuning knob with a default (passes never KeyError on knobs)."""
        return self.knobs.get(name, default)

    def require(self, *fields: str) -> None:
        """Assert that earlier passes produced ``fields`` (clear errors
        for mis-assembled custom pipelines)."""
        for name in fields:
            if getattr(self, name) is None:
                raise SpecificationError(
                    f"pipeline pass needs context.{name} but no earlier "
                    f"pass produced it; check the pass order")

    def to_result(self, wall_time_s: float) -> CompiledResult:
        """Package the finished context as a :class:`CompiledResult`."""
        if self.baseline_result is not None:
            result = self.baseline_result
            result.extra.update(self.extras)
            result.program = self.program
            return result
        self.require("circuit", "mapping")
        result = CompiledResult(self.circuit, self.mapping, self.method,
                                wall_time_s, program=self.program)
        result.extra.update(self.extras)
        return result
