"""Pass and Pipeline: the compiler's composable spine.

A :class:`Pass` is one stage of Fig 18's workflow — placement, pattern
selection, greedy processing, ATA-suffix prediction, cost-F selection —
expressed as a stateless object with a ``run(context)`` method.  A
:class:`Pipeline` runs an ordered list of passes over one
:class:`~repro.pipeline.context.CompilationContext` and owns all the
cross-cutting plumbing the passes themselves should not care about:

* **per-pass timing** — each pass's wall-clock seconds, recorded both in
  ``extra["passes"]`` (one entry per pass run) and aggregated into the
  legacy ``extra["timings"]`` stage buckets;
* **cache-delta capture** — the hit/miss deltas of the process-local
  distance-matrix/pattern caches (:mod:`repro._telemetry`) per pass and
  for the compilation as a whole;
* **observability** — an optional ``on_pass_end(pass_, context, record)``
  callback fired after every pass, the seam for progress reporting,
  tracing, or future async execution.

A pass that had nothing to do (e.g. placement when an initial mapping was
supplied) returns ``False`` from ``run``; it still appears in
``extra["passes"]`` with ``skipped: True`` but does not contribute a
stage-timings bucket, which keeps ``extra["timings"]`` key-compatible
with the pre-pipeline compiler.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

from .._telemetry import measure_cache_delta
from ..compiler.result import CompiledResult
from ..resilience.faults import fault_point
from .context import CompilationContext

#: Signature of the ``on_pass_end`` observability callback.
PassObserver = Callable[["Pass", CompilationContext, Dict], None]


class Pass:
    """One composable compilation stage.

    Subclasses set :attr:`name` (unique within a pipeline run, used in
    ``extra["passes"]``) and optionally :attr:`stage` (the
    ``extra["timings"]`` bucket; several passes may share one bucket, as
    the two prediction passes do) and implement :meth:`run`.
    """

    #: Identity in ``extra["passes"]`` records.
    name: str = "pass"
    #: Timings bucket; ``None`` means "same as :attr:`name`".
    stage: Optional[str] = None

    @property
    def stage_name(self) -> str:
        return self.stage or self.name

    def run(self, context: CompilationContext) -> Optional[bool]:
        """Do this stage's work by mutating ``context``.

        Return ``False`` to mark the pass as skipped (recorded, but no
        stage-timings contribution); any other return value means the
        pass did real work.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Pipeline:
    """An ordered list of passes plus the telemetry plumbing around them."""

    def __init__(
        self,
        passes: Iterable[Pass],
        name: str = "",
        on_pass_end: Optional[PassObserver] = None,
    ) -> None:
        self.passes: List[Pass] = list(passes)
        self.name = name
        self.on_pass_end = on_pass_end

    def run(self, context: CompilationContext) -> CompilationContext:
        """Run every pass in order, recording per-pass telemetry.

        Appends one record per pass to ``context.extras["passes"]``
        (``name`` / ``wall_s`` / ``cache`` / ``skipped``) and accumulates
        non-skipped wall time into ``context.extras["timings"]`` under
        each pass's stage bucket.
        """
        records = context.extras.setdefault("passes", [])
        timings = context.extras.setdefault("timings", {})
        for pass_ in self.passes:
            fault_point("pipeline.pass", pass_.name)
            started = time.perf_counter()
            with measure_cache_delta() as scope:
                outcome = pass_.run(context)
            wall_s = time.perf_counter() - started
            skipped = outcome is False
            record = {
                "name": pass_.name,
                "wall_s": wall_s,
                "cache": scope.delta(),
                "skipped": skipped,
            }
            records.append(record)
            if not skipped:
                bucket = pass_.stage_name
                timings[bucket] = timings.get(bucket, 0.0) + wall_s
            if self.on_pass_end is not None:
                self.on_pass_end(pass_, context, record)
        return context

    def compile(self, context: CompilationContext) -> CompiledResult:
        """Run the pipeline and package the context as a result.

        The whole-compilation cache delta lands in ``extra["cache"]``
        (the pre-pipeline compiler's field); per-pass deltas are inside
        ``extra["passes"]``.
        """
        started = time.perf_counter()
        with measure_cache_delta() as scope:
            self.run(context)
        context.extras["cache"] = scope.delta()
        return context.to_result(time.perf_counter() - started)

    def __repr__(self) -> str:
        stages = ", ".join(p.name for p in self.passes)
        return f"Pipeline({self.name!r}: {stages})"
