"""Declarative pipeline presets for the paper's three methods.

Each preset is a tuple of pass factories — the Fig 18 workflow spelled
out as data rather than control flow:

* ``hybrid`` — placement, pattern, pure-ATA prediction (``cc0``), greedy
  with snapshots, per-snapshot candidates, cost-F selection;
* ``greedy`` — placement, greedy to completion;
* ``ata`` — placement, pattern, rigid pattern execution.

:func:`build_context` validates the caller's knobs against
:data:`PAPER_KNOBS` (an unknown keyword raises ``TypeError``, matching
the old explicit-signature behaviour) and :func:`build_pipeline` turns a
preset name into a runnable :class:`~repro.pipeline.base.Pipeline`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..exceptions import SpecificationError, UnknownKnobError
from .assembly import AssemblyPass
from .base import Pass, PassObserver, Pipeline
from .context import CompilationContext
from .greedy import GreedyPass
from .placement import PatternPass, PlacementPass
from .prediction import CandidatePass, PredictionPass
from .selection import SelectionPass
from .validate import ValidatePass

#: Every knob the paper methods understand, with its default.  The two
#: ``None``-defaulted object knobs (``initial_mapping``, ``pattern``)
#: seed context *fields* rather than staying in ``knobs``.
PAPER_KNOBS: Dict[str, object] = {
    "initial_mapping": None,
    "placement": "quadratic",
    "alpha": 0.5,
    "max_predictions": 24,
    "matching": "greedy",
    "crosstalk_aware": True,
    "use_range_detection": True,
    "pattern": None,
    "greedy_cycle_cap": None,
    "unify_swaps": True,
    "allow_repeats": False,
    "layers": 1,
    "mixer": "rx",
    "gammas": None,
    "betas": None,
}

#: Pass factories per method, in execution order.  Every preset ends
#: with ``AssemblyPass``, which turns the compiled cost layer into the
#: p-layer :class:`~repro.ir.program.Program` (``layers=1`` reuses the
#: compiled circuit object, so single-layer output is untouched).
PRESETS: Dict[str, Tuple[Callable[[], Pass], ...]] = {
    "hybrid": (PlacementPass, PatternPass, PredictionPass,
               lambda: GreedyPass(record_snapshots=True),
               CandidatePass, SelectionPass, AssemblyPass),
    "greedy": (PlacementPass, GreedyPass, AssemblyPass),
    "ata": (PlacementPass, PatternPass,
            lambda: PredictionPass(as_result=True), AssemblyPass),
}


def build_context(
    method: str,
    coupling,
    problem,
    noise=None,
    gamma: float = 0.0,
    options: Optional[Dict[str, object]] = None,
) -> CompilationContext:
    """A validated context for one paper-method compilation."""
    options = dict(options or {})
    unknown = sorted(set(options) - set(PAPER_KNOBS))
    if unknown:
        raise UnknownKnobError(
            f"compile_qaoa() got unexpected keyword argument(s) "
            f"{', '.join(map(repr, unknown))} for method {method!r}")
    knobs = {**PAPER_KNOBS, **options}
    max_predictions = knobs["max_predictions"]
    if max_predictions < 1:
        raise SpecificationError(
            f"max_predictions must be >= 1 (got {max_predictions}); 1 "
            "keeps only the pure-ATA prediction, the default 24 samples "
            "evenly")
    return CompilationContext(
        coupling=coupling, problem=problem, method=method, noise=noise,
        gamma=gamma, mapping=knobs.pop("initial_mapping"),
        pattern=knobs.pop("pattern"), knobs=knobs)


def build_pipeline(
    method: str,
    on_pass_end: Optional[PassObserver] = None,
    validate: bool = False,
    lint: bool = False,
) -> Pipeline:
    """Instantiate the preset pipeline for ``method``.

    ``validate=True`` appends a :class:`ValidatePass`, turning semantic
    violations into in-pipeline failures.  ``lint=True`` appends a
    :class:`~repro.pipeline.lint.LintPass`, which records the full
    diagnostic report in ``extra["lint"]`` without failing (combine with
    ``validate=True`` to both report and fail; the linter runs first so
    the diagnostics survive the validator's exception path only when
    passes are ordered that way — hence lint before validate).
    """
    if method not in PRESETS:
        raise SpecificationError(
            f"no pipeline preset for method {method!r}; "
            f"expected one of {tuple(PRESETS)}")
    passes = [factory() for factory in PRESETS[method]]
    if lint:
        from .lint import LintPass

        passes.append(LintPass())
    if validate:
        passes.append(ValidatePass())
    return Pipeline(passes, name=method, on_pass_end=on_pass_end)
