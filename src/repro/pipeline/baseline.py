"""Adapter pass wrapping a baseline compiler as a pipeline stage.

Every baseline in :mod:`repro.baselines` is a plain function
``fn(coupling, problem, **options) -> CompiledResult``.  Wrapping it in a
:class:`BaselinePass` and running it through a single-stage
:class:`~repro.pipeline.base.Pipeline` gives baselines the exact same
telemetry envelope as the paper methods — ``extra["passes"]``, stage
timings, whole-compilation cache deltas — which is what makes
apples-to-apples comparison tables honest about compile-time cost.
"""

from __future__ import annotations

from typing import Callable

from .base import Pass
from .context import CompilationContext


class BaselinePass(Pass):
    """Run one baseline compiler end to end.

    Reads ``knobs`` (forwarded verbatim as the baseline's keyword
    arguments) plus ``gamma``; writes ``context.baseline_result`` so the
    pipeline returns the baseline's own :class:`CompiledResult` — method
    label, wall time and any baseline-specific extras intact — with the
    pipeline telemetry merged into its ``extra``.
    """

    stage = "baseline"

    def __init__(self, method_name: str, fn: Callable,
                 forward_gamma: bool = True) -> None:
        self.name = method_name
        self.fn = fn
        self.forward_gamma = forward_gamma

    def run(self, context: CompilationContext):
        kwargs = dict(context.knobs)
        if self.forward_gamma:
            kwargs.setdefault("gamma", context.gamma)
        result = self.fn(context.coupling, context.problem, **kwargs)
        context.baseline_result = result
        context.circuit = result.circuit
        context.mapping = result.initial_mapping
        return True
