"""The greedy-processing pass (Section 6.2).

One pass wraps :func:`repro.compiler.greedy.greedy_compile` for both the
pure-greedy method (no snapshots, runs to completion, the trace circuit
is the final circuit) and the hybrid method (snapshots at every mapping
change, cycle-capped by the pure-ATA candidate's depth so a schedule the
selector could never pick is not computed in full).
"""

from __future__ import annotations

from ..compiler.greedy import greedy_compile
from .base import Pass
from .context import CompilationContext


class GreedyPass(Pass):
    """Run the greedy engine; write ``context.trace``.

    Reads ``mapping`` and the ``matching`` / ``crosstalk_aware`` /
    ``unify_swaps`` / ``greedy_cycle_cap`` knobs.  With
    ``record_snapshots=True`` (the hybrid preset) the default cycle cap
    is ``3 * depth(cc0) + 50`` where ``cc0`` is the pure-ATA candidate
    produced by the preceding ``PredictionPass`` — a greedy schedule
    three times deeper than the structured one can never win the
    selector.  Without snapshots (the greedy preset) the engine runs to
    completion and the pass also publishes ``context.circuit``.
    """

    name = "greedy"

    def __init__(self, record_snapshots: bool = False) -> None:
        self.record_snapshots = record_snapshots

    def run(self, context: CompilationContext):
        context.require("mapping")
        max_cycles = context.knob("greedy_cycle_cap")
        if (max_cycles is None and self.record_snapshots
                and context.candidates):
            max_cycles = 3 * context.candidates[0].depth + 50
        trace = greedy_compile(
            context.coupling, context.problem, context.mapping,
            noise=context.noise, gamma=context.gamma,
            matching=context.knob("matching", "greedy"),
            crosstalk_aware=context.knob("crosstalk_aware", True),
            record_snapshots=self.record_snapshots,
            max_cycles=max_cycles,
            unify_swaps=context.knob("unify_swaps", True))
        context.trace = trace
        context.extras["greedy_cycles"] = trace.cycles
        if not self.record_snapshots:
            context.circuit = trace.circuit
        return True
