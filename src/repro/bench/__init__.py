"""Benchmark trajectory persistence (schema-versioned run records).

``BENCH_*.json`` files at the repository root are *trajectories*: every
benchmark invocation appends one run record instead of overwriting the
file, so successive runs on pinned workload seeds stay comparable — the
pre-optimization baseline remains in the file next to every later run,
and acceptance gates can be expressed as "latest run vs. baseline run".
"""

from .trajectory import (SCHEMA_VERSION, append_run, baseline_run,
                         latest_run, read_trajectory)

__all__ = [
    "SCHEMA_VERSION",
    "append_run",
    "baseline_run",
    "latest_run",
    "read_trajectory",
]
