"""Append-only, schema-versioned benchmark trajectories.

A trajectory file is a JSON document::

    {
      "schema": 1,
      "benchmark": "compiler",            # stamped by the first append
      "runs": [ {run record}, ... ]       # chronological, append-only
    }

Run records are free-form dictionaries produced by the bench scripts;
:func:`append_run` stamps each with the schema version, a monotonically
increasing ``run_id``, a UTC timestamp, and the recording interpreter /
platform so records from different machines are distinguishable.

Legacy single-report files (the pre-trajectory format of
``BENCH_solver.json``, a bare report object with no ``schema`` key) are
migrated transparently: the old report becomes run 1, marked
``"legacy": true``, and nothing is lost.
"""

from __future__ import annotations

import datetime
import json
import platform
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

SCHEMA_VERSION = 1

PathLike = Union[str, Path]
Run = Dict[str, Any]
Trajectory = Dict[str, Any]


def _empty_trajectory(benchmark: str) -> Trajectory:
    return {"schema": SCHEMA_VERSION, "benchmark": benchmark, "runs": []}


def _migrate_legacy(document: Dict[str, Any], benchmark: str) -> Trajectory:
    """Wrap a pre-trajectory single-report file as run 1 of a trajectory."""
    legacy: Run = {"schema": 0, "run_id": 1, "legacy": True}
    legacy.update(document)
    trajectory = _empty_trajectory(benchmark)
    trajectory["runs"].append(legacy)
    return trajectory


def read_trajectory(path: PathLike, benchmark: str = "") -> Trajectory:
    """Load (and, if needed, migrate) the trajectory at ``path``.

    A missing file yields an empty trajectory; a file in the legacy
    single-report format is wrapped as its first run.  Unknown *newer*
    schemas raise so stale tooling fails loudly instead of clobbering
    records it does not understand.
    """
    path = Path(path)
    if not path.exists():
        return _empty_trajectory(benchmark)
    document = json.loads(path.read_text(encoding="utf-8"))
    if "schema" not in document:
        return _migrate_legacy(document, benchmark)
    if document["schema"] > SCHEMA_VERSION:
        raise ValueError(
            f"{path} has trajectory schema {document['schema']}; this "
            f"tool understands <= {SCHEMA_VERSION}")
    document.setdefault("benchmark", benchmark)
    document.setdefault("runs", [])
    return document


def append_run(path: PathLike, run: Run, benchmark: str = "") -> Trajectory:
    """Append one run record to the trajectory at ``path`` and write it.

    The record is stamped with ``schema``, ``run_id``, ``recorded_at``
    (UTC ISO-8601) and ``environment``; caller-provided keys win on
    conflict (pinned timestamps in tests, for example).  Returns the
    full, freshly written trajectory.
    """
    path = Path(path)
    trajectory = read_trajectory(path, benchmark=benchmark)
    stamped: Run = {
        "schema": SCHEMA_VERSION,
        "run_id": len(trajectory["runs"]) + 1,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
    }
    stamped.update(run)
    trajectory["runs"].append(stamped)
    path.write_text(json.dumps(trajectory, indent=2) + "\n",
                    encoding="utf-8")
    return trajectory


def latest_run(trajectory: Trajectory,
               mode: Optional[str] = None) -> Optional[Run]:
    """The most recent run (optionally restricted to ``mode``)."""
    runs: List[Run] = trajectory.get("runs", [])
    for run in reversed(runs):
        if mode is None or run.get("mode") == mode:
            return run
    return None


def baseline_run(trajectory: Trajectory,
                 mode: Optional[str] = None) -> Optional[Run]:
    """The earliest run labelled ``baseline`` (optionally by ``mode``).

    Falls back to the earliest run of the requested mode when no run
    carries the explicit label — the first record of a trajectory *is*
    the baseline by construction.
    """
    runs: List[Run] = trajectory.get("runs", [])
    for run in runs:
        if mode is not None and run.get("mode") != mode:
            continue
        if run.get("label") == "baseline":
            return run
    for run in runs:
        if mode is None or run.get("mode") == mode:
            return run
    return None
