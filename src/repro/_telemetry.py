"""Process-local cache registry and stage timers.

This is a leaf module (imports nothing from :mod:`repro`) so that the hot
modules — :mod:`repro.arch.coupling`, :mod:`repro.ata.registry`,
:mod:`repro.compiler.framework` — can share counters without creating
import cycles with the batch engine that reports them.

Every memoization site creates a :class:`CacheCounter` and registers it
together with ``size``/``clear`` callbacks; :func:`cache_info` then gives a
single point-in-time view of all caches in this process, and
:func:`cache_delta` turns two such views into the per-compilation hit/miss
deltas that :func:`repro.compile_qaoa` stores under
``CompiledResult.extra["cache"]``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional


class _ScopeStack(threading.local):
    """Per-thread stack of open :class:`CacheDeltaScope` objects."""

    def __init__(self) -> None:
        self.stack: List["CacheDeltaScope"] = []


_scopes = _ScopeStack()


class CacheDeltaScope:
    """Exact hit/miss attribution for one unit of work on one thread.

    The historic way to measure a per-compilation cache delta was two
    :func:`cache_info` snapshots subtracted by :func:`cache_delta`.
    Those counters are process-global: when two requests compile
    concurrently in the same process (thread executor, a long-lived
    serve daemon), their windows interleave and each request's delta
    absorbs the other's hits.  A scope instead accumulates only the
    events raised *on the opening thread* while it is open, so
    concurrent requests can never misattribute each other's traffic —
    and counters inherited from a forked parent are structurally
    excluded (a scope starts at zero, not at the inherited totals).
    """

    __slots__ = ("_deltas",)

    def __init__(self) -> None:
        self._deltas: Dict[str, List[int]] = {}

    def _bump(self, name: str, slot: int) -> None:
        bucket = self._deltas.get(name)
        if bucket is None:
            bucket = self._deltas[name] = [0, 0]
        bucket[slot] += 1

    def delta(self) -> Dict[str, Dict[str, int]]:
        """Per-cache ``{"hits", "misses"}`` observed while open.

        Every registered cache is present (zeros included), matching the
        shape :func:`cache_delta` produced so downstream schemas are
        unchanged.
        """
        out: Dict[str, Dict[str, int]] = {}
        for name in sorted(_REGISTRY):
            bucket = self._deltas.get(name)
            out[name] = {"hits": bucket[0] if bucket else 0,
                         "misses": bucket[1] if bucket else 0}
        return out


@contextmanager
def measure_cache_delta() -> Iterator[CacheDeltaScope]:
    """Open a :class:`CacheDeltaScope` on the current thread.

    Scopes nest: an inner scope (a single pass) and an outer scope (the
    whole compilation) both observe the same events.
    """
    scope = CacheDeltaScope()
    _scopes.stack.append(scope)
    try:
        yield scope
    finally:
        _scopes.stack.remove(scope)


class CacheCounter:
    """Hit/miss tally for one memoization site."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0

    def hit(self) -> None:
        self.hits += 1
        for scope in _scopes.stack:
            scope._bump(self.name, 0)

    def miss(self) -> None:
        self.misses += 1
        for scope in _scopes.stack:
            scope._bump(self.name, 1)

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        return f"CacheCounter({self.name!r}, hits={self.hits}, misses={self.misses})"


_REGISTRY: Dict[str, tuple] = {}


def register_cache(name: str, counter: CacheCounter,
                   size_fn: Callable[[], int],
                   clear_fn: Callable[[], None]) -> CacheCounter:
    """Register a memoization site; returns ``counter`` for convenience."""
    _REGISTRY[name] = (counter, size_fn, clear_fn)
    return counter


def cache_info() -> Dict[str, Dict[str, int]]:
    """``{cache_name: {"hits", "misses", "size"}}`` for every registered cache."""
    out: Dict[str, Dict[str, int]] = {}
    for name, (counter, size_fn, _clear) in sorted(_REGISTRY.items()):
        info = counter.snapshot()
        info["size"] = size_fn()
        out[name] = info
    return out


def cache_delta(before: Dict[str, Dict[str, int]],
                after: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Hits/misses accrued between two :func:`cache_info` snapshots."""
    delta: Dict[str, Dict[str, int]] = {}
    for name, now in after.items():
        then = before.get(name, {})
        delta[name] = {
            "hits": now["hits"] - then.get("hits", 0),
            "misses": now["misses"] - then.get("misses", 0),
        }
    return delta


def clear_caches() -> None:
    """Empty every registered cache and zero its counters (test isolation)."""
    for counter, _size, clear_fn in _REGISTRY.values():
        clear_fn()
        counter.reset()


_EVENTS: Dict[str, int] = {}
_EVENTS_LOCK = threading.Lock()


def count_event(name: str, n: int = 1) -> None:
    """Bump a process-local event counter (e.g. ``lint.errors``).

    Events complement the cache counters: anything that wants a cheap
    "how often did X happen in this process" tally — lint runs, rule
    hits, fallbacks — counts here and shows up in :func:`event_info`.
    Increments are lock-protected so concurrent request handlers (the
    serve daemon's thread executor) never lose a read-modify-write.
    """
    with _EVENTS_LOCK:
        _EVENTS[name] = _EVENTS.get(name, 0) + n


def event_info() -> Dict[str, int]:
    """Point-in-time snapshot of every event counter, sorted by name."""
    with _EVENTS_LOCK:
        return dict(sorted(_EVENTS.items()))


def clear_events() -> None:
    """Zero all event counters (test isolation)."""
    with _EVENTS_LOCK:
        _EVENTS.clear()


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100]).

    Plain-python on purpose: latency summaries run inside the serve
    daemon's event loop, where importing numpy per request would be
    absurd.  Returns ``0.0`` for an empty sample set.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * len(ordered) + 0.5)) - 1))
    return ordered[rank]


class StageTimer:
    """Accumulate named wall-clock stage durations for one compilation."""

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self._started: Optional[tuple] = None

    def start(self, stage: str) -> None:
        self._started = (stage, time.perf_counter())

    def stop(self) -> float:
        """Close the open stage, accumulating into its bucket."""
        stage, t0 = self._started
        elapsed = time.perf_counter() - t0
        self.timings[stage] = self.timings.get(stage, 0.0) + elapsed
        self._started = None
        return elapsed

    def record(self, stage: str, seconds: float) -> None:
        self.timings[stage] = self.timings.get(stage, 0.0) + seconds
