"""Process-local cache registry and stage timers.

This is a leaf module (imports nothing from :mod:`repro`) so that the hot
modules — :mod:`repro.arch.coupling`, :mod:`repro.ata.registry`,
:mod:`repro.compiler.framework` — can share counters without creating
import cycles with the batch engine that reports them.

Every memoization site creates a :class:`CacheCounter` and registers it
together with ``size``/``clear`` callbacks; :func:`cache_info` then gives a
single point-in-time view of all caches in this process, and
:func:`cache_delta` turns two such views into the per-compilation hit/miss
deltas that :func:`repro.compile_qaoa` stores under
``CompiledResult.extra["cache"]``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class CacheCounter:
    """Hit/miss tally for one memoization site."""

    __slots__ = ("name", "hits", "misses")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0

    def hit(self) -> None:
        self.hits += 1

    def miss(self) -> None:
        self.misses += 1

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}

    def __repr__(self) -> str:
        return f"CacheCounter({self.name!r}, hits={self.hits}, misses={self.misses})"


_REGISTRY: Dict[str, tuple] = {}


def register_cache(name: str, counter: CacheCounter,
                   size_fn: Callable[[], int],
                   clear_fn: Callable[[], None]) -> CacheCounter:
    """Register a memoization site; returns ``counter`` for convenience."""
    _REGISTRY[name] = (counter, size_fn, clear_fn)
    return counter


def cache_info() -> Dict[str, Dict[str, int]]:
    """``{cache_name: {"hits", "misses", "size"}}`` for every registered cache."""
    out: Dict[str, Dict[str, int]] = {}
    for name, (counter, size_fn, _clear) in sorted(_REGISTRY.items()):
        info = counter.snapshot()
        info["size"] = size_fn()
        out[name] = info
    return out


def cache_delta(before: Dict[str, Dict[str, int]],
                after: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Hits/misses accrued between two :func:`cache_info` snapshots."""
    delta: Dict[str, Dict[str, int]] = {}
    for name, now in after.items():
        then = before.get(name, {})
        delta[name] = {
            "hits": now["hits"] - then.get("hits", 0),
            "misses": now["misses"] - then.get("misses", 0),
        }
    return delta


def clear_caches() -> None:
    """Empty every registered cache and zero its counters (test isolation)."""
    for counter, _size, clear_fn in _REGISTRY.values():
        clear_fn()
        counter.reset()


_EVENTS: Dict[str, int] = {}


def count_event(name: str, n: int = 1) -> None:
    """Bump a process-local event counter (e.g. ``lint.errors``).

    Events complement the cache counters: anything that wants a cheap
    "how often did X happen in this process" tally — lint runs, rule
    hits, fallbacks — counts here and shows up in :func:`event_info`.
    """
    _EVENTS[name] = _EVENTS.get(name, 0) + n


def event_info() -> Dict[str, int]:
    """Point-in-time snapshot of every event counter, sorted by name."""
    return dict(sorted(_EVENTS.items()))


def clear_events() -> None:
    """Zero all event counters (test isolation)."""
    _EVENTS.clear()


class StageTimer:
    """Accumulate named wall-clock stage durations for one compilation."""

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self._started: Optional[tuple] = None

    def start(self, stage: str) -> None:
        self._started = (stage, time.perf_counter())

    def stop(self) -> float:
        """Close the open stage, accumulating into its bucket."""
        stage, t0 = self._started
        elapsed = time.perf_counter() - t0
        self.timings[stage] = self.timings.get(stage, 0.0) + elapsed
        self._started = None
        return elapsed

    def record(self, stage: str, seconds: float) -> None:
        self.timings[stage] = self.timings.get(stage, 0.0) + seconds
