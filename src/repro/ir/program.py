"""Layered programs: the compiled artifact for p-layer QAOA / Trotterization.

A compiled *circuit* implements one permuted cost layer; a compiled
*program* is the full p-layer schedule a QAOA run (or a Trotterized
Hamiltonian simulation) actually executes.  Each :class:`ProgramLayer`
carries a role — ``cost``, ``reversed-cost`` or ``mixer`` — its per-layer
parameter (gamma for cost layers, beta for mixers) and its mapping
provenance: the logical-to-physical layout the layer starts from and the
layout its SWAPs leave behind.

The assembly optimization (see :mod:`repro.pipeline.assembly`) exploits
the fact that a compiled cost layer run *in reverse op order* implements
the same logical gate set while applying the **inverse** qubit
permutation: alternating the layer with its reversal makes the net
permutation cancel every two cost layers, so no inter-layer remapping
SWAPs are ever paid and the measurement layout after an even number of
cost layers is the initial placement itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from .circuit import Circuit
from .gates import SWAP, Op
from .mapping import Mapping

#: A layer replaying the compiled cost block in program order.
ROLE_COST = "cost"
#: A layer replaying the compiled cost block in *reversed* op order,
#: undoing the block's net qubit permutation.
ROLE_REVERSED_COST = "reversed-cost"
#: A single-qubit mixer wall (RX on every mapped qubit).
ROLE_MIXER = "mixer"

#: Roles that implement the problem's two-qubit interactions.
COST_ROLES = frozenset({ROLE_COST, ROLE_REVERSED_COST})
#: Every valid layer role.
LAYER_ROLES = frozenset({ROLE_COST, ROLE_REVERSED_COST, ROLE_MIXER})


@dataclass(frozen=True)
class ProgramLayer:
    """One layer of a compiled program plus its mapping provenance."""

    role: str
    circuit: Circuit
    #: gamma_k for cost layers, beta_k for mixer layers.
    param: Optional[float]
    #: Logical-to-physical layout the layer starts from.
    input_log_to_phys: Tuple[int, ...]
    #: Layout after the layer's SWAPs (equals the input for mixers).
    output_log_to_phys: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.role not in LAYER_ROLES:
            raise ValueError(
                f"unknown layer role {self.role!r}; expected one of "
                f"{sorted(LAYER_ROLES)}")
        if len(self.input_log_to_phys) != len(self.output_log_to_phys):
            raise ValueError(
                "layer input/output mappings cover different logical "
                "qubit counts")

    @property
    def is_cost(self) -> bool:
        return self.role in COST_ROLES

    def input_mapping(self, n_physical: int) -> Mapping:
        """The layer's starting layout as a :class:`Mapping`."""
        return Mapping(list(self.input_log_to_phys), n_physical)

    def output_mapping(self, n_physical: int) -> Mapping:
        """The layer's finishing layout as a :class:`Mapping`."""
        return Mapping(list(self.output_log_to_phys), n_physical)


class Program:
    """An ordered list of layers over one physical register.

    Layers must be mapping-continuous: each layer's input layout is the
    previous layer's output layout, and the first layer starts from
    ``initial_mapping``.  (The lint rule RL030 re-checks this on
    deserialized documents; construction enforces it for programs built
    in-process.)
    """

    def __init__(self, n_qubits: int, layers: Sequence[ProgramLayer],
                 initial_mapping: Mapping, name: str = "") -> None:
        if n_qubits <= 0:
            raise ValueError(f"n_qubits must be positive, got {n_qubits}")
        if not layers:
            raise ValueError("a program needs at least one layer")
        if initial_mapping.n_physical != n_qubits:
            raise ValueError(
                f"initial mapping covers {initial_mapping.n_physical} "
                f"physical qubits but the program has {n_qubits}")
        current = tuple(initial_mapping.log_to_phys)
        for index, layer in enumerate(layers):
            if layer.circuit.n_qubits != n_qubits:
                raise ValueError(
                    f"layer {index} is {layer.circuit.n_qubits} qubits "
                    f"wide but the program has {n_qubits}")
            if layer.input_log_to_phys != current:
                raise ValueError(
                    f"layer {index} input mapping "
                    f"{list(layer.input_log_to_phys)} disagrees with the "
                    f"previous layer's output {list(current)}")
            current = layer.output_log_to_phys
        self.n_qubits = n_qubits
        self.layers: List[ProgramLayer] = list(layers)
        self.initial_mapping = initial_mapping.copy()
        self.name = name

    @classmethod
    def from_layers_unchecked(cls, n_qubits: int,
                              layers: Sequence[ProgramLayer],
                              initial_mapping: Mapping,
                              name: str = "") -> "Program":
        """Build a program without the continuity validation — the
        tolerant path for possibly-tampered serialized documents, which
        the lint rules (RL030/RL031) then diagnose instead of a load
        failure.  The :class:`Circuit` analogue is
        ``Circuit.from_ops_unchecked``."""
        program = cls.__new__(cls)
        program.n_qubits = n_qubits
        program.layers = list(layers)
        program.initial_mapping = initial_mapping.copy()
        program.name = name
        return program

    # -- structure ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[ProgramLayer]:
        return iter(self.layers)

    @property
    def p(self) -> int:
        """The QAOA depth: number of cost-role layers."""
        return sum(1 for layer in self.layers if layer.is_cost)

    def cost_layers(self) -> List[ProgramLayer]:
        return [layer for layer in self.layers if layer.is_cost]

    def mixer_layers(self) -> List[ProgramLayer]:
        return [layer for layer in self.layers
                if layer.role == ROLE_MIXER]

    @property
    def mixer(self) -> str:
        """``"rx"`` when the program interleaves mixer walls, else ``"none"``."""
        return "rx" if self.mixer_layers() else "none"

    def gammas(self) -> List[Optional[float]]:
        """Per-cost-layer angles, in layer order."""
        return [layer.param for layer in self.cost_layers()]

    def betas(self) -> List[Optional[float]]:
        """Per-mixer-layer angles, in layer order."""
        return [layer.param for layer in self.mixer_layers()]

    # -- mapping provenance -------------------------------------------------

    @property
    def final_log_to_phys(self) -> Tuple[int, ...]:
        """The measurement layout after the last layer."""
        return self.layers[-1].output_log_to_phys

    def final_mapping(self) -> Mapping:
        """The measurement layout as a :class:`Mapping`."""
        return Mapping(list(self.final_log_to_phys), self.n_qubits)

    @property
    def net_permutation_is_identity(self) -> bool:
        """Does the whole program return every logical qubit home?"""
        return (self.final_log_to_phys
                == tuple(self.initial_mapping.log_to_phys))

    # -- lowering -----------------------------------------------------------

    def flatten(self) -> Circuit:
        """The whole program as one physical circuit, in layer order."""
        ops: List[Op] = []
        for layer in self.layers:
            ops.extend(layer.circuit.ops)
        return Circuit.from_ops_unchecked(self.n_qubits, ops)

    def n_ops(self) -> int:
        return sum(len(layer.circuit) for layer in self.layers)

    def swap_count(self) -> int:
        return sum(layer.circuit.swap_count for layer in self.layers)

    # -- telemetry ----------------------------------------------------------

    def telemetry(self) -> dict:
        """Plain-data summary for ``CompiledResult.extra["program"]``."""
        return {
            "layers": len(self.layers),
            "p": self.p,
            "mixer": self.mixer,
            "roles": [layer.role for layer in self.layers],
            "ops": self.n_ops(),
            "swaps": self.swap_count(),
            "net_permutation_identity": self.net_permutation_is_identity,
        }

    def __repr__(self) -> str:
        return (f"Program(n_qubits={self.n_qubits}, p={self.p}, "
                f"layers={len(self.layers)}, mixer={self.mixer!r}, "
                f"identity={self.net_permutation_is_identity})")


def layer_permutation(circuit: Circuit, initial_mapping: Mapping) -> Mapping:
    """The layout a layer's SWAPs leave behind, from ``initial_mapping``."""
    mapping = initial_mapping.copy()
    for op in circuit:
        if op.kind == SWAP:
            mapping.swap_physical(*op.qubits)
    return mapping


def reversed_layer(circuit: Circuit) -> Circuit:
    """The layer in reversed op order.

    All problem gates commute and SWAP is self-inverse, so the reversed
    layer implements the same logical gate set while applying the
    *inverse* net permutation — the cancellation trick behind
    :data:`ROLE_REVERSED_COST` layers.
    """
    return Circuit.from_ops_unchecked(circuit.n_qubits,
                                      list(circuit.ops)[::-1])
