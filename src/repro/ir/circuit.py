"""Circuit container with ASAP layering and the paper's depth metric.

The paper (Section 4.1) schedules circuits in *cycles*: every gate —
single-qubit, CPHASE or SWAP — occupies exactly one cycle, and two gates can
share a cycle iff they act on disjoint qubits.  ``Circuit.depth()`` is the
length of that cycle schedule computed greedily (ASAP), which equals the
critical-path length because all gates have unit duration.

Post-decomposition metrics (CX count / CX depth) live in
:mod:`repro.ir.decompose`; they are exposed here as convenience methods.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .gates import CPHASE, SWAP, Op


class Circuit:
    """An ordered list of operations on ``n_qubits`` physical qubits.

    Program order is significant only through qubit overlap: the scheduler
    may reorder non-overlapping operations freely (they commute trivially).
    """

    def __init__(self, n_qubits: int, ops: Optional[Iterable[Op]] = None) -> None:
        if n_qubits <= 0:
            raise ValueError(f"n_qubits must be positive, got {n_qubits}")
        self.n_qubits = n_qubits
        self._ops: List[Op] = []
        if ops is not None:
            for op in ops:
                self.append(op)

    # -- construction -------------------------------------------------------------

    def append(self, op: Op) -> None:
        for q in op.qubits:
            if not 0 <= q < self.n_qubits:
                raise ValueError(
                    f"qubit {q} out of range for {self.n_qubits}-qubit circuit")
        if len(set(op.qubits)) != len(op.qubits):
            raise ValueError(f"duplicate qubit in {op!r}")
        self._ops.append(op)

    def extend(self, ops: Iterable[Op]) -> None:
        for op in ops:
            self.append(op)

    @classmethod
    def from_ops_unchecked(cls, n_qubits: int,
                           ops: Iterable[Op]) -> "Circuit":
        """Build a circuit **without** the per-op qubit checks.

        The lint subsystem loads possibly-corrupt documents this way so
        that out-of-range or duplicated qubit indices become diagnostics
        (``RL002``/``RL003``) instead of construction errors.  Metric
        methods (``depth``/``layers``) may raise on such circuits; only
        the tolerant lint scan is guaranteed to handle them.
        """
        if n_qubits <= 0:
            raise ValueError(f"n_qubits must be positive, got {n_qubits}")
        circuit = cls.__new__(cls)
        circuit.n_qubits = n_qubits
        circuit._ops = list(ops)
        return circuit

    def __add__(self, other: "Circuit") -> "Circuit":
        if other.n_qubits != self.n_qubits:
            raise ValueError("cannot concatenate circuits of different widths")
        return Circuit(self.n_qubits, list(self._ops) + list(other._ops))

    def copy(self) -> "Circuit":
        return Circuit(self.n_qubits, list(self._ops))

    # -- access -------------------------------------------------------------------

    @property
    def ops(self) -> Sequence[Op]:
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)

    def __repr__(self) -> str:
        return (f"Circuit(n_qubits={self.n_qubits}, ops={len(self._ops)}, "
                f"depth={self.depth()})")

    # -- metrics ------------------------------------------------------------------

    def depth(self, two_qubit_only: bool = False) -> int:
        """ASAP cycle count; every op takes one cycle.

        With ``two_qubit_only`` single-qubit gates are ignored, matching
        evaluations that count only entangling layers.
        """
        busy_until = [0] * self.n_qubits
        depth = 0
        for op in self._ops:
            if two_qubit_only and not op.is_two_qubit:
                continue
            start = max(busy_until[q] for q in op.qubits)
            end = start + 1
            for q in op.qubits:
                busy_until[q] = end
            if end > depth:
                depth = end
        return depth

    def layers(self, two_qubit_only: bool = False) -> List[List[Op]]:
        """The ASAP schedule as a list of cycles (lists of ops)."""
        busy_until = [0] * self.n_qubits
        result: List[List[Op]] = []
        for op in self._ops:
            if two_qubit_only and not op.is_two_qubit:
                continue
            start = max(busy_until[q] for q in op.qubits)
            for q in op.qubits:
                busy_until[q] = start + 1
            while len(result) <= start:
                result.append([])
            result[start].append(op)
        return result

    def count_kind(self, kind: str) -> int:
        return sum(1 for op in self._ops if op.kind == kind)

    @property
    def swap_count(self) -> int:
        return self.count_kind(SWAP)

    @property
    def cphase_count(self) -> int:
        return self.count_kind(CPHASE)

    def two_qubit_ops(self) -> Iterator[Op]:
        return (op for op in self._ops if op.is_two_qubit)

    def cx_count(self, unify: bool = True) -> int:
        """Number of CX gates after decomposition (see :mod:`.decompose`)."""
        from .decompose import count_cx

        return count_cx(self, unify=unify)

    def cx_depth(self, unify: bool = True) -> int:
        """Depth of the decomposed circuit counting only CX gates."""
        from .decompose import decompose_to_cx

        return decompose_to_cx(self, unify=unify).depth(two_qubit_only=True)


def circuit_from_layers(n_qubits: int,
                        layers: Iterable[Iterable[Op]]) -> Circuit:
    """Build a circuit from explicit cycles, checking intra-layer conflicts."""
    circuit = Circuit(n_qubits)
    for cycle, layer in enumerate(layers):
        used: set = set()
        for op in layer:
            for q in op.qubits:
                if q in used:
                    raise ValueError(
                        f"qubit {q} used twice in layer {cycle}")
                used.add(q)
            circuit.append(op)
    return circuit
