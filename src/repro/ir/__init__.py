"""Circuit intermediate representation.

The IR layer is deliberately small: slotted :class:`~repro.ir.gates.Op`
values inside a :class:`~repro.ir.circuit.Circuit`, a bidirectional
:class:`~repro.ir.mapping.Mapping`, a decomposer to the CX basis
(:mod:`repro.ir.decompose`) and the semantic validator
(:mod:`repro.ir.validate`).
"""

from .circuit import Circuit, circuit_from_layers
from .draw import draw
from .qasm import from_qasm, to_qasm
from .serialize import (load_result, save_result)
from .decompose import count_cx, decompose_to_cx
from .gates import (CPHASE, CX, H, PHASE, RX, RZ, SWAP, Op, canonical_edge,
                    canonical_edges)
from .mapping import Mapping
from .validate import ValidationReport, validate_compiled

__all__ = [
    "Circuit",
    "circuit_from_layers",
    "draw",
    "to_qasm",
    "from_qasm",
    "save_result",
    "load_result",
    "count_cx",
    "decompose_to_cx",
    "Op",
    "Mapping",
    "ValidationReport",
    "validate_compiled",
    "canonical_edge",
    "canonical_edges",
    "CPHASE",
    "CX",
    "H",
    "PHASE",
    "RX",
    "RZ",
    "SWAP",
]
