"""Circuit intermediate representation.

The IR layer is deliberately small: slotted :class:`~repro.ir.gates.Op`
values inside a :class:`~repro.ir.circuit.Circuit`, a bidirectional
:class:`~repro.ir.mapping.Mapping`, a decomposer to the CX basis
(:mod:`repro.ir.decompose`) and the semantic validator
(:mod:`repro.ir.validate`).
"""

from .circuit import Circuit, circuit_from_layers
from .draw import draw
from .qasm import from_qasm, to_qasm
from .serialize import (load_program, load_result, save_program, save_result)
from .decompose import count_cx, decompose_to_cx
from .gates import (CPHASE, CX, H, PHASE, RX, RZ, SWAP, Op, canonical_edge,
                    canonical_edges)
from .mapping import Mapping
from .program import (COST_ROLES, LAYER_ROLES, ROLE_COST, ROLE_MIXER,
                      ROLE_REVERSED_COST, Program, ProgramLayer,
                      layer_permutation, reversed_layer)
from .validate import ValidationReport, validate_compiled

__all__ = [
    "Circuit",
    "circuit_from_layers",
    "draw",
    "to_qasm",
    "from_qasm",
    "save_result",
    "load_result",
    "save_program",
    "load_program",
    "Program",
    "ProgramLayer",
    "layer_permutation",
    "reversed_layer",
    "ROLE_COST",
    "ROLE_REVERSED_COST",
    "ROLE_MIXER",
    "COST_ROLES",
    "LAYER_ROLES",
    "count_cx",
    "decompose_to_cx",
    "Op",
    "Mapping",
    "ValidationReport",
    "validate_compiled",
    "canonical_edge",
    "canonical_edges",
    "CPHASE",
    "CX",
    "H",
    "PHASE",
    "RX",
    "RZ",
    "SWAP",
]
