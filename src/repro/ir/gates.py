"""Lightweight operation (gate) representation.

The compiler manipulates millions of operations for 1024-qubit circuits, so
``Op`` is a slotted value object rather than a rich class hierarchy.  Kinds
are plain strings; the canonical set is listed in :data:`OP_KINDS`.

Two-qubit *problem* gates are always ``CPHASE`` — in QAOA-MaxCut each
problem-graph edge compiles to one CPHASE (a CZ up to the rotation angle),
and in 2-local Hamiltonian simulation each interaction term plays the same
role.  The paper (Section 2.1) relies only on the facts that all problem
gates commute and are symmetric in their qubits, which CPHASE satisfies.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

#: Problem two-qubit gate (symmetric, diagonal, all instances commute).
CPHASE = "cphase"
#: Routing gate.
SWAP = "swap"
#: Native entangling gate used for decomposed gate counts.
CX = "cx"
#: Single-qubit gates (used by the end-to-end QAOA circuit builder).
H = "h"
RX = "rx"
RZ = "rz"
#: Single-qubit phase gate diag(1, e^{i*param}).
PHASE = "p"

OP_KINDS = frozenset({CPHASE, SWAP, CX, H, RX, RZ, PHASE})

#: Kinds that act on exactly two qubits.
TWO_QUBIT_KINDS = frozenset({CPHASE, SWAP, CX})
#: Two-qubit kinds that are symmetric under qubit exchange.
SYMMETRIC_KINDS = frozenset({CPHASE, SWAP})


class Op:
    """One scheduled operation on *physical* qubits.

    Parameters
    ----------
    kind:
        One of :data:`OP_KINDS`.
    qubits:
        Physical qubit indices.  Length 1 or 2 depending on the kind.
    param:
        Rotation angle for parameterised gates (``cphase``/``rx``/``rz``/``p``).
    tag:
        For ``cphase`` ops emitted by a compiler: the *logical* problem-graph
        edge ``(u, v)`` this gate implements.  Used by the validator to check
        that every problem edge is executed exactly once.
    """

    __slots__ = ("kind", "qubits", "param", "tag")

    def __init__(
        self,
        kind: str,
        qubits: Tuple[int, ...],
        param: Optional[float] = None,
        tag: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.kind = kind
        self.qubits = qubits
        self.param = param
        self.tag = tag

    # -- convenience constructors -------------------------------------------------

    @staticmethod
    def cphase(u: int, v: int, gamma: float = 0.0,
               tag: Optional[Tuple[int, int]] = None) -> "Op":
        """A problem gate between physical qubits ``u`` and ``v``."""
        return Op(CPHASE, (u, v), gamma, tag)

    @staticmethod
    def swap(u: int, v: int) -> "Op":
        """A routing SWAP between physical qubits."""
        return Op(SWAP, (u, v))

    @staticmethod
    def cx(control: int, target: int) -> "Op":
        """A CNOT with explicit control/target direction."""
        return Op(CX, (control, target))

    @staticmethod
    def h(q: int) -> "Op":
        """A Hadamard."""
        return Op(H, (q,))

    @staticmethod
    def rx(q: int, theta: float) -> "Op":
        """An X rotation by ``theta``."""
        return Op(RX, (q,), theta)

    @staticmethod
    def rz(q: int, theta: float) -> "Op":
        """A Z rotation by ``theta``."""
        return Op(RZ, (q,), theta)

    @staticmethod
    def phase(q: int, theta: float) -> "Op":
        """A phase gate diag(1, e^{i theta})."""
        return Op(PHASE, (q,), theta)

    # -- protocol -----------------------------------------------------------------

    @property
    def is_two_qubit(self) -> bool:
        """Whether the op acts on two qubits."""
        return self.kind in TWO_QUBIT_KINDS

    def sorted_qubits(self) -> Tuple[int, ...]:
        """Qubits in ascending order (canonical form for symmetric gates)."""
        return tuple(sorted(self.qubits))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Op):
            return NotImplemented
        if self.kind != other.kind or self.param != other.param:
            return False
        if self.kind in SYMMETRIC_KINDS:
            return self.sorted_qubits() == other.sorted_qubits()
        return self.qubits == other.qubits

    def __hash__(self) -> int:
        qubits = self.sorted_qubits() if self.kind in SYMMETRIC_KINDS else self.qubits
        return hash((self.kind, qubits, self.param))

    def __repr__(self) -> str:
        args = ", ".join(str(q) for q in self.qubits)
        if self.param is not None:
            args += f", param={self.param:.4g}"
        if self.tag is not None:
            args += f", tag={self.tag}"
        return f"Op({self.kind}, {args})"


def canonical_edge(u: int, v: int) -> Tuple[int, int]:
    """The canonical (sorted) form of an undirected qubit pair."""
    return (u, v) if u <= v else (v, u)


def canonical_edges(edges: Iterable[Tuple[int, int]]) -> frozenset:
    """Canonicalise an iterable of undirected edges into a frozenset."""
    return frozenset(canonical_edge(u, v) for u, v in edges)
