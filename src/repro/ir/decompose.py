"""Decomposition of abstract circuits into the CX + single-qubit basis.

The paper reports two-qubit gate counts after decomposing compiled circuits
into CX gates (Section 7.1).  The relevant identities:

* lone ``CPHASE(g)``      -> 2 CX + 3 phase gates
* lone ``SWAP``           -> 3 CX
* ``CPHASE(g)`` and ``SWAP`` on the *same* pair with nothing in between
  -> 3 CX + 3 phase gates (the standard ZZ+SWAP "unified" gate used by
  swap networks and by the 2QAN baseline)

The fusion is what makes the structured all-to-all patterns cheap: every
pattern step is a CPHASE immediately followed by a SWAP on the same pair,
costing 3 CX instead of 5.

The exact gate sequences below are unitary-exact (tests verify them against
a dense two-qubit simulator):

``CPHASE(g)``::

    P(a, g/2) ; P(b, g/2) ; CX(a,b) ; P(b, -g/2) ; CX(a,b)

``SWAP * CPHASE(g)`` (the two commute, so order does not matter)::

    CX(a,b) ; P(a, g/2) ; P(b, -g/2) ; CX(b,a) ; P(a, g/2) ; CX(a,b)
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from .circuit import Circuit
from .gates import CPHASE, CX, SWAP, Op, canonical_edge

#: A decomposition unit: either a standalone op or a fused (cphase, swap) pair.
_Unit = Tuple[str, List[Op]]

_STANDALONE = "standalone"
_FUSED = "fused"


def fusion_units(circuit: Circuit) -> Iterator[_Unit]:
    """Scan the circuit and group fusable CPHASE/SWAP pairs.

    A CPHASE and a SWAP on the same qubit pair fuse iff no other operation
    touches either qubit between them.  Order (CPHASE then SWAP or SWAP then
    CPHASE) does not matter because the two gates commute.
    """
    pending: Dict[Tuple[int, int], Op] = {}
    qubit_to_pair: Dict[int, Tuple[int, int]] = {}

    def flush(pair: Tuple[int, int]) -> Iterator[_Unit]:
        op = pending.pop(pair)
        for q in pair:
            qubit_to_pair.pop(q, None)
        yield (_STANDALONE, [op])

    for op in circuit:
        if op.kind in (CPHASE, SWAP):
            pair = canonical_edge(*op.qubits)
            held = pending.get(pair)
            if held is not None and held.kind != op.kind:
                # Complementary gate on the same pair: fuse.
                pending.pop(pair)
                for q in pair:
                    qubit_to_pair.pop(q, None)
                cphase_op = held if held.kind == CPHASE else op
                swap_op = op if held.kind == CPHASE else held
                yield (_FUSED, [cphase_op, swap_op])
                continue
            # Flush anything this op conflicts with (including same-kind
            # repeats on the same pair), then hold this op.
            for q in op.qubits:
                other = qubit_to_pair.get(q)
                if other is not None:
                    yield from flush(other)
            pending[pair] = op
            for q in pair:
                qubit_to_pair[q] = pair
        else:
            for q in op.qubits:
                other = qubit_to_pair.get(q)
                if other is not None:
                    yield from flush(other)
            yield (_STANDALONE, [op])

    # Drain leftovers in first-held order.
    for pair in list(pending):
        if pair in pending:
            yield from flush(pair)


def count_cx(circuit: Circuit, unify: bool = True) -> int:
    """CX gates in the decomposed circuit without materialising it."""
    total = 0
    for unit_kind, ops in fusion_units(circuit):
        if unit_kind == _FUSED:
            total += 3 if unify else 5
        else:
            op = ops[0]
            if op.kind == CPHASE:
                total += 2
            elif op.kind == SWAP:
                total += 3
            elif op.kind == CX:
                total += 1
    return total


def decompose_to_cx(circuit: Circuit, unify: bool = True) -> Circuit:
    """Rewrite the circuit over {CX, P, RZ, RX, H}.

    With ``unify`` (the default) adjacent CPHASE+SWAP pairs on the same
    qubits use the fused 3-CX implementation.
    """
    out = Circuit(circuit.n_qubits)
    for unit_kind, ops in fusion_units(circuit):
        if unit_kind == _FUSED and unify:
            cphase_op = ops[0]
            a, b = cphase_op.qubits
            g = cphase_op.param or 0.0
            out.extend([
                Op.cx(a, b),
                Op.phase(a, g / 2.0),
                Op.phase(b, -g / 2.0),
                Op.cx(b, a),
                Op.phase(a, g / 2.0),
                Op.cx(a, b),
            ])
        elif unit_kind == _FUSED:
            for op in ops:
                _decompose_single(out, op)
        else:
            _decompose_single(out, ops[0])
    return out


def _decompose_single(out: Circuit, op: Op) -> None:
    if op.kind == CPHASE:
        a, b = op.qubits
        g = op.param or 0.0
        out.extend([
            Op.phase(a, g / 2.0),
            Op.phase(b, g / 2.0),
            Op.cx(a, b),
            Op.phase(b, -g / 2.0),
            Op.cx(a, b),
        ])
    elif op.kind == SWAP:
        a, b = op.qubits
        out.extend([Op.cx(a, b), Op.cx(b, a), Op.cx(a, b)])
    else:
        out.append(op)
