"""JSON (de)serialisation for circuits, problems and compiled results.

Compiled circuits are expensive to produce at scale; persisting them lets
benchmark sweeps resume and lets results be inspected out-of-process.
The format is a versioned plain-JSON document.
"""

from __future__ import annotations

import json
from typing import Dict

from .circuit import Circuit
from .gates import OP_KINDS, Op
from .mapping import Mapping

FORMAT_VERSION = 1


def circuit_to_dict(circuit: Circuit) -> Dict:
    """Serialise a circuit to a plain-JSON document."""
    return {
        "version": FORMAT_VERSION,
        "n_qubits": circuit.n_qubits,
        "ops": [
            {
                "kind": op.kind,
                "qubits": list(op.qubits),
                **({"param": op.param} if op.param is not None else {}),
                **({"tag": list(op.tag)} if op.tag is not None else {}),
            }
            for op in circuit
        ],
    }


def circuit_from_dict(data: Dict) -> Circuit:
    """Inverse of :func:`circuit_to_dict`; validates kinds and version."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported circuit format {data.get('version')}")
    circuit = Circuit(data["n_qubits"])
    for entry in data["ops"]:
        kind = entry["kind"]
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        tag = entry.get("tag")
        circuit.append(Op(kind, tuple(entry["qubits"]),
                          entry.get("param"),
                          tuple(tag) if tag is not None else None))
    return circuit


def mapping_to_dict(mapping: Mapping) -> Dict:
    """Serialise a logical-to-physical mapping."""
    return {
        "version": FORMAT_VERSION,
        "log_to_phys": list(mapping.log_to_phys),
        "n_physical": mapping.n_physical,
    }


def mapping_from_dict(data: Dict) -> Mapping:
    """Inverse of :func:`mapping_to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported mapping format {data.get('version')}")
    return Mapping(data["log_to_phys"], data["n_physical"])


def compiled_result_to_dict(result) -> Dict:
    """Serialise a :class:`repro.compiler.CompiledResult`."""
    return {
        "version": FORMAT_VERSION,
        "method": result.method,
        "wall_time_s": result.wall_time_s,
        "circuit": circuit_to_dict(result.circuit),
        "initial_mapping": mapping_to_dict(result.initial_mapping),
        "extra": {k: v for k, v in result.extra.items()
                  if isinstance(v, (str, int, float, bool))},
    }


def compiled_result_from_dict(data: Dict):
    """Inverse of :func:`compiled_result_to_dict`."""
    from ..compiler.result import CompiledResult

    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported result format {data.get('version')}")
    result = CompiledResult(
        circuit=circuit_from_dict(data["circuit"]),
        initial_mapping=mapping_from_dict(data["initial_mapping"]),
        method=data["method"],
        wall_time_s=data.get("wall_time_s", 0.0),
    )
    result.extra.update(data.get("extra", {}))
    return result


def save_result(result, path: str) -> None:
    """Write a compiled result to a JSON file."""
    with open(path, "w") as handle:
        json.dump(compiled_result_to_dict(result), handle)


def load_result(path: str):
    """Read a compiled result from a JSON file."""
    with open(path) as handle:
        return compiled_result_from_dict(json.load(handle))


def problem_to_dict(problem) -> Dict:
    """Serialise a problem graph."""
    return {
        "version": FORMAT_VERSION,
        "name": problem.name,
        "n_vertices": problem.n_vertices,
        "edges": sorted(list(e) for e in problem.edges),
    }


def problem_from_dict(data: Dict):
    """Inverse of :func:`problem_to_dict`."""
    from ..problems.graphs import ProblemGraph

    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported problem format {data.get('version')}")
    return ProblemGraph(data["n_vertices"],
                        [tuple(e) for e in data["edges"]],
                        name=data.get("name", ""))
