"""JSON (de)serialisation for circuits, problems and compiled results.

Compiled circuits are expensive to produce at scale; persisting them lets
benchmark sweeps resume and lets results be inspected out-of-process.
The format is a versioned plain-JSON document.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict

from .circuit import Circuit
from .gates import OP_KINDS, Op
from .mapping import Mapping
from .program import Program, ProgramLayer

if TYPE_CHECKING:  # heavier layers; imported lazily at runtime
    from ..compiler.result import CompiledResult
    from ..problems.graphs import ProblemGraph

FORMAT_VERSION = 1


def circuit_to_dict(circuit: Circuit) -> Dict:
    """Serialise a circuit to a plain-JSON document."""
    return {
        "version": FORMAT_VERSION,
        "n_qubits": circuit.n_qubits,
        "ops": [
            {
                "kind": op.kind,
                "qubits": list(op.qubits),
                **({"param": op.param} if op.param is not None else {}),
                **({"tag": list(op.tag)} if op.tag is not None else {}),
            }
            for op in circuit
        ],
    }


def circuit_from_dict(data: Dict, check: bool = True) -> Circuit:
    """Inverse of :func:`circuit_to_dict`; validates kinds and version.

    ``check=False`` skips the per-op qubit-range/duplication checks so a
    corrupt document still loads — the lint subsystem (:mod:`repro.lint`)
    uses this to report such ops as diagnostics rather than failing at
    parse time.  Unknown op kinds and version mismatches always raise.
    """
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported circuit format {data.get('version')}")
    ops = []
    for entry in data["ops"]:
        kind = entry["kind"]
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        tag = entry.get("tag")
        ops.append(Op(kind, tuple(entry["qubits"]),
                      entry.get("param"),
                      tuple(tag) if tag is not None else None))
    if check:
        return Circuit(data["n_qubits"], ops)
    return Circuit.from_ops_unchecked(data["n_qubits"], ops)


def mapping_to_dict(mapping: Mapping) -> Dict:
    """Serialise a logical-to-physical mapping."""
    return {
        "version": FORMAT_VERSION,
        "log_to_phys": list(mapping.log_to_phys),
        "n_physical": mapping.n_physical,
    }


def mapping_from_dict(data: Dict) -> Mapping:
    """Inverse of :func:`mapping_to_dict`."""
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported mapping format {data.get('version')}")
    return Mapping(data["log_to_phys"], data["n_physical"])


def program_to_dict(program: Program) -> Dict:
    """Serialise a layered program (see :mod:`repro.ir.program`)."""
    return {
        "version": FORMAT_VERSION,
        "name": program.name,
        "n_qubits": program.n_qubits,
        "initial_mapping": mapping_to_dict(program.initial_mapping),
        "layers": [
            {
                "role": layer.role,
                **({"param": layer.param}
                   if layer.param is not None else {}),
                "input_log_to_phys": list(layer.input_log_to_phys),
                "output_log_to_phys": list(layer.output_log_to_phys),
                "circuit": circuit_to_dict(layer.circuit),
            }
            for layer in program.layers
        ],
    }


def program_from_dict(data: Dict, check: bool = True) -> Program:
    """Inverse of :func:`program_to_dict`.

    ``check=False`` loads layer circuits through the tolerant
    deserializer and skips the constructor's mapping-continuity
    validation (the lint path for possibly-corrupt documents, which
    RL030/RL031 then diagnose instead of a load failure).
    """
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported program format {data.get('version')}")
    layers = [
        ProgramLayer(
            role=entry["role"],
            circuit=circuit_from_dict(entry["circuit"], check=check),
            param=entry.get("param"),
            input_log_to_phys=tuple(entry["input_log_to_phys"]),
            output_log_to_phys=tuple(entry["output_log_to_phys"]),
        )
        for entry in data["layers"]
    ]
    build = Program if check else Program.from_layers_unchecked
    return build(data["n_qubits"], layers,
                 mapping_from_dict(data["initial_mapping"]),
                 name=data.get("name", ""))


def save_program(program: Program, path: str) -> None:
    """Write a layered program to a JSON file."""
    with open(path, "w") as handle:
        json.dump(program_to_dict(program), handle)


def load_program(path: str) -> Program:
    """Read a layered program from a JSON file."""
    with open(path) as handle:
        return program_from_dict(json.load(handle))


def compiled_result_to_dict(result: "CompiledResult") -> Dict:
    """Serialise a :class:`repro.compiler.CompiledResult`.

    The ``metrics`` block records the headline numbers at serialisation
    time; loaders never need it (everything recomputes from the circuit)
    but out-of-process consumers read it without decompressing the op
    list, and ``repro lint`` cross-checks it against recomputation
    (rule RL021).
    """
    document = {
        "version": FORMAT_VERSION,
        "method": result.method,
        "wall_time_s": result.wall_time_s,
        "metrics": {
            "depth": result.depth(),
            "cx": result.gate_count,
            "swaps": result.swap_count,
            "ops": len(result.circuit),
        },
        "circuit": circuit_to_dict(result.circuit),
        "initial_mapping": mapping_to_dict(result.initial_mapping),
        "extra": {k: v for k, v in result.extra.items()
                  if isinstance(v, (str, int, float, bool))},
    }
    if result.program is not None:
        document["program"] = program_to_dict(result.program)
    return document


def compiled_result_from_dict(data: Dict) -> "CompiledResult":
    """Inverse of :func:`compiled_result_to_dict`."""
    from ..compiler.result import CompiledResult

    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported result format {data.get('version')}")
    result = CompiledResult(
        circuit=circuit_from_dict(data["circuit"]),
        initial_mapping=mapping_from_dict(data["initial_mapping"]),
        method=data["method"],
        wall_time_s=data.get("wall_time_s", 0.0),
    )
    if data.get("program") is not None:
        result.program = program_from_dict(data["program"])
    result.extra.update(data.get("extra", {}))
    return result


def save_result(result: "CompiledResult", path: str) -> None:
    """Write a compiled result to a JSON file."""
    with open(path, "w") as handle:
        json.dump(compiled_result_to_dict(result), handle)


def load_result(path: str) -> "CompiledResult":
    """Read a compiled result from a JSON file."""
    with open(path) as handle:
        return compiled_result_from_dict(json.load(handle))


def problem_to_dict(problem: "ProblemGraph") -> Dict:
    """Serialise a problem graph (edge weights included when present)."""
    document = {
        "version": FORMAT_VERSION,
        "name": problem.name,
        "n_vertices": problem.n_vertices,
        "edges": sorted(list(e) for e in problem.edges),
    }
    if problem.is_weighted:
        document["weights"] = [
            [u, v, problem.weight(u, v)]
            for u, v in sorted(problem.edges)]
    return document


def problem_from_dict(data: Dict) -> "ProblemGraph":
    """Inverse of :func:`problem_to_dict`."""
    from ..problems.graphs import ProblemGraph

    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported problem format {data.get('version')}")
    weights = None
    if data.get("weights") is not None:
        weights = {(u, v): w for u, v, w in data["weights"]}
    return ProblemGraph(data["n_vertices"],
                        [tuple(e) for e in data["edges"]],
                        name=data.get("name", ""),
                        weights=weights)
