"""Bidirectional logical<->physical qubit mapping.

A mapping is a bijection between logical qubits (problem-graph vertices) and
physical qubits (architecture nodes).  Architectures may have more physical
qubits than the problem has logical qubits; unused physical qubits map to
``None`` on the logical side but still participate in SWAPs (moving an idle
qubit is allowed and common in the structured patterns).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


class Mapping:
    """Mutable logical-to-physical qubit assignment.

    ``log_to_phys[l]`` is the physical home of logical qubit ``l``;
    ``phys_to_log[p]`` is the logical occupant of physical qubit ``p`` (or
    ``None`` for a spare qubit).
    """

    __slots__ = ("log_to_phys", "phys_to_log")

    def __init__(self, log_to_phys: Sequence[int], n_physical: int) -> None:
        if len(set(log_to_phys)) != len(log_to_phys):
            raise ValueError("initial mapping is not injective")
        self.log_to_phys: List[int] = list(log_to_phys)
        self.phys_to_log: List[Optional[int]] = [None] * n_physical
        for logical, physical in enumerate(log_to_phys):
            if not 0 <= physical < n_physical:
                raise ValueError(
                    f"physical qubit {physical} out of range 0..{n_physical - 1}")
            self.phys_to_log[physical] = logical

    @classmethod
    def trivial(cls, n_logical: int, n_physical: Optional[int] = None) -> "Mapping":
        """Identity placement: logical ``i`` on physical ``i``."""
        if n_physical is None:
            n_physical = n_logical
        if n_physical < n_logical:
            raise ValueError("not enough physical qubits")
        return cls(list(range(n_logical)), n_physical)

    @property
    def n_logical(self) -> int:
        return len(self.log_to_phys)

    @property
    def n_physical(self) -> int:
        return len(self.phys_to_log)

    def copy(self) -> "Mapping":
        clone = Mapping.__new__(Mapping)
        clone.log_to_phys = list(self.log_to_phys)
        clone.phys_to_log = list(self.phys_to_log)
        return clone

    def physical(self, logical: int) -> int:
        return self.log_to_phys[logical]

    def logical(self, physical: int) -> Optional[int]:
        return self.phys_to_log[physical]

    def swap_physical(self, u: int, v: int) -> None:
        """Apply a SWAP gate on physical qubits ``u`` and ``v``."""
        lu, lv = self.phys_to_log[u], self.phys_to_log[v]
        self.phys_to_log[u], self.phys_to_log[v] = lv, lu
        if lu is not None:
            self.log_to_phys[lu] = v
        if lv is not None:
            self.log_to_phys[lv] = u

    def apply_swaps(self, swaps: Iterable[tuple]) -> None:
        for u, v in swaps:
            self.swap_physical(u, v)

    def as_tuple(self) -> tuple:
        """Hashable snapshot of the physical occupancy (for solver states)."""
        return tuple(self.phys_to_log)

    def to_dict(self) -> Dict[int, int]:
        return dict(enumerate(self.log_to_phys))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return (self.log_to_phys == other.log_to_phys
                and self.phys_to_log == other.phys_to_log)

    def __repr__(self) -> str:
        return f"Mapping(log_to_phys={self.log_to_phys})"
