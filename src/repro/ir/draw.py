"""ASCII circuit rendering for debugging and examples.

Renders the ASAP cycle schedule, one column per cycle::

    q0: ─●──x─────
    q1: ─●──x──●──
    q2: ───────●──

``●`` marks a CPHASE endpoint, ``x`` a SWAP endpoint, letters mark
single-qubit gates.
"""

from __future__ import annotations

from typing import List

from .circuit import Circuit
from .gates import CPHASE, CX, H, PHASE, RX, RZ, SWAP

_SYMBOLS = {H: "H", RX: "X", RZ: "Z", PHASE: "P"}


def draw(circuit: Circuit, max_cycles: int = 60) -> str:
    """Render the circuit; wide circuits are truncated with an ellipsis."""
    layers = circuit.layers()
    truncated = len(layers) > max_cycles
    layers = layers[:max_cycles]
    n = circuit.n_qubits
    grid: List[List[str]] = [["─"] * len(layers) for _ in range(n)]
    for cycle, layer in enumerate(layers):
        for op in layer:
            if op.kind == CPHASE:
                for q in op.qubits:
                    grid[q][cycle] = "●"
            elif op.kind == SWAP:
                for q in op.qubits:
                    grid[q][cycle] = "x"
            elif op.kind == CX:
                control, target = op.qubits
                grid[control][cycle] = "●"
                grid[target][cycle] = "+"
            else:
                grid[op.qubits[0]][cycle] = _SYMBOLS.get(op.kind, "?")
    width = len(str(n - 1))
    rows = []
    for q in range(n):
        body = "──".join(grid[q])
        suffix = "…" if truncated else ""
        rows.append(f"q{q:<{width}}: ─{body}─{suffix}")
    return "\n".join(rows)
