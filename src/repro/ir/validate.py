"""Semantic validation of compiled circuits.

A compiled circuit is correct when, tracking the logical-to-physical mapping
through every SWAP:

1. every two-qubit operation acts on a coupled pair of physical qubits,
2. every problem-graph edge is realised by exactly one CPHASE whose physical
   qubits hold that logical pair at that moment, and
3. no CPHASE is applied to a pair that is not a problem edge (or to an edge
   that was already executed).

This is the ground-truth check used across the test-suite for every
compiler, baseline and structured pattern in the package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from ..exceptions import ValidationError
from .circuit import Circuit
from .gates import CPHASE, SWAP, canonical_edge, canonical_edges
from .mapping import Mapping
from .program import Program, layer_permutation


@dataclass
class ValidationReport:
    """Summary of a successful validation."""

    n_cphase: int = 0
    n_swap: int = 0
    executed_edges: Set[Tuple[int, int]] = field(default_factory=set)
    final_mapping: Optional[Mapping] = None

    @property
    def n_edges(self) -> int:
        """Number of distinct problem edges executed."""
        return len(self.executed_edges)


def validate_compiled(
    circuit: Circuit,
    coupling_edges: Iterable[Tuple[int, int]],
    initial_mapping: Mapping,
    problem_edges: Iterable[Tuple[int, int]],
    require_all_edges: bool = True,
    allow_repeats: bool = False,
) -> ValidationReport:
    """Check a compiled circuit against hardware and problem constraints.

    Parameters
    ----------
    circuit:
        The compiled circuit (physical-qubit operations).
    coupling_edges:
        Undirected hardware edges.
    initial_mapping:
        Placement of logical qubits at the start of the circuit.
    problem_edges:
        Logical problem-graph edges that must each receive one CPHASE.
    require_all_edges:
        When true (default) every problem edge must have been executed.
    allow_repeats:
        When true a problem edge may receive more than one CPHASE (needed
        for clique patterns that revisit pairs); gate counts still reflect
        every emitted gate.

    Returns
    -------
    ValidationReport

    Raises
    ------
    ValidationError
        On any constraint violation, with a message pinpointing the op.
    """
    hardware: FrozenSet[Tuple[int, int]] = canonical_edges(coupling_edges)
    required: FrozenSet[Tuple[int, int]] = canonical_edges(problem_edges)
    mapping = initial_mapping.copy()
    report = ValidationReport()

    for index, op in enumerate(circuit):
        if op.is_two_qubit:
            pair = canonical_edge(*op.qubits)
            if pair not in hardware:
                raise ValidationError(
                    f"op #{index} {op!r} acts on uncoupled physical pair {pair}")
        if op.kind == CPHASE:
            u, v = op.qubits
            lu, lv = mapping.logical(u), mapping.logical(v)
            if lu is None or lv is None:
                raise ValidationError(
                    f"op #{index} {op!r} touches a spare physical qubit "
                    f"(logical occupants: {lu}, {lv})")
            logical_edge = canonical_edge(lu, lv)
            if logical_edge not in required:
                raise ValidationError(
                    f"op #{index} {op!r} implements {logical_edge}, which is "
                    f"not a problem edge")
            if logical_edge in report.executed_edges and not allow_repeats:
                raise ValidationError(
                    f"op #{index} {op!r} repeats problem edge {logical_edge}")
            if op.tag is not None and canonical_edge(*op.tag) != logical_edge:
                raise ValidationError(
                    f"op #{index} {op!r} tag disagrees with tracked mapping "
                    f"({logical_edge})")
            report.executed_edges.add(logical_edge)
            report.n_cphase += 1
        elif op.kind == SWAP:
            mapping.swap_physical(*op.qubits)
            report.n_swap += 1

    if require_all_edges:
        missing = required - report.executed_edges
        if missing:
            sample = sorted(missing)[:5]
            raise ValidationError(
                f"{len(missing)} problem edges never executed "
                f"(first few: {sample})")

    report.final_mapping = mapping
    return report


def validate_program(program: Program) -> dict:
    """Per-layer mapping provenance plus the cancellation invariant.

    Each layer's recorded output mapping is re-derived from its circuit's
    SWAPs (a wrong record means the assembler and the circuit disagree),
    and after an even number of cost layers the reversed-layer
    optimization must have cancelled the net permutation exactly.
    Returns the plain-data record that lands in
    ``extra["validate"]["program"]``.
    """
    layer_records = []
    for index, layer in enumerate(program.layers):
        scanned = layer_permutation(
            layer.circuit, layer.input_mapping(program.n_qubits))
        if tuple(scanned.log_to_phys) != layer.output_log_to_phys:
            raise ValidationError(
                f"program layer {index} ({layer.role}) records output "
                f"mapping {list(layer.output_log_to_phys)} but its "
                f"SWAPs produce {list(scanned.log_to_phys)}")
        layer_records.append({
            "role": layer.role,
            "final_log_to_phys": list(layer.output_log_to_phys),
        })
    if program.p % 2 == 0 and not program.net_permutation_is_identity:
        raise ValidationError(
            f"program has an even number of cost layers ({program.p}) "
            f"but the net permutation is not the identity: "
            f"{list(program.final_log_to_phys)} != "
            f"{list(program.initial_mapping.log_to_phys)} — the "
            f"reversed-layer cancellation was not applied correctly")
    return {
        "p": program.p,
        "layers": layer_records,
        "final_log_to_phys": list(program.final_log_to_phys),
        "net_permutation_identity": program.net_permutation_is_identity,
    }
