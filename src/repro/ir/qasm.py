"""OpenQASM 2.0 export.

Compiled circuits can be handed to any external toolchain (Qiskit, tket,
simulators) for cross-validation.  The abstract gate set maps onto the
``qelib1`` standard library:

* ``cphase(g)`` -> ``cp(g)`` (emitted via its standard cu1 name)
* ``swap``      -> ``swap``
* ``cx/h/rx/rz/p`` -> themselves (``p`` as ``u1``)
"""

from __future__ import annotations

from typing import List, Optional

from .circuit import Circuit
from .gates import CPHASE, CX, H, PHASE, RX, RZ, SWAP, Op


def to_qasm(circuit: Circuit, measure: bool = False,
            comment: Optional[str] = None) -> str:
    """Serialise a circuit to an OpenQASM 2.0 program string."""
    lines: List[str] = []
    if comment:
        for row in comment.splitlines():
            lines.append(f"// {row}")
    lines.append("OPENQASM 2.0;")
    lines.append('include "qelib1.inc";')
    lines.append(f"qreg q[{circuit.n_qubits}];")
    if measure:
        lines.append(f"creg c[{circuit.n_qubits}];")
    for op in circuit:
        lines.append(_op_line(op))
    if measure:
        lines.append("measure q -> c;")
    return "\n".join(lines) + "\n"


def _op_line(op: Op) -> str:
    if op.kind == CPHASE:
        a, b = op.qubits
        return f"cu1({_angle(op.param)}) q[{a}],q[{b}];"
    if op.kind == SWAP:
        a, b = op.qubits
        return f"swap q[{a}],q[{b}];"
    if op.kind == CX:
        a, b = op.qubits
        return f"cx q[{a}],q[{b}];"
    if op.kind == H:
        return f"h q[{op.qubits[0]}];"
    if op.kind == RX:
        return f"rx({_angle(op.param)}) q[{op.qubits[0]}];"
    if op.kind == RZ:
        return f"rz({_angle(op.param)}) q[{op.qubits[0]}];"
    if op.kind == PHASE:
        return f"u1({_angle(op.param)}) q[{op.qubits[0]}];"
    raise ValueError(f"cannot serialise op kind {op.kind!r}")


def _angle(value: Optional[float]) -> str:
    return f"{float(value or 0.0):.12g}"


def from_qasm(text: str) -> Circuit:
    """Parse the subset of OpenQASM 2.0 emitted by :func:`to_qasm`.

    Round-trip support only — not a general QASM front-end.
    """
    import re

    n_qubits = None
    ops = []
    gate_re = re.compile(
        r"^(\w+)(?:\(([^)]*)\))?\s+q\[(\d+)\](?:,q\[(\d+)\])?;$")
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if (not line or line.startswith(("OPENQASM", "include", "creg",
                                         "measure"))):
            continue
        if line.startswith("qreg"):
            n_qubits = int(re.search(r"\[(\d+)\]", line).group(1))
            continue
        match = gate_re.match(line)
        if not match:
            raise ValueError(f"unsupported QASM line: {line!r}")
        name, param, a, b = match.groups()
        param = float(param) if param else None
        a = int(a)
        b = int(b) if b is not None else None
        if name == "cu1":
            ops.append(Op.cphase(a, b, param))
        elif name == "swap":
            ops.append(Op.swap(a, b))
        elif name == "cx":
            ops.append(Op.cx(a, b))
        elif name == "h":
            ops.append(Op.h(a))
        elif name == "rx":
            ops.append(Op.rx(a, param))
        elif name == "rz":
            ops.append(Op.rz(a, param))
        elif name == "u1":
            ops.append(Op.phase(a, param))
        else:
            raise ValueError(f"unsupported QASM gate: {name!r}")
    if n_qubits is None:
        raise ValueError("missing qreg declaration")
    return Circuit(n_qubits, ops)
