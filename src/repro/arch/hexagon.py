"""Hypothetical hexagon (honeycomb) architecture (Fig 12).

We use the paper's "dragged square layout" (Fig 12(b)): vertical columns are
the units; every column is a full chain, and horizontal inter-column links
exist only on alternating rows (``(r + c) % 2 == 0``).  Interior nodes have
degree 3, the honeycomb coordination.

Every adjacent column pair has a trivial Hamiltonian path (down one column,
cross the single top link, down the other), which is what the paper uses to
"connect a line for all nodes in every two adjacent units" (Section 3.2.2).
"""

from __future__ import annotations

from typing import List

from .coupling import CouplingGraph


def hexagon_node(r: int, c: int, rows: int) -> int:
    """Column-major node id (units are columns)."""
    return c * rows + r


def hexagon_pair_path(c: int, rows: int) -> List[int]:
    """Hamiltonian path through columns ``c`` and ``c+1``.

    Runs bottom-to-top in column ``c``, crosses the top link, then
    top-to-bottom in column ``c+1``.  The top link ``(0, c)-(0, c+1)``
    exists when ``c`` is even; otherwise the bottom link is used (its row
    parity complements the column's).
    """
    up = [hexagon_node(r, c, rows) for r in range(rows - 1, -1, -1)]
    down = [hexagon_node(r, c + 1, rows) for r in range(rows)]
    if c % 2 == 0:
        return up + down  # cross at row 0
    # Links sit at odd rows; cross at the bottom (row rows-1) when it is
    # linked, otherwise at the highest linked row after walking down.
    if (rows - 1 + c) % 2 == 0:
        down_first = [hexagon_node(r, c, rows) for r in range(rows)]
        up_second = [hexagon_node(r, c + 1, rows) for r in range(rows - 1, -1, -1)]
        return down_first + up_second
    raise ValueError(
        f"no end link between hexagon columns {c} and {c + 1} for rows={rows}")


def hexagon(rows: int, cols: int) -> CouplingGraph:
    """A honeycomb lattice with ``cols`` columns of ``rows`` qubits.

    ``rows`` must be even so that every column pair has an end link (even
    columns link at row 0, odd columns at row ``rows-1``).

    Metadata: ``rows`` / ``cols`` and ``units`` (one per column).
    """
    if rows % 2 != 0:
        raise ValueError("hexagon requires an even number of rows")
    edges = []
    for c in range(cols):
        for r in range(rows - 1):
            edges.append((hexagon_node(r, c, rows), hexagon_node(r + 1, c, rows)))
    for c in range(cols - 1):
        for r in range(rows):
            if (r + c) % 2 == 0:
                edges.append((hexagon_node(r, c, rows),
                              hexagon_node(r, c + 1, rows)))
    units = [[hexagon_node(r, c, rows) for r in range(rows)]
             for c in range(cols)]
    return CouplingGraph(
        rows * cols,
        edges,
        name=f"hexagon-{rows}x{cols}",
        kind="hexagon",
        metadata={"rows": rows, "cols": cols, "units": units},
    )
