"""Google Sycamore architecture (rotated square lattice).

We model Sycamore the way the paper's Fig 10 does: horizontal *units* (rows)
of equal width, adjacent rows joined by a zig-zag of diagonal couplers.
Concretely, node ``(r, c)`` couples to ``(r+1, c)`` always, plus
``(r+1, c+1)`` when ``r`` is even and ``(r+1, c-1)`` when ``r`` is odd.
Interior nodes then have degree 4, exactly the rotated-grid coordination of
the Sycamore chip, and every adjacent row pair is linked by a zig-zag line
covering all ``2*cols`` nodes (Fig 10(c)) — the structure both the 1xUnit
and 2xUnit solutions rely on.
"""

from __future__ import annotations

from typing import List

from .coupling import CouplingGraph


def sycamore_node(r: int, c: int, cols: int) -> int:
    """Row-major node id for row ``r``, column ``c``."""
    return r * cols + c


def sycamore_pair_path(r: int, cols: int) -> List[int]:
    """Zig-zag Hamiltonian path through rows ``r`` and ``r+1``.

    For even ``r`` the chain is ``(r+1,0), (r,0), (r+1,1), (r,1), ...``;
    for odd ``r`` it is ``(r,0), (r+1,0), (r,1), (r+1,1), ...``.  Both use
    only edges present in :func:`sycamore`.
    """
    path: List[int] = []
    for c in range(cols):
        if r % 2 == 0:
            path.append(sycamore_node(r + 1, c, cols))
            path.append(sycamore_node(r, c, cols))
        else:
            path.append(sycamore_node(r, c, cols))
            path.append(sycamore_node(r + 1, c, cols))
    return path


def sycamore(rows: int, cols: int) -> CouplingGraph:
    """A ``rows x cols`` Sycamore-style rotated lattice.

    Metadata:

    * ``rows`` / ``cols`` — shape.
    * ``units`` — one unit per row (Fig 10(a)).
    """
    edges = []
    for r in range(rows - 1):
        for c in range(cols):
            edges.append((sycamore_node(r, c, cols),
                          sycamore_node(r + 1, c, cols)))
            if r % 2 == 0 and c + 1 < cols:
                edges.append((sycamore_node(r, c, cols),
                              sycamore_node(r + 1, c + 1, cols)))
            if r % 2 == 1 and c - 1 >= 0:
                edges.append((sycamore_node(r, c, cols),
                              sycamore_node(r + 1, c - 1, cols)))
    units = [[sycamore_node(r, c, cols) for c in range(cols)]
             for r in range(rows)]
    return CouplingGraph(
        rows * cols,
        edges,
        name=f"sycamore-{rows}x{cols}",
        kind="sycamore",
        metadata={"rows": rows, "cols": cols, "units": units},
    )


def sycamore_for(n_logical: int) -> CouplingGraph:
    """Smallest near-square Sycamore holding ``n_logical`` qubits."""
    import math

    rows = max(2, int(math.floor(math.sqrt(n_logical))))
    cols = rows
    while rows * cols < n_logical:
        if cols <= rows:
            cols += 1
        else:
            rows += 1
    return sycamore(rows, cols)
