"""Synthetic device calibration (Factor III, Section 5.3).

Real IBM backends expose per-edge CX error rates, per-qubit readout errors
and crosstalk between adjacent parallel CX gates.  We generate a seeded
synthetic calibration with the same statistics (log-normal CX errors with a
median near 7e-3, as on Falcon-generation devices) so that the noise-aware
parts of the compiler — minimum-weight-perfect-matching SWAP placement and
crosstalk-aware gate scheduling — exercise realistic variability.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Tuple

import numpy as np

from ..ir.circuit import Circuit
from ..ir.decompose import fusion_units, _FUSED
from ..ir.gates import CPHASE, CX, SWAP, canonical_edge
from .coupling import CouplingGraph


class NoiseModel:
    """Per-edge / per-qubit error rates for one device instance.

    Parameters
    ----------
    coupling:
        The device topology.
    seed:
        Seed for the synthetic calibration draw.
    cx_error_median / cx_error_sigma:
        Log-normal parameters of two-qubit gate error.
    sq_error:
        Uniform single-qubit gate error (small, near-constant on hardware).
    readout_error_median:
        Log-normal median of per-qubit readout error.
    """

    def __init__(
        self,
        coupling: CouplingGraph,
        seed: int = 7,
        cx_error_median: float = 7e-3,
        cx_error_sigma: float = 0.45,
        sq_error: float = 1e-4,
        readout_error_median: float = 2e-2,
    ) -> None:
        self.coupling = coupling
        rng = np.random.default_rng(seed)
        self.cx_error: Dict[Tuple[int, int], float] = {}
        for edge in sorted(coupling.edges):
            draw = float(rng.lognormal(math.log(cx_error_median),
                                       cx_error_sigma))
            self.cx_error[edge] = min(max(draw, 1e-3), 8e-2)
        self.sq_error = sq_error
        self.readout_error: Dict[int, float] = {}
        for q in range(coupling.n_qubits):
            draw = float(rng.lognormal(math.log(readout_error_median), 0.4))
            self.readout_error[q] = min(max(draw, 5e-3), 1.2e-1)
        self._crosstalk: FrozenSet = None  # computed lazily (O(E^2))

    # -- queries ------------------------------------------------------------------

    def edge_error(self, u: int, v: int) -> float:
        """CX error rate of the coupling between ``u`` and ``v``."""
        return self.cx_error[canonical_edge(u, v)]

    @property
    def crosstalk_pairs(self) -> FrozenSet:
        """Pairs of couplings that suffer crosstalk when driven in parallel.

        Two disjoint edges cross-talk when some endpoint of one is directly
        coupled to some endpoint of the other (nearest-neighbour parallel
        CXs, the dominant mechanism on fixed-frequency devices).
        """
        if self._crosstalk is None:
            self._crosstalk = frozenset(
                tuple(sorted(pair)) for pair in _crosstalk_pairs(self.coupling))
        return self._crosstalk

    def in_crosstalk(self, e1: Tuple[int, int], e2: Tuple[int, int]) -> bool:
        """Whether two couplings suffer crosstalk when driven in parallel."""
        key = tuple(sorted((canonical_edge(*e1), canonical_edge(*e2))))
        return key in self.crosstalk_pairs

    # -- circuit-level figures of merit ---------------------------------------

    def cx_per_edge(self, circuit: Circuit) -> Dict[Tuple[int, int], int]:
        """Decomposed CX counts per physical coupling (fusion-aware)."""
        counts: Dict[Tuple[int, int], int] = {}
        for unit_kind, ops in fusion_units(circuit):
            op = ops[0]
            if not op.is_two_qubit:
                continue
            edge = canonical_edge(*op.qubits)
            if unit_kind == _FUSED:
                n_cx = 3
            elif op.kind == CPHASE:
                n_cx = 2
            elif op.kind == SWAP:
                n_cx = 3
            elif op.kind == CX:
                n_cx = 1
            else:
                continue
            counts[edge] = counts.get(edge, 0) + n_cx
        return counts

    def esp(self, circuit: Circuit, include_readout: bool = False) -> float:
        """Estimated success probability: product of gate success rates."""
        log_esp = 0.0
        for edge, n_cx in self.cx_per_edge(circuit).items():
            log_esp += n_cx * math.log1p(-self.cx_error[edge])
        n_single = sum(1 for op in circuit if len(op.qubits) == 1)
        log_esp += n_single * math.log1p(-self.sq_error)
        if include_readout:
            for q in range(circuit.n_qubits):
                log_esp += math.log1p(-self.readout_error[q])
        return math.exp(log_esp)


def _crosstalk_pairs(coupling: CouplingGraph):
    edges = sorted(coupling.edges)
    adjacent = {q: set(coupling.neighbors(q)) for q in range(coupling.n_qubits)}
    for i, e1 in enumerate(edges):
        for e2 in edges[i + 1:]:
            if set(e1) & set(e2):
                continue  # sharing a qubit is a scheduling conflict, not crosstalk
            if any(b in adjacent[a] for a in e1 for b in e2):
                yield (e1, e2)


def uniform_noise_model(coupling: CouplingGraph,
                        cx_error: float = 7e-3) -> NoiseModel:
    """A calibration with no variability (for ablations)."""
    model = NoiseModel(coupling)
    for edge in model.cx_error:
        model.cx_error[edge] = cx_error
    for q in model.readout_error:
        model.readout_error[q] = 2e-2
    return model
