"""Line (1D chain) architecture — the paper's 1xUnit building block."""

from __future__ import annotations

from .coupling import CouplingGraph


def line(n_qubits: int) -> CouplingGraph:
    """A 1D chain ``0 - 1 - ... - n-1``.

    Metadata: ``path`` — the Hamiltonian path (trivially the identity order),
    which the line ATA pattern and range detection consume.
    """
    edges = [(i, i + 1) for i in range(n_qubits - 1)]
    return CouplingGraph(
        n_qubits,
        edges,
        name=f"line-{n_qubits}",
        kind="line",
        metadata={"path": list(range(n_qubits))},
    )
