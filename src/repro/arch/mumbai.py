"""IBM Mumbai-like 27-qubit Falcon device (used for "real machine" runs).

The coupling map is the standard 27-qubit Falcon heavy-hex.  The paper runs
end-to-end QAOA on the real device; we substitute the same topology with a
synthetic noise calibration (see DESIGN.md, Substitutions).
"""

from __future__ import annotations

from .coupling import CouplingGraph

#: Standard IBM Falcon r5.11 (Mumbai / Montreal / ...) coupling map.
MUMBAI_EDGES = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]

#: A longest simple path through the device (21 of 27 qubits); found by
#: inspection and checked in tests.  The remaining six qubits are leaves
#: hanging off the path.
MUMBAI_PATH = [6, 7, 4, 1, 2, 3, 5, 8, 11, 14, 13, 12,
               15, 18, 21, 23, 24, 25, 22, 19, 16]


def mumbai() -> CouplingGraph:
    """The 27-qubit Mumbai-like device with heavy-hex path metadata."""
    on_path = set(MUMBAI_PATH)
    adjacency = {q: [] for q in range(27)}
    for u, v in MUMBAI_EDGES:
        adjacency[u].append(v)
        adjacency[v].append(u)
    off_path = {
        q: [p for p in adjacency[q] if p in on_path]
        for q in range(27) if q not in on_path
    }
    return CouplingGraph(
        27,
        MUMBAI_EDGES,
        name="ibm-mumbai",
        kind="heavyhex",
        metadata={"path": MUMBAI_PATH, "off_path": off_path},
    )
