"""Hardware coupling graphs.

A :class:`CouplingGraph` is an undirected graph over physical qubits
``0..n-1`` plus the *structural metadata* that the paper's regularity-aware
patterns exploit (row units, snake paths, the heavy-hex longest path).
Generators for each architecture live in sibling modules and attach the
metadata they guarantee.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from .._telemetry import CacheCounter, register_cache
from ..exceptions import ArchitectureError
from ..ir.gates import canonical_edge

_UNREACHABLE = np.iinfo(np.int32).max

#: Process-local memo of BFS all-pairs matrices, keyed by graph structure.
#: Re-instantiating the same architecture (a batch sweep, a worker process
#: handling many jobs) reuses the O(V*E) computation; the cached array is
#: frozen read-only so instances can share it safely.
_DISTANCE_CACHE: Dict[tuple, np.ndarray] = {}
_DISTANCE_CACHE_CAP = 128
_DISTANCE_COUNTER = register_cache(
    "distance_matrix", CacheCounter("distance_matrix"),
    lambda: len(_DISTANCE_CACHE), lambda: _DISTANCE_CACHE.clear())


def distance_cache_info() -> Dict[str, int]:
    """Hits/misses/size of the process-local distance-matrix cache."""
    info = _DISTANCE_COUNTER.snapshot()
    info["size"] = len(_DISTANCE_CACHE)
    return info


def clear_distance_cache() -> None:
    """Drop every memoized distance matrix and zero the counters."""
    _DISTANCE_CACHE.clear()
    _DISTANCE_COUNTER.reset()


class CouplingGraph:
    """Undirected hardware connectivity with cached all-pairs distances.

    Parameters
    ----------
    n_qubits:
        Number of physical qubits (ids ``0..n_qubits-1``).
    edges:
        Undirected couplings.
    name:
        Human-readable identifier (e.g. ``"heavyhex-6x10"``).
    kind:
        Architecture family: ``line``, ``grid``, ``sycamore``, ``hexagon``,
        ``heavyhex`` or ``generic``.  The ATA pattern registry dispatches on
        this.
    metadata:
        Family-specific structure (see the generator modules).
    """

    def __init__(
        self,
        n_qubits: int,
        edges: Iterable[Tuple[int, int]],
        name: str = "",
        kind: str = "generic",
        metadata: Optional[Dict] = None,
    ) -> None:
        if n_qubits <= 0:
            raise ArchitectureError("architecture needs at least one qubit")
        self.n_qubits = n_qubits
        self.name = name or f"{kind}-{n_qubits}"
        self.kind = kind
        self.metadata: Dict = dict(metadata or {})

        edge_set = set()
        adjacency: List[List[int]] = [[] for _ in range(n_qubits)]
        for u, v in edges:
            if u == v:
                raise ArchitectureError(f"self-coupling on qubit {u}")
            if not (0 <= u < n_qubits and 0 <= v < n_qubits):
                raise ArchitectureError(f"edge ({u}, {v}) out of range")
            pair = canonical_edge(u, v)
            if pair in edge_set:
                continue
            edge_set.add(pair)
            adjacency[u].append(v)
            adjacency[v].append(u)
        self._edges: FrozenSet[Tuple[int, int]] = frozenset(edge_set)
        self._adjacency = [tuple(sorted(nbrs)) for nbrs in adjacency]
        self._distances: Optional[np.ndarray] = None

    # -- topology -----------------------------------------------------------------

    @property
    def edges(self) -> FrozenSet[Tuple[int, int]]:
        """Canonicalised undirected couplings."""
        return self._edges

    @property
    def n_edges(self) -> int:
        """Number of couplings."""
        return len(self._edges)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are directly coupled."""
        return canonical_edge(u, v) in self._edges

    def neighbors(self, q: int) -> Tuple[int, ...]:
        """Sorted physical neighbours of ``q``."""
        return self._adjacency[q]

    def degree(self, q: int) -> int:
        """Number of couplings incident to ``q``."""
        return len(self._adjacency[q])

    def max_degree(self) -> int:
        """Largest qubit degree (3 on heavy-hex, 4 on Sycamore, ...)."""
        return max(self.degree(q) for q in range(self.n_qubits))

    # -- distances ----------------------------------------------------------------

    def _structure_key(self) -> tuple:
        """Hashable identity of the connectivity (what distances depend on)."""
        return (self.kind, self.n_qubits, self._edges)

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path hop counts (int32, computed lazily and
        memoized process-wide by graph structure; the returned array is
        read-only)."""
        if self._distances is None:
            key = self._structure_key()
            cached = _DISTANCE_CACHE.get(key)
            if cached is None:
                _DISTANCE_COUNTER.miss()
                cached = self._bfs_all_pairs()
                cached.setflags(write=False)
                if len(_DISTANCE_CACHE) >= _DISTANCE_CACHE_CAP:
                    _DISTANCE_CACHE.pop(next(iter(_DISTANCE_CACHE)))
                _DISTANCE_CACHE[key] = cached
            else:
                _DISTANCE_COUNTER.hit()
            self._distances = cached
        return self._distances

    def distance(self, u: int, v: int) -> int:
        """Shortest-path hop count; raises if disconnected."""
        d = int(self.distance_matrix[u, v])
        if d == _UNREACHABLE:
            raise ArchitectureError(f"qubits {u} and {v} are disconnected")
        return d

    def is_connected(self) -> bool:
        """Whether every qubit can reach every other."""
        return bool((self.distance_matrix[0] != _UNREACHABLE).all())

    def _bfs_all_pairs(self) -> np.ndarray:
        n = self.n_qubits
        dist = np.full((n, n), _UNREACHABLE, dtype=np.int32)
        for source in range(n):
            row = dist[source]
            row[source] = 0
            frontier = [source]
            depth = 0
            while frontier:
                depth += 1
                next_frontier = []
                for u in frontier:
                    for v in self._adjacency[u]:
                        if row[v] == _UNREACHABLE:
                            row[v] = depth
                            next_frontier.append(v)
                frontier = next_frontier
        return dist

    # -- misc ---------------------------------------------------------------------

    def to_networkx(self):
        """Export as a networkx.Graph (lazy import)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_qubits))
        graph.add_edges_from(self._edges)
        return graph

    def shortest_path(self, u: int, v: int) -> List[int]:
        """One BFS shortest path from u to v (inclusive)."""
        if u == v:
            return [u]
        parent = {u: None}
        frontier = [u]
        while frontier:
            next_frontier = []
            for a in frontier:
                for b in self._adjacency[a]:
                    if b not in parent:
                        parent[b] = a
                        if b == v:
                            path = [v]
                            while path[-1] != u:
                                path.append(parent[path[-1]])
                            return list(reversed(path))
                        next_frontier.append(b)
            frontier = next_frontier
        raise ArchitectureError(f"qubits {u} and {v} are disconnected")

    def __repr__(self) -> str:
        return (f"CouplingGraph({self.name!r}, n_qubits={self.n_qubits}, "
                f"edges={self.n_edges})")
