"""IBM heavy-hex architecture (Fig 1(b), Fig 16).

Layout: ``rows`` horizontal chains of ``width`` qubits, joined by *bridge*
qubits.  Bridges in the gap below row ``r`` sit at alternating column sets:

* even gaps: columns ``2, 6, 10, ...`` plus the right end ``width-1``;
* odd gaps:  columns ``0, 4, 8, ...``.

With ``width % 4 == 2`` no row qubit carries two bridges (max degree 3, the
heavy-hex coordination), and a boustrophedon **longest path** exists: row 0
left-to-right, end bridge down, row 1 right-to-left, end bridge down, ...
Only the interior bridges are off-path — exactly the lettered nodes of
Fig 16.

Metadata attached:

* ``rows`` / ``width`` — shape.
* ``path`` — the longest path as a node list.
* ``off_path`` — mapping from each off-path (interior bridge) node to its
  on-path neighbours.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .coupling import CouplingGraph


def _bridge_columns(gap: int, width: int) -> List[int]:
    if gap % 2 == 0:
        interior = list(range(2, width - 1, 4))
        return interior + [width - 1]
    return list(range(0, width - 1, 4))


def heavyhex(rows: int, width: int = 10) -> CouplingGraph:
    """Build a heavy-hex lattice; ``width % 4 == 2`` required."""
    if width % 4 != 2:
        raise ValueError("heavy-hex width must be ≡ 2 (mod 4)")
    if rows < 1:
        raise ValueError("heavy-hex needs at least one row")

    def row_node(r: int, c: int) -> int:
        """Id of the row qubit at row ``r``, column ``c``."""
        return r * width + c

    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(width - 1):
            edges.append((row_node(r, c), row_node(r, c + 1)))

    next_id = rows * width
    bridges: Dict[int, Tuple[int, int]] = {}  # bridge node -> (top, bottom)
    end_bridges: Dict[int, int] = {}  # gap -> bridge node on the snake
    for gap in range(rows - 1):
        for c in _bridge_columns(gap, width):
            bridge = next_id
            next_id += 1
            top, bottom = row_node(gap, c), row_node(gap + 1, c)
            edges.append((bridge, top))
            edges.append((bridge, bottom))
            bridges[bridge] = (top, bottom)
            snake_column = width - 1 if gap % 2 == 0 else 0
            if c == snake_column:
                end_bridges[gap] = bridge

    path: List[int] = []
    for r in range(rows):
        cs = range(width) if r % 2 == 0 else range(width - 1, -1, -1)
        path.extend(row_node(r, c) for c in cs)
        if r in end_bridges:
            path.append(end_bridges[r])

    on_path = set(path)
    off_path = {bridge: [q for q in pair]
                for bridge, pair in bridges.items() if bridge not in on_path}

    return CouplingGraph(
        next_id,
        edges,
        name=f"heavyhex-{rows}x{width}",
        kind="heavyhex",
        metadata={
            "rows": rows,
            "width": width,
            "path": path,
            "off_path": off_path,
        },
    )


def heavyhex_for(n_logical: int) -> CouplingGraph:
    """Smallest near-square heavy-hex with at least ``n_logical`` qubits."""
    width = max(6, int(round(math.sqrt(4 * n_logical / 5))))
    width += (2 - width % 4) % 4  # round up to ≡ 2 (mod 4)
    rows = 1
    while _total_qubits(rows, width) < n_logical:
        rows += 1
    return heavyhex(rows, width)


def _total_qubits(rows: int, width: int) -> int:
    total = rows * width
    for gap in range(rows - 1):
        total += len(_bridge_columns(gap, width))
    return total
