"""3D cubic lattice — the "beyond two dimensions" discussion of Fig 13.

The paper notes that its divide-and-conquer extends to multi-dimensional
architectures: a 3D lattice splits into planes, planes into rows, rows
into nodes.  We provide the lattice here and the plane-level composition
in :mod:`repro.ata.cube_pattern`.
"""

from __future__ import annotations

from typing import List

from .coupling import CouplingGraph


def cube_node(x: int, y: int, z: int, nx: int, ny: int) -> int:
    """Node id: planes are z-slices, row-major inside a plane."""
    return (z * ny + y) * nx + x


def plane_snake(z: int, nx: int, ny: int) -> List[int]:
    """Boustrophedon Hamiltonian path through plane ``z``."""
    path: List[int] = []
    for y in range(ny):
        xs = range(nx) if y % 2 == 0 else range(nx - 1, -1, -1)
        path.extend(cube_node(x, y, z, nx, ny) for x in xs)
    return path


def cube(nx: int, ny: int, nz: int) -> CouplingGraph:
    """An ``nx x ny x nz`` cubic lattice.

    Metadata: ``dims`` and ``planes`` (z-slice node lists).  Within a
    plane the usual 2D grid edges exist; across planes every site couples
    to the same site of the next plane.
    """
    edges = []
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                node = cube_node(x, y, z, nx, ny)
                if x + 1 < nx:
                    edges.append((node, cube_node(x + 1, y, z, nx, ny)))
                if y + 1 < ny:
                    edges.append((node, cube_node(x, y + 1, z, nx, ny)))
                if z + 1 < nz:
                    edges.append((node, cube_node(x, y, z + 1, nx, ny)))
    planes = [[cube_node(x, y, z, nx, ny)
               for y in range(ny) for x in range(nx)]
              for z in range(nz)]
    return CouplingGraph(
        nx * ny * nz,
        edges,
        name=f"cube-{nx}x{ny}x{nz}",
        kind="cube",
        metadata={"dims": (nx, ny, nz), "planes": planes},
    )
