"""ASCII layout rendering for the regular architectures.

Useful for docs, examples and debugging pattern construction — the
renderings make the unit structure (rows / columns / planes / snake)
visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List

from .coupling import CouplingGraph


def draw_architecture(coupling: CouplingGraph) -> str:
    """Render a coupling graph's layout as ASCII art."""
    kind = coupling.kind
    if kind == "line":
        return _draw_line(coupling)
    if kind == "grid":
        return _draw_grid(coupling)
    if kind == "sycamore":
        return _draw_sycamore(coupling)
    if kind == "hexagon":
        return _draw_hexagon(coupling)
    if kind == "heavyhex":
        return _draw_heavyhex(coupling)
    return f"<no layout renderer for kind {kind!r}>"


def _fmt(q: int) -> str:
    return f"{q:>3}"


def _draw_line(coupling: CouplingGraph) -> str:
    path = coupling.metadata.get("path", range(coupling.n_qubits))
    return " — ".join(_fmt(q).strip() for q in path)


def _draw_grid(coupling: CouplingGraph) -> str:
    units = coupling.metadata["units"]
    lines: List[str] = []
    for r, unit in enumerate(units):
        lines.append(" — ".join(_fmt(q) for q in unit))
        if r + 1 < len(units):
            lines.append("   ".join(" | " for _ in unit))
    return "\n".join(lines)


def _draw_sycamore(coupling: CouplingGraph) -> str:
    units = coupling.metadata["units"]
    lines: List[str] = []
    for r, unit in enumerate(units):
        indent = "  " if r % 2 == 1 else ""
        lines.append(indent + "    ".join(_fmt(q) for q in unit))
        if r + 1 < len(units):
            slashes = r"| \ " if r % 2 == 0 else r"/ | "
            lines.append(("  " if r % 2 == 0 else "  ")
                         + "   ".join(slashes for _ in unit))
    return "\n".join(lines)


def _draw_hexagon(coupling: CouplingGraph) -> str:
    rows = coupling.metadata["rows"]
    cols = coupling.metadata["cols"]
    units = coupling.metadata["units"]
    lines: List[str] = []
    for r in range(rows):
        cells = []
        for c in range(cols):
            sep = " — " if c + 1 < cols and (r + c) % 2 == 0 else "   "
            cells.append(_fmt(units[c][r]) + sep)
        lines.append("".join(cells).rstrip())
        if r + 1 < rows:
            lines.append("".join("  |   " for _ in range(cols)).rstrip())
    return "\n".join(lines)


def _draw_heavyhex(coupling: CouplingGraph) -> str:
    rows = coupling.metadata.get("rows")
    width = coupling.metadata.get("width")
    if rows is None or width is None:
        return "<irregular heavy-hex device; no grid layout>"
    bridge_between: Dict[tuple, int] = {}
    for q in range(rows * width, coupling.n_qubits):
        nbrs = coupling.neighbors(q)
        top = min(nbrs)
        bridge_between[(top // width, top % width)] = q
    lines: List[str] = []
    for r in range(rows):
        lines.append(" — ".join(_fmt(r * width + c) for c in range(width)))
        if r + 1 < rows:
            cells = []
            for c in range(width):
                bridge = bridge_between.get((r, c))
                cells.append(_fmt(bridge) if bridge is not None else "   ")
            lines.append("   ".join(cells).rstrip())
    return "\n".join(lines)
