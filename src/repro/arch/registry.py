"""Architecture factory keyed by family name.

``architecture_for(kind, n_logical)`` returns the smallest instance of a
family that fits ``n_logical`` qubits — the sizing rule of Section 7.1
("we use the minimum size of architecture that can handle the corresponding
input problem graph").
"""

from __future__ import annotations

import math

from ..exceptions import ArchitectureError
from .coupling import CouplingGraph
from .cube import cube
from .grid import grid, square_grid_for
from .heavyhex import heavyhex, heavyhex_for
from .hexagon import hexagon
from .line import line
from .mumbai import mumbai
from .sycamore import sycamore, sycamore_for

_FAMILIES = ("line", "grid", "sycamore", "hexagon", "heavyhex",
              "mumbai", "cube")


def architecture_for(kind: str, n_logical: int) -> CouplingGraph:
    """Smallest ``kind`` architecture with at least ``n_logical`` qubits."""
    if kind == "line":
        return line(n_logical)
    if kind == "grid":
        return square_grid_for(n_logical)
    if kind == "sycamore":
        return sycamore_for(n_logical)
    if kind == "hexagon":
        rows = max(2, int(math.floor(math.sqrt(n_logical))))
        rows += rows % 2
        cols = max(1, -(-n_logical // rows))
        return hexagon(rows, cols)
    if kind == "heavyhex":
        return heavyhex_for(n_logical)
    if kind == "cube":
        side = max(2, round(n_logical ** (1 / 3)))
        dims = [side, side, side]
        axis = 0
        while dims[0] * dims[1] * dims[2] < n_logical:
            dims[axis % 3] += 1
            axis += 1
        return cube(*dims)
    if kind == "mumbai":
        device = mumbai()
        if n_logical > device.n_qubits:
            raise ArchitectureError(
                f"mumbai has 27 qubits, problem needs {n_logical}")
        return device
    raise ArchitectureError(
        f"unknown architecture kind {kind!r}; expected one of {_FAMILIES}")


__all__ = ["architecture_for", "line", "grid", "sycamore", "hexagon",
           "heavyhex", "mumbai"]
