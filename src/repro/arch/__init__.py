"""Hardware architectures with regular structure (Section 2 / Fig 1).

Families: :func:`line`, :func:`grid`, :func:`sycamore`, :func:`hexagon`,
:func:`heavyhex` (parametric) and :func:`mumbai` (fixed 27-qubit Falcon).
All carry metadata the ATA patterns consume.  :class:`NoiseModel` provides
a synthetic calibration with realistic variability.
"""

from .coupling import CouplingGraph
from .draw import draw_architecture
from .cube import cube, cube_node, plane_snake
from .grid import grid, grid_node, square_grid_for
from .heavyhex import heavyhex, heavyhex_for
from .hexagon import hexagon, hexagon_node, hexagon_pair_path
from .line import line
from .mumbai import MUMBAI_EDGES, MUMBAI_PATH, mumbai
from .noise import NoiseModel, uniform_noise_model
from .registry import architecture_for
from .sycamore import sycamore, sycamore_for, sycamore_node, sycamore_pair_path

__all__ = [
    "CouplingGraph",
    "draw_architecture",
    "NoiseModel",
    "uniform_noise_model",
    "architecture_for",
    "line",
    "cube",
    "cube_node",
    "plane_snake",
    "grid",
    "grid_node",
    "square_grid_for",
    "sycamore",
    "sycamore_for",
    "sycamore_node",
    "sycamore_pair_path",
    "hexagon",
    "hexagon_node",
    "hexagon_pair_path",
    "heavyhex",
    "heavyhex_for",
    "mumbai",
    "MUMBAI_EDGES",
    "MUMBAI_PATH",
]
