"""2D grid architecture (Section 3.1 case study)."""

from __future__ import annotations

from typing import List

from .coupling import CouplingGraph


def grid_node(r: int, c: int, cols: int) -> int:
    """Row-major node id."""
    return r * cols + c


def grid(rows: int, cols: int) -> CouplingGraph:
    """A ``rows x cols`` grid.

    Metadata:

    * ``rows`` / ``cols`` — shape.
    * ``units`` — one unit per row (Fig 5), as lists of node ids.
    * ``path`` — boustrophedon (snake) Hamiltonian path, used by the
      snake-line ablation baseline and by range detection.
    """
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((grid_node(r, c, cols), grid_node(r, c + 1, cols)))
            if r + 1 < rows:
                edges.append((grid_node(r, c, cols), grid_node(r + 1, c, cols)))
    units: List[List[int]] = [
        [grid_node(r, c, cols) for c in range(cols)] for r in range(rows)]
    path: List[int] = []
    for r in range(rows):
        cs = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
        path.extend(grid_node(r, c, cols) for c in cs)
    return CouplingGraph(
        rows * cols,
        edges,
        name=f"grid-{rows}x{cols}",
        kind="grid",
        metadata={"rows": rows, "cols": cols, "units": units, "path": path},
    )


def square_grid_for(n_logical: int) -> CouplingGraph:
    """Smallest near-square grid with at least ``n_logical`` qubits.

    The paper uses "the minimum size of architecture that can handle the
    corresponding input problem graph" (Section 7.1).
    """
    import math

    rows = max(1, int(math.floor(math.sqrt(n_logical))))
    cols = rows
    while rows * cols < n_logical:
        if cols <= rows:
            cols += 1
        else:
            rows += 1
    return grid(rows, cols)
