"""CK030 — knob-schema agreement between registry and pipeline.

A :class:`~repro.pipeline.registry.MethodSpec` declares the knob names
its method understands; passes read knobs through
``context.knob("name", default)``.  The two drift silently: a pass can
grow a knob read that no spec declares, and because ``context.knob``
defaults instead of raising, callers who set the knob through a method
that never forwards it get the default with no error.  This rule flags
every knob read inside a ``Pass`` subclass whose name is not declared
by any registered method.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional

from ..lint.diagnostics import ERROR
from .base import CheckerRule, ModuleContext, RuleVisitor, checker


@checker(
    "CK030", "undeclared-knob", ERROR,
    "A Pass subclass reads a knob that no registered MethodSpec "
    "declares; the knob silently defaults for every caller that sets "
    "it through an undeclaring method.",
    "declare the knob on the owning MethodSpec(s) in "
    "repro/pipeline/registry.py (paper knobs additionally belong in "
    "presets.PAPER_KNOBS)")
class KnobDeclarationVisitor(RuleVisitor):
    """Flag ``context.knob("x")`` / ``.knobs["x"]`` reads of knob names
    absent from the union of every registered method's declaration."""

    def __init__(self, rule: CheckerRule, module: ModuleContext) -> None:
        super().__init__(rule, module)
        #: Nesting of ClassDefs; True where the class looks like a Pass.
        self._class_stack: List[bool] = []
        self._declared: Optional[FrozenSet[str]] = None

    def _declared_knobs(self) -> FrozenSet[str]:
        if self._declared is None:
            from ..pipeline.registry import declared_knobs

            self._declared = declared_knobs()
        return self._declared

    @staticmethod
    def _is_pass_base(base: ast.expr) -> bool:
        if isinstance(base, ast.Name):
            return base.id.endswith("Pass")
        if isinstance(base, ast.Attribute):
            return base.attr.endswith("Pass")
        return False

    def enter_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(
            any(self._is_pass_base(base) for base in node.bases))

    def leave_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.pop()

    @property
    def _inside_pass(self) -> bool:
        return any(self._class_stack)

    def _check_name(self, node: ast.expr) -> None:
        if not isinstance(node, ast.Constant) \
                or not isinstance(node.value, str):
            return
        name = node.value
        if name not in self._declared_knobs():
            self.report(
                node.lineno,
                f"Pass reads knob {name!r} that no registered "
                f"MethodSpec declares; the registry schema and the "
                f"pipeline have drifted apart",
                symbol=name)

    def enter_Call(self, node: ast.Call) -> None:
        if not self._inside_pass or not node.args:
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # context.knob("name", default)
        if func.attr == "knob":
            self._check_name(node.args[0])
        # context.knobs.get("name", default)
        elif (func.attr == "get" and isinstance(func.value, ast.Attribute)
                and func.value.attr == "knobs"):
            self._check_name(node.args[0])

    def enter_Subscript(self, node: ast.Subscript) -> None:
        # context.knobs["name"]
        if (self._inside_pass and isinstance(node.value, ast.Attribute)
                and node.value.attr == "knobs"):
            self._check_name(node.slice)
