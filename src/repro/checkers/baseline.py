"""The reviewed suppression baseline for checker findings.

Findings that are provably safe but not worth restructuring code over
(an import-time-only registry mutation, a deliberately process-local
warning latch) live in a committed baseline file instead of inline
comments, so every exemption carries a *reviewed justification* and
shows up in diffs:

.. code-block:: json

    {"version": 1, "entries": [
      {"code": "CK010", "path": "src/repro/pipeline/registry.py",
       "symbol": "_REGISTRY",
       "justification": "mutated only by import-time registration"}
    ]}

Matching is deliberately line-number-free — ``(code, path suffix,
symbol)`` — so routine edits above a vetted site do not churn the
baseline.  An entry without a non-empty justification is a usage error
(exit 2): the whole point is that someone wrote down *why*.  Entries
that no longer match anything are reported as stale so the file shrinks
as findings are fixed for real.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..lint.diagnostics import Diagnostic

BASELINE_VERSION = 1

#: File name probed in the working directory when ``--baseline`` is not
#: given (the repo root's committed baseline).
DEFAULT_BASELINE_NAME = "CHECKERS_BASELINE.json"


class BaselineError(ValueError):
    """The baseline file is malformed or missing a justification."""


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed exemption."""

    code: str
    path: str
    justification: str
    #: When set, only findings about this named symbol match; ``None``
    #: exempts the (code, path) pair wholesale.
    symbol: Optional[str] = None

    def matches(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.code != self.code:
            return False
        found = (diagnostic.path or "").replace("\\", "/")
        if not found.endswith(self.path):
            return False
        return self.symbol is None or diagnostic.symbol == self.symbol


def load_baseline(path: Union[str, Path]) -> Tuple[BaselineEntry, ...]:
    """Parse and validate a baseline file (raises :class:`BaselineError`
    on structural problems or entries without a justification)."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(data, dict) \
            or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected an object with version={BASELINE_VERSION}")
    raw_entries = data.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"{path}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(
                f"{path}: entry #{index} must be an object")
        code = raw.get("code")
        entry_path = raw.get("path")
        justification = raw.get("justification")
        symbol = raw.get("symbol")
        if not isinstance(code, str) or not code:
            raise BaselineError(f"{path}: entry #{index} needs a 'code'")
        if not isinstance(entry_path, str) or not entry_path:
            raise BaselineError(f"{path}: entry #{index} needs a 'path'")
        if not isinstance(justification, str) or not justification.strip():
            raise BaselineError(
                f"{path}: entry #{index} ({code} {entry_path}) has no "
                f"justification; every baseline exemption must say why "
                f"it is safe")
        if symbol is not None and not isinstance(symbol, str):
            raise BaselineError(
                f"{path}: entry #{index} 'symbol' must be a string")
        entries.append(BaselineEntry(
            code=code, path=entry_path.replace("\\", "/"),
            justification=justification, symbol=symbol))
    return tuple(entries)


def apply_baseline(
    diagnostics: List[Diagnostic],
    entries: Tuple[BaselineEntry, ...],
) -> Tuple[List[Diagnostic], int, Tuple[BaselineEntry, ...]]:
    """Split findings into (remaining, suppressed count, stale entries).

    Stale entries matched nothing — the finding was fixed for real (or
    the entry has a typo); they are reported so the baseline shrinks,
    but do not fail the run.
    """
    used = [0] * len(entries)
    remaining: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in diagnostics:
        for index, entry in enumerate(entries):
            if entry.matches(diagnostic):
                used[index] += 1
                suppressed += 1
                break
        else:
            remaining.append(diagnostic)
    stale = tuple(entry for entry, count in zip(entries, used)
                  if count == 0)
    return remaining, suppressed, stale
