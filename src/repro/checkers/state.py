"""CK010/CK011 — process-model safety for the daemon's warm workers.

The roadmap's compilation-as-a-service daemon keeps a long-lived pool of
forked workers.  Two classes of today's code become incidents there:

* **CK010** — module-level mutable state mutated at runtime.  Under the
  ``fork`` start method every worker inherits a snapshot of parent
  globals; mutations after the fork diverge silently between processes
  (and race under threads).  The *designated* memo-cache registries —
  ``arch/coupling.py`` and ``ata/registry.py`` — are exempt: they are
  process-local caches by design, with hit/miss telemetry and documented
  fork semantics.  Everything else must either move its state into a
  designated registry or carry a reviewed baseline entry.

* **CK011** — unpicklable constructs reaching a process boundary.
  Lambdas and locally-defined functions cannot cross ``pool.submit``,
  nor live in :class:`~repro.batch.jobs.BatchJob` fields or
  :class:`~repro.resilience.retry.RetryPolicy` members that batch
  reports serialise; they fail only at submission time, deep inside a
  sweep.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from ..lint.diagnostics import ERROR
from .base import CheckerRule, ModuleContext, RuleVisitor, checker

#: Modules allowed to mutate module-level state: the process-local memo
#: caches whose fork/clear semantics are documented and telemetered.
DESIGNATED_STATE_MODULES: Tuple[str, ...] = (
    "repro/arch/coupling.py", "repro/ata/registry.py")

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem", "clear",
    "extend", "discard", "remove", "insert"})

#: Constructor names whose call result is mutable.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_CONSTRUCTORS
    return False


@checker(
    "CK010", "module-state-mutation", ERROR,
    "A function mutates (or rebinds via `global`) module-level state "
    "outside the designated memo-cache registries; fork-inherited "
    "workers and threads will disagree about its value.",
    "move the state into a designated registry "
    "(arch/coupling.py, ata/registry.py), or add a baseline entry "
    "justifying why the mutation is import-time-only or process-safe")
class ModuleStateVisitor(RuleVisitor):
    """Two-phase: collect module globals and mutation sites during the
    walk, judge in :meth:`finish` (a mutating function may precede the
    module-level assignment it targets)."""

    def __init__(self, rule: CheckerRule, module: ModuleContext) -> None:
        super().__init__(rule, module)
        self._silent = module.posix_path().endswith(
            DESIGNATED_STATE_MODULES)
        self._depth = 0
        #: Every name assigned at module level (for `global` rebinds).
        self._module_names: Set[str] = set()
        #: Module-level names bound to a mutable container.
        self._module_mutables: Set[str] = set()
        #: ``(line, name, how)`` candidate mutation sites inside
        #: functions, resolved against the sets above in finish().
        self._mutations: List[Tuple[int, str, str]] = []

    # -- nesting ------------------------------------------------------------

    def _push(self, node: ast.AST) -> None:
        self._depth += 1

    def _pop(self, node: ast.AST) -> None:
        self._depth -= 1

    enter_FunctionDef = _push
    leave_FunctionDef = _pop
    enter_AsyncFunctionDef = _push
    leave_AsyncFunctionDef = _pop
    enter_Lambda = _push
    leave_Lambda = _pop
    enter_ClassDef = _push
    leave_ClassDef = _pop

    # -- collection ---------------------------------------------------------

    def _record_binding(self, target: ast.expr, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        self._module_names.add(target.id)
        if _is_mutable_literal(value):
            self._module_mutables.add(target.id)

    def enter_Assign(self, node: ast.Assign) -> None:
        if self._depth == 0:
            for target in node.targets:
                self._record_binding(target, node.value)
            return
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)):
                self._mutations.append(
                    (node.lineno, target.value.id, "subscript store"))

    def enter_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._depth == 0 and node.value is not None:
            self._record_binding(node.target, node.value)

    def enter_AugAssign(self, node: ast.AugAssign) -> None:
        if (self._depth > 0 and isinstance(node.target, ast.Subscript)
                and isinstance(node.target.value, ast.Name)):
            self._mutations.append(
                (node.lineno, node.target.value.id, "augmented store"))

    def enter_Delete(self, node: ast.Delete) -> None:
        if self._depth == 0:
            return
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)):
                self._mutations.append(
                    (node.lineno, target.value.id, "subscript delete"))

    def enter_Global(self, node: ast.Global) -> None:
        if self._depth == 0:
            return
        for name in node.names:
            self._mutations.append((node.lineno, name, "global"))

    def enter_Call(self, node: ast.Call) -> None:
        if self._depth == 0:
            return
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
                and isinstance(func.value, ast.Name)):
            self._mutations.append(
                (node.lineno, func.value.id, f".{func.attr}()"))

    # -- judgement ----------------------------------------------------------

    def finish(self) -> None:
        if self._silent:
            return
        for line, name, how in sorted(self._mutations):
            if how == "global":
                if name in self._module_names:
                    self.report(
                        line,
                        f"function rebinds module-level {name!r} via "
                        f"`global`; fork-inherited workers will disagree "
                        f"about its value",
                        symbol=name)
            elif name in self._module_mutables:
                self.report(
                    line,
                    f"module-level mutable {name!r} is mutated at "
                    f"runtime ({how}); process-wide state must live in "
                    f"a designated memo-cache registry",
                    symbol=name)


#: Call shapes that hand their arguments to another process or to a
#: serialised job/policy record.
BOUNDARY_METHODS = frozenset({"submit"})
BOUNDARY_CONSTRUCTORS = frozenset({"BatchJob", "RetryPolicy"})


@checker(
    "CK011", "unpicklable-boundary", ERROR,
    "A lambda or locally-defined function is passed across a process "
    "boundary (pool.submit, BatchJob fields, RetryPolicy members); "
    "pickling it fails only at submission time, deep inside a sweep.",
    "hoist the callable to module level (pickle ships it by qualified "
    "name), or vet the line with '# check: ok[CK011]' for "
    "serial-executor-only paths")
class PickleBoundaryVisitor(RuleVisitor):
    """Flag lambdas/local defs in boundary-call argument position."""

    def __init__(self, rule: CheckerRule, module: ModuleContext) -> None:
        super().__init__(rule, module)
        #: Names of functions defined inside an enclosing function, per
        #: scope (module-level defs pickle fine, by qualified name).
        self._local_defs: List[Set[str]] = [set()]

    def enter_FunctionDef(self, node: ast.FunctionDef) -> None:
        if len(self._local_defs) > 1:  # nested inside another function
            self._local_defs[-1].add(node.name)
        self._local_defs.append(set())

    def leave_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._local_defs.pop()

    enter_AsyncFunctionDef = enter_FunctionDef
    leave_AsyncFunctionDef = leave_FunctionDef

    def _known_local(self, name: str) -> bool:
        return any(name in scope for scope in self._local_defs)

    @staticmethod
    def _boundary_name(node: ast.Call) -> str:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in BOUNDARY_METHODS | BOUNDARY_CONSTRUCTORS:
                return func.attr
        elif isinstance(func, ast.Name):
            if func.id in BOUNDARY_CONSTRUCTORS:
                return func.id
        return ""

    def enter_Call(self, node: ast.Call) -> None:
        boundary = self._boundary_name(node)
        if not boundary:
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            if isinstance(value, ast.Lambda):
                self.report(
                    value.lineno,
                    f"lambda passed to {boundary}(...) cannot be "
                    f"pickled across a process boundary",
                    symbol=boundary)
            elif (isinstance(value, ast.Name)
                    and self._known_local(value.id)):
                self.report(
                    value.lineno,
                    f"locally-defined function {value.id!r} passed to "
                    f"{boundary}(...) cannot be pickled across a "
                    f"process boundary",
                    symbol=value.id)
