"""The checker engine: one parse, one walk, every registered rule.

:func:`check_source` parses a module once, instantiates a per-module
visitor for every active rule, and drives them all through a single
depth-first traversal (:class:`CheckerVisitor`), so running the full
catalogue costs one parse + one walk per file regardless of how many
rules are registered.  :func:`check_paths` extends that over files and
directory trees.

Unparseable files become a **CK000** diagnostic instead of a crash —
the same tolerant-scan posture as :mod:`repro.lint` — and CK000 is
emitted even under ``--select``: a file the checkers cannot read is
never silently "clean".

Findings are vetted inline with ``# check: ok`` (all rules) or
``# check: ok[CK010,CK020]`` (listed rules) on the offending line;
CK001 additionally honours the historic ``# det: ok`` comment so the
determinism shim's contract is unchanged.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple
from typing import Union

from ..lint.diagnostics import ERROR, Diagnostic
from .base import (CheckerRule, ModuleContext, RuleVisitor, checker,
                   get_checker, resolve_checkers)

#: Generic vetting comment: ``# check: ok`` or ``# check: ok[CODES]``.
VET_COMMENT_RE = re.compile(r"#\s*check:\s*ok(?:\[([A-Z0-9_, ]+)\])?")
#: Historic determinism-checker vetting comment (CK001 only).
LEGACY_DET_COMMENT = "# det: ok"

#: Code of the syntax-error pseudo-rule.
SYNTAX_ERROR_CODE = "CK000"


@checker(
    SYNTAX_ERROR_CODE, "syntax-error", ERROR,
    "The file does not parse as Python; none of the static guarantees "
    "can be checked for it.",
    "none — fix the syntax error (CK000 is emitted even under "
    "--select; an unreadable file is never silently clean)")
class SyntaxErrorRule(RuleVisitor):
    """Placeholder visitor: the engine emits CK000 directly on parse
    failure, before any visitor can run."""


class CheckerVisitor:
    """One walk, every rule: dispatch each node to per-rule hooks.

    For a node of AST type ``T`` every visitor's ``enter_T`` hook runs
    before the node's children and ``leave_T`` after, which gives rules
    proper scope-stack discipline without each paying for its own
    traversal.
    """

    def __init__(self, visitors: Sequence[RuleVisitor]) -> None:
        self._visitors = tuple(visitors)

    def walk(self, node: ast.AST) -> None:
        kind = type(node).__name__
        for visitor in self._visitors:
            enter: Optional[Callable[[ast.AST], None]] = getattr(
                visitor, f"enter_{kind}", None)
            if enter is not None:
                enter(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        for visitor in self._visitors:
            leave: Optional[Callable[[ast.AST], None]] = getattr(
                visitor, f"leave_{kind}", None)
            if leave is not None:
                leave(node)


def _suppressed(diagnostic: Diagnostic, module: ModuleContext) -> bool:
    """Is the finding vetted by a comment on its own source line?"""
    if diagnostic.line is None:
        return False
    text = module.text(diagnostic.line)
    if diagnostic.code == "CK001" and LEGACY_DET_COMMENT in text:
        return True
    match = VET_COMMENT_RE.search(text)
    if match is None:
        return False
    codes = match.group(1)
    if codes is None:
        return True
    return diagnostic.code in {c.strip() for c in codes.split(",")}


def check_source(source: str, path: str,
                 rules: Optional[Sequence[CheckerRule]] = None,
                 restrict: bool = True) -> List[Diagnostic]:
    """Run the rule set over one module's source.

    ``rules`` defaults to the full catalogue; ``restrict=True`` honours
    each rule's ``hot_paths`` restriction (``False`` — used by fixture
    tests and the determinism shim — runs every given rule on every
    file).
    """
    active = resolve_checkers() if rules is None else tuple(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        rule = get_checker(SYNTAX_ERROR_CODE)
        return [Diagnostic(
            code=rule.code, severity=rule.severity, rule=rule.name,
            message=f"syntax error: {exc.msg}",
            path=path, line=exc.lineno or 1)]
    module = ModuleContext(path=path, source=source, tree=tree,
                           lines=tuple(source.splitlines()))
    visitors = [rule.visitor(rule, module) for rule in active
                if rule.code != SYNTAX_ERROR_CODE
                and (not restrict or rule.applies_to(path))]
    if not visitors:
        return []
    CheckerVisitor(visitors).walk(tree)
    findings: List[Diagnostic] = []
    for visitor in visitors:
        visitor.finish()
        findings.extend(d for d in visitor.diagnostics
                        if not _suppressed(d, module))
    findings.sort(key=Diagnostic.sort_key)
    return findings


def iter_python_files(base: Path) -> List[Path]:
    """The Python files under ``base`` (itself, when it is a file)."""
    if base.is_file():
        return [base]
    if base.is_dir():
        return sorted(base.rglob("*.py"))
    raise FileNotFoundError(f"no such file or directory: {base}")


def check_paths(paths: Iterable[Union[str, Path]],
                select: Optional[Tuple[str, ...]] = None,
                ignore: Optional[Tuple[str, ...]] = None,
                restrict: bool = True) -> List[Diagnostic]:
    """Run the (selected) catalogue over files and directory trees.

    Raises :class:`FileNotFoundError` for a path that exists as
    neither; unknown rule codes in ``select``/``ignore`` raise
    ``ValueError`` before any file is read.
    """
    rules = resolve_checkers(select, ignore)
    findings: List[Diagnostic] = []
    for base in paths:
        for file in iter_python_files(Path(base)):
            findings.extend(check_source(
                file.read_text(encoding="utf-8"), str(file),
                rules, restrict))
    return findings
