"""Rule registry and visitor base for the static checkers.

The checkers mirror the :mod:`repro.lint` architecture one level up:
where lint rules scan compiled *circuits*, checker rules scan the
*source tree* that produces them.  Each rule is a
:class:`RuleVisitor` subclass registered under a ``CK0xx`` code; the
engine (:mod:`repro.checkers.engine`) parses every module once and
dispatches each AST node to every active rule in a single walk, so a
full-catalogue run stays one parse + one traversal per file.

Rules emit :class:`repro.lint.diagnostics.Diagnostic` records with
``path``/``line``/``symbol`` set, so the existing text/JSON reporters,
exit-code conventions and batch plumbing all apply unchanged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..lint.diagnostics import SEVERITIES, Diagnostic


@dataclass(frozen=True)
class ModuleContext:
    """One parsed module, as every rule visitor sees it."""

    #: Path as given by the caller (used verbatim in diagnostics).
    path: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]

    def text(self, line: int) -> str:
        """The 1-indexed source line (empty string when out of range)."""
        return self.lines[line - 1] if 0 < line <= len(self.lines) else ""

    def posix_path(self) -> str:
        return self.path.replace("\\", "/")


class RuleVisitor:
    """Per-module visitor for one rule.

    Subclasses implement ``enter_<NodeType>`` / ``leave_<NodeType>``
    hooks, which the engine's single walk calls for every active rule
    at once (``enter`` before the node's children, ``leave`` after).
    Rules that must see the whole module before judging (two-phase
    analyses like CK010) collect during the walk and emit from
    :meth:`finish`.
    """

    def __init__(self, rule: "CheckerRule", module: ModuleContext) -> None:
        self.rule = rule
        self.module = module
        self.diagnostics: List[Diagnostic] = []

    def report(self, line: int, message: str,
               symbol: Optional[str] = None,
               hint: Optional[str] = None) -> None:
        """Emit one finding pinned to ``line`` of the current module."""
        self.diagnostics.append(Diagnostic(
            code=self.rule.code, severity=self.rule.severity,
            rule=self.rule.name, message=message, hint=hint,
            path=self.module.path, line=line, symbol=symbol))

    def finish(self) -> None:
        """Called once after the walk (post-pass for two-phase rules)."""


@dataclass(frozen=True)
class CheckerRule:
    """One registered static-analysis rule."""

    code: str
    name: str
    severity: str
    description: str
    #: The documented escape hatch (inline vetting comment, baseline
    #: entry, designated-module list...) — surfaced in ``--list-rules``
    #: and ``docs/checks.md``.
    escape: str
    visitor: Type[RuleVisitor] = field(repr=False)
    #: Path fragments this rule is restricted to; empty means every
    #: scanned file.  The engine's ``restrict=False`` mode (fixture
    #: tests, the determinism shim) bypasses the restriction.
    hot_paths: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.hot_paths:
            return True
        norm = path.replace("\\", "/")
        return any(fragment in norm for fragment in self.hot_paths)


_CHECKERS: Dict[str, CheckerRule] = {}


def register_checker(rule: CheckerRule) -> CheckerRule:
    """Register (or deliberately replace) a rule under its code."""
    if rule.severity not in SEVERITIES:
        raise ValueError(
            f"checker {rule.code} has unknown severity "
            f"{rule.severity!r}; expected one of {SEVERITIES}")
    _CHECKERS[rule.code] = rule
    return rule


def checker(code: str, name: str, severity: str, description: str,
            escape: str, hot_paths: Tuple[str, ...] = (),
            ) -> Callable[[Type[RuleVisitor]], Type[RuleVisitor]]:
    """Class decorator: register a :class:`RuleVisitor` subclass.

    After decoration the rule participates in
    :func:`~repro.checkers.engine.check_source`, the ``repro check``
    CLI and the CI gate with no further wiring; ``cls.rule`` is bound
    to the registered rule object.
    """
    def wrap(cls: Type[RuleVisitor]) -> Type[RuleVisitor]:
        rule_obj = CheckerRule(code=code, name=name, severity=severity,
                               description=description, escape=escape,
                               visitor=cls, hot_paths=hot_paths)
        register_checker(rule_obj)
        cls.rule_spec = rule_obj  # type: ignore[attr-defined]
        return cls
    return wrap


def get_checker(code: str) -> CheckerRule:
    try:
        return _CHECKERS[code]
    except KeyError:
        raise ValueError(
            f"unknown checker rule {code!r}; registered rules: "
            f"{', '.join(sorted(_CHECKERS))}") from None


def all_checkers() -> Tuple[CheckerRule, ...]:
    """Every registered rule, sorted by code."""
    return tuple(_CHECKERS[code] for code in sorted(_CHECKERS))


def checker_table() -> Dict[str, Tuple[str, str, str, str]]:
    """``{code: (name, severity, description, escape)}`` for docs/help."""
    return {r.code: (r.name, r.severity, r.description, r.escape)
            for r in all_checkers()}


def resolve_checkers(select: Optional[Tuple[str, ...]] = None,
                     ignore: Optional[Tuple[str, ...]] = None,
                     ) -> Tuple[CheckerRule, ...]:
    """The rule set to run, honouring ``select``/``ignore`` code lists."""
    for code in tuple(select or ()) + tuple(ignore or ()):
        get_checker(code)  # raise early on unknown codes
    chosen = all_checkers()
    if select:
        chosen = tuple(r for r in chosen if r.code in select)
    if ignore:
        chosen = tuple(r for r in chosen if r.code not in ignore)
    return chosen
