"""CK020/CK021 — failure-path contracts the resilience layer relies on.

* **CK020** — every ``raise`` in the retry-reachable subsystems
  (``batch``, ``pipeline``, ``solver``, ``resilience``) must use an
  exception class classified in :mod:`repro.exceptions`.  The retry
  policy decides transient-vs-permanent by class; an unknown type is
  silently treated as permanent, so an unclassified raise quietly
  disables retries for that failure.

* **CK021** — chaos-test and telemetry names are stringly-typed
  contracts: a :func:`~repro.resilience.faults.fault_point` site name
  not in the registered :data:`~repro.resilience.faults.KNOWN_SITES`
  list can never be targeted by a fault plan (a typo makes the chaos
  suite vacuously pass), and a :func:`repro._telemetry.count_event`
  counter outside the ``family.event`` dotted convention breaks every
  dashboard grouping on the prefix.
"""

from __future__ import annotations

import ast
import re
from typing import FrozenSet, Optional, Tuple

from ..lint.diagnostics import ERROR
from .base import CheckerRule, ModuleContext, RuleVisitor, checker

#: Retry-reachable subsystems CK020 is restricted to.
RETRY_PATHS: Tuple[str, ...] = (
    "repro/batch", "repro/pipeline", "repro/solver", "repro/resilience")

#: Builtins whose raise semantics are orthogonal to retry
#: classification (control flow and programmer-error assertions).
ALLOWED_BUILTINS = frozenset({
    "NotImplementedError", "AssertionError", "StopIteration",
    "KeyboardInterrupt"})

_CLASSIFIED: Optional[FrozenSet[str]] = None


def classified_exception_names() -> FrozenSet[str]:
    """Exception class names defined (or re-exported) in
    :mod:`repro.exceptions`, plus the allowed builtins."""
    global _CLASSIFIED  # memo of an import-derived constant  # check: ok[CK010]
    if _CLASSIFIED is None:
        from .. import exceptions

        names = {name for name, obj in vars(exceptions).items()
                 if isinstance(obj, type)
                 and issubclass(obj, BaseException)}
        _CLASSIFIED = frozenset(names | ALLOWED_BUILTINS)
    return _CLASSIFIED


@checker(
    "CK020", "unclassified-raise", ERROR,
    "A retry-reachable subsystem raises an exception class that "
    "repro.exceptions does not classify transient-or-permanent; the "
    "retry layer silently treats unknown types as permanent.",
    "raise a class from repro.exceptions (SpecificationError for "
    "caller errors), or vet the line with '# check: ok[CK020]' where "
    "the raise provably never crosses the retry layer",
    hot_paths=RETRY_PATHS)
class RaiseClassificationVisitor(RuleVisitor):
    """Flag ``raise SomeError(...)`` of unclassified exception types."""

    def enter_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        # Bare re-raises and `raise err` variables re-throw an already
        # classified (or upstream) instance; only construction sites
        # choose a class.
        if not isinstance(exc, ast.Call):
            return
        func = exc.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return
        if name not in classified_exception_names():
            self.report(
                node.lineno,
                f"raise of unclassified exception {name}(...) in a "
                f"retry-reachable subsystem; the retry layer treats "
                f"unknown types as silently permanent",
                symbol=name,
                hint="use a class from repro.exceptions "
                     "(SpecificationError subclasses ValueError for "
                     "caller errors)")


#: ``family.event`` counter names: at least two lowercase dotted parts.
EVENT_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
#: Leading literal chunk of an f-string counter name: complete dotted
#: ``family.`` prefix segments up to the first interpolation.
EVENT_PREFIX_RE = re.compile(r"^([a-z0-9_]+\.)+$")


@checker(
    "CK021", "telemetry-naming", ERROR,
    "A fault_point site name is not in the registered KNOWN_SITES "
    "list, or a count_event counter drifts from the family.event "
    "dotted naming convention.",
    "register new sites in repro.resilience.faults.KNOWN_SITES (and "
    "the module's site table); name counters '<family>.<event>'")
class TelemetryNamingVisitor(RuleVisitor):
    """Check fault-point site and telemetry counter name literals."""

    def __init__(self, rule: CheckerRule, module: ModuleContext) -> None:
        super().__init__(rule, module)
        from ..resilience.faults import KNOWN_SITES

        self._known_sites = frozenset(KNOWN_SITES)

    @staticmethod
    def _callee(node: ast.Call) -> str:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return ""

    def enter_Call(self, node: ast.Call) -> None:
        callee = self._callee(node)
        if callee == "fault_point":
            self._check_site(node)
        elif callee == "count_event":
            self._check_counter(node)

    def _check_site(self, node: ast.Call) -> None:
        if not node.args:
            return
        site = node.args[0]
        if not isinstance(site, ast.Constant) \
                or not isinstance(site.value, str):
            return
        if site.value not in self._known_sites:
            self.report(
                site.lineno,
                f"fault_point site {site.value!r} is not registered in "
                f"repro.resilience.faults.KNOWN_SITES; fault plans can "
                f"never target it",
                symbol=site.value)

    def _check_counter(self, node: ast.Call) -> None:
        if not node.args:
            return
        name = node.args[0]
        if isinstance(name, ast.Constant) and isinstance(name.value, str):
            if not EVENT_NAME_RE.match(name.value):
                self.report(
                    name.lineno,
                    f"counter name {name.value!r} drifts from the "
                    f"'family.event' convention (lowercase dotted "
                    f"segments)",
                    symbol=name.value)
        elif isinstance(name, ast.JoinedStr):
            head = name.values[0] if name.values else None
            prefix = head.value if (isinstance(head, ast.Constant)
                                    and isinstance(head.value, str)) \
                else ""
            if not EVENT_PREFIX_RE.match(prefix):
                self.report(
                    name.lineno,
                    "dynamic counter name must start with a literal "
                    "'family.' dotted prefix so the family grouping "
                    "stays static",
                    symbol=prefix or None)
