"""Whole-repo static analysis: the invariants the daemon depends on.

``repro.checkers`` is :mod:`repro.lint` one level up — where lint rules
scan compiled circuits, checker rules scan the *source tree* that
produces them, proving at lint time the properties the dynamic suites
only observe after the fact:

========  ============================================================
CK000     file does not parse (tolerant-scan posture; never silent)
CK001     no unordered set/``dict.keys()`` iteration in hot paths
CK010     no runtime mutation of module-level state outside the
          designated memo-cache registries
CK011     no lambdas/local functions crossing process boundaries
CK020     every raise in retry-reachable code uses a classified
          exception from :mod:`repro.exceptions`
CK021     ``fault_point`` sites registered; ``count_event`` names
          follow the ``family.event`` convention
CK030     ``Pass`` knob reads declared by a registered ``MethodSpec``
========  ============================================================

Run the catalogue with ``python -m repro check`` (see ``docs/checks.md``
for the full rule reference, escape hatches and the baseline format).
Importing the rule modules below is what populates the registry.
"""

from __future__ import annotations

from .base import (CheckerRule, ModuleContext, RuleVisitor, all_checkers,
                   checker, checker_table, get_checker, register_checker,
                   resolve_checkers)
from .baseline import (BASELINE_VERSION, DEFAULT_BASELINE_NAME,
                       BaselineEntry, BaselineError, apply_baseline,
                       load_baseline)
from .engine import (LEGACY_DET_COMMENT, SYNTAX_ERROR_CODE, CheckerVisitor,
                     check_paths, check_source, iter_python_files)
from . import determinism  # noqa: F401  (registers CK001)
from . import state        # noqa: F401  (registers CK010/CK011)
from . import errors       # noqa: F401  (registers CK020/CK021)
from . import knobs        # noqa: F401  (registers CK030)

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "LEGACY_DET_COMMENT",
    "SYNTAX_ERROR_CODE",
    "BaselineEntry",
    "BaselineError",
    "CheckerRule",
    "CheckerVisitor",
    "ModuleContext",
    "RuleVisitor",
    "all_checkers",
    "apply_baseline",
    "check_paths",
    "check_source",
    "checker",
    "checker_table",
    "get_checker",
    "iter_python_files",
    "load_baseline",
    "register_checker",
    "resolve_checkers",
]
