"""CK001 — no unordered iteration in compiler hot paths.

Compilation must be reproducible: the same instance and seed must yield
the same circuit on every run and every machine.  Iterating a ``set`` /
``frozenset`` (or ``dict.keys()`` pulled out explicitly, usually a tell
that the author was thinking in sets) makes gate and SWAP choice depend
on hash-iteration order, which is not a stable contract.  The rule
flags:

* ``for x in set(...)`` / ``frozenset(...)`` / a set literal or set
  comprehension, in statements and comprehensions;
* iteration over a local name that was assigned one of those;
* ``for k in d.keys()`` — iterate the dict (insertion-ordered) or sort.

Wrapping the iterable in ``sorted(...)`` (or ``min``/``max``/``sum``,
which are order-insensitive) silences the finding, as does the vetting
comment ``# det: ok`` on the offending line for sites where unordered
iteration is provably harmless (e.g. building another set).

This is the historic ``scripts/check_determinism.py`` checker migrated
into the rule catalogue; the script survives as a thin shim over this
module so its CLI contract is unchanged.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from ..lint.diagnostics import ERROR
from .base import CheckerRule, ModuleContext, RuleVisitor, checker

#: Calls whose result iterates in hash order.
SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Path fragments the rule is restricted to under ``restrict=True`` —
#: the compiler hot paths, mirroring the historic script's default
#: roots (``scripts/check_determinism.py`` still exposes them as
#: repo-relative ``DEFAULT_HOT_PATHS``).
HOT_PATHS: Tuple[str, ...] = (
    "repro/compiler", "repro/ata", "repro/pipeline", "repro/solver",
    "repro/resilience", "repro/bench", "repro/ir")

SET_ITERATION_MESSAGE = (
    "iteration over a set is hash-ordered; wrap it in sorted(...) to "
    "keep compilations deterministic")
KEYS_ITERATION_MESSAGE = (
    "iterate the dict directly (insertion-ordered) or wrap .keys() in "
    "sorted(...)")


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Does ``node`` evaluate to a set (literally or via a known name)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in SET_CONSTRUCTORS):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # set algebra (a | b, required - done, ...) stays a set
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _is_keys_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args and not node.keywords)


@checker(
    "CK001", "no-unordered-iteration", ERROR,
    "Hot-path code iterates a set/frozenset (or dict.keys()) whose "
    "hash order leaks into the compiled circuit.",
    "wrap the iterable in sorted(...) (or min/max/sum), or vet the "
    "line with '# det: ok' where order provably cannot matter",
    hot_paths=HOT_PATHS)
class DeterminismVisitor(RuleVisitor):
    """Collect unordered-iteration findings for one module."""

    def __init__(self, rule: CheckerRule, module: ModuleContext) -> None:
        super().__init__(rule, module)
        #: Names assigned a set-valued expression, per enclosing scope.
        self._scopes: List[Set[str]] = [set()]

    # -- scope tracking -----------------------------------------------------

    @property
    def _set_names(self) -> Set[str]:
        names: Set[str] = set()
        for scope in self._scopes:
            names |= scope
        return names

    def enter_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append(set())

    def leave_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.pop()

    def enter_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scopes.append(set())

    def leave_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scopes.pop()

    def enter_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self._set_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].discard(target.id)

    def enter_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (node.value is not None and isinstance(node.target, ast.Name)
                and _is_set_expr(node.value, self._set_names)):
            self._scopes[-1].add(node.target.id)

    # -- iteration sites ----------------------------------------------------

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_expr(iter_node, self._set_names):
            self.report(iter_node.lineno, SET_ITERATION_MESSAGE)
        elif _is_keys_call(iter_node):
            self.report(iter_node.lineno, KEYS_ITERATION_MESSAGE)

    def enter_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)

    def _enter_comprehension(self, node: ast.AST) -> None:
        for comp in getattr(node, "generators", []):
            self._check_iter(comp.iter)

    enter_ListComp = _enter_comprehension
    enter_GeneratorExp = _enter_comprehension
    enter_DictComp = _enter_comprehension
    # ast.SetComp deliberately has no hook: building a *set* from a set
    # is order-insensitive by definition.
