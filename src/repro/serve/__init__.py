"""Compilation-as-a-service: a warm daemon over a content-addressed store.

The paper's own argument — modern quantum architectures are *regular*,
so compilation work repeats — holds at serve time too: real traffic
concentrates on a small set of hot (architecture, problem-class) pairs.
``python -m repro serve`` exploits that three ways:

* a **persistent worker pool** (:class:`repro.batch.PersistentPool`)
  created once, so the process-local distance-matrix and ATA-pattern
  caches stay warm across requests instead of dying with every
  ``compile_many`` call;
* a **content-addressed result store** (:class:`~repro.serve.store.ResultStore`)
  keyed by the canonical job fingerprint
  (:func:`repro.resilience.journal.spec_fingerprint`) — a repeated
  request is served byte-identically from disk with no worker dispatch;
* **in-flight dedupe** (:class:`~repro.serve.service.CompileService`) —
  N identical concurrent requests execute once and all N get the result.

See ``docs/serve.md`` for the protocol, store layout, fingerprint
canonicalization rules, and the telemetry table.
"""

from .daemon import ServeDaemon, serve_main
from .protocol import (OPS, PROTOCOL_VERSION, SERVED_FROM, error_response,
                       normalize_request, result_response)
from .service import CompileService, ServeStats
from .store import STORE_VERSION, ResultStore

__all__ = [
    "CompileService",
    "ServeStats",
    "ServeDaemon",
    "ResultStore",
    "serve_main",
    "normalize_request",
    "result_response",
    "error_response",
    "OPS",
    "SERVED_FROM",
    "PROTOCOL_VERSION",
    "STORE_VERSION",
]
