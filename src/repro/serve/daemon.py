"""Long-lived serve daemon: HTTP JSON and stdin-JSONL front-ends.

Both framings are deliberately dependency-free (stdlib ``asyncio``
only) and funnel into one :class:`~repro.serve.service.CompileService`:

* **stdio mode** (``--stdio``): one JSON request per stdin line, one
  JSON response per stdout line (correlate by ``id`` — responses may
  complete out of order because identical requests dedupe in flight).
  stdout carries protocol lines *only*; the human-facing banner and the
  final stats summary go to stderr.  EOF on stdin is a clean shutdown.
* **HTTP mode** (default): a minimal HTTP/1.1 server —
  ``POST /compile`` (body: request JSON), ``GET /stats``,
  ``GET /healthz``, ``POST /shutdown``.  Connections are one-shot
  (``Connection: close``), which keeps the parser honest and is plenty
  for a compile-serving workload where each response is milliseconds of
  framing around seconds of work.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import Any, Dict, Optional, Set, Tuple

from ..batch.pool import PersistentPool
from .protocol import error_response
from .service import CompileService
from .store import ResultStore

#: Largest accepted request body / line, in bytes (a compile spec is
#: tiny; anything larger is a framing error, not a workload).
MAX_REQUEST_BYTES = 1 << 20

__all__ = ["MAX_REQUEST_BYTES", "ServeDaemon", "serve_main"]


class ServeDaemon:
    """Owns the service, the front-ends, and the shutdown lifecycle."""

    def __init__(self, service: CompileService) -> None:
        self.service = service
        self.shutdown = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._tasks: "Set[asyncio.Task[None]]" = set()

    def _track(self, task: "asyncio.Task[None]") -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _drain_tasks(self) -> None:
        if self._tasks:
            await asyncio.gather(*tuple(self._tasks),
                                 return_exceptions=True)

    # -- stdio framing -----------------------------------------------------

    async def run_stdio(self) -> None:
        """Serve JSONL requests from stdin until EOF or ``shutdown``."""
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=MAX_REQUEST_BYTES)
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)
        write_lock = asyncio.Lock()

        async def respond(doc: Dict[str, Any]) -> None:
            line = json.dumps(doc, sort_keys=True) + "\n"
            async with write_lock:
                sys.stdout.write(line)
                sys.stdout.flush()

        async def handle_line(raw: bytes) -> None:
            try:
                payload = json.loads(raw)
            except ValueError as exc:
                await respond(error_response({}, "JSONDecodeError",
                                             f"bad request line: {exc}"))
                return
            if isinstance(payload, dict) \
                    and payload.get("op") == "shutdown":
                await respond({"id": payload.get("id"), "ok": True,
                               "op": "shutdown"})
                self.shutdown.set()
                return
            if not isinstance(payload, dict):
                await respond(error_response(
                    {}, "SpecificationError",
                    "request must be a JSON object"))
                return
            await respond(await self.service.handle(payload))

        stop = asyncio.ensure_future(self.shutdown.wait())
        try:
            while not self.shutdown.is_set():
                line_future = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {line_future, stop},
                    return_when=asyncio.FIRST_COMPLETED)
                if line_future not in done:
                    line_future.cancel()
                    break
                raw = line_future.result()
                if not raw:  # EOF: the driving process is gone
                    self.shutdown.set()
                    break
                if not raw.strip():
                    continue
                self._track(asyncio.ensure_future(handle_line(raw)))
            await self._drain_tasks()
        finally:
            stop.cancel()

    # -- HTTP framing ------------------------------------------------------

    async def run_http(self, host: str, port: int) -> Tuple[str, int]:
        """Start the HTTP server; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_http_connection, host, port)
        sockets = self._server.sockets or ()
        bound = sockets[0].getsockname() if sockets else (host, port)
        return str(bound[0]), int(bound[1])

    async def serve_http_forever(self) -> None:
        """Block until shutdown, then close the server and drain."""
        assert self._server is not None, "run_http() first"
        await self.shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        await self._drain_tasks()

    async def _handle_http_connection(self, reader: asyncio.StreamReader,
                                      writer: asyncio.StreamWriter) -> None:
        try:
            status, doc = await self._http_response(reader)
            body = (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
            writer.write(
                b"HTTP/1.1 " + status.encode("ascii") + b"\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode("ascii")
                + b"\r\nConnection: close\r\n\r\n" + body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _http_response(
            self, reader: asyncio.StreamReader,
    ) -> Tuple[str, Dict[str, Any]]:
        """Parse one request and produce ``(status line, JSON body)``."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0)
        except (asyncio.LimitOverrunError, asyncio.TimeoutError) as exc:
            return "400 Bad Request", error_response(
                {}, "ProtocolError", f"unreadable request head: {exc}")
        request_line, _, header_block = head.partition(b"\r\n")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return "400 Bad Request", error_response(
                {}, "ProtocolError", "malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        for header in header_block.split(b"\r\n"):
            name, _, value = header.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return "400 Bad Request", error_response(
                        {}, "ProtocolError", "bad Content-Length")
        if content_length > MAX_REQUEST_BYTES:
            return "413 Payload Too Large", error_response(
                {}, "ProtocolError",
                f"body exceeds {MAX_REQUEST_BYTES} bytes")
        body = await reader.readexactly(content_length) \
            if content_length else b""

        if method == "GET" and path == "/healthz":
            return "200 OK", {"ok": True}
        if method == "GET" and path == "/stats":
            return "200 OK", {"ok": True,
                              "stats": self.service.stats_payload()}
        if method == "POST" and path == "/shutdown":
            self.shutdown.set()
            return "200 OK", {"ok": True, "op": "shutdown"}
        if method == "POST" and path == "/compile":
            try:
                payload = json.loads(body) if body else {}
            except ValueError as exc:
                return "400 Bad Request", error_response(
                    {}, "JSONDecodeError", f"bad request body: {exc}")
            if not isinstance(payload, dict):
                return "400 Bad Request", error_response(
                    {}, "SpecificationError",
                    "request must be a JSON object")
            response = await self.service.handle(payload)
            status = "200 OK" if response.get("ok") \
                or "result" in response else "422 Unprocessable Entity"
            return status, response
        return "404 Not Found", error_response(
            {}, "ProtocolError", f"no route for {method} {path}")


def _log(message: str) -> None:
    print(message, file=sys.stderr, flush=True)


async def _amain(args: Any) -> int:
    store: Optional[ResultStore] = None
    if not args.no_store:
        store = ResultStore(args.store)
        removed = store.sweep_temp_files()
        if removed:
            _log(f"serve: swept {removed} orphaned temp file(s) "
                 f"from {store.root}")
    pool = PersistentPool(workers=args.workers, executor=args.executor,
                          timeout_s=args.timeout)
    service = CompileService(pool, store)
    daemon = ServeDaemon(service)
    store_note = str(store.root) if store is not None else "disabled"
    try:
        if args.stdio:
            _log(f"serve: reading JSONL requests from stdin "
                 f"(store: {store_note}, {pool.workers} "
                 f"{pool.executor} worker(s))")
            await daemon.run_stdio()
        else:
            host, port = await daemon.run_http(args.host, args.port)
            _log(f"serve: http listening on {host}:{port} "
                 f"(store: {store_note}, {pool.workers} "
                 f"{pool.executor} worker(s))")
            await daemon.serve_http_forever()
    finally:
        service.close()
        _log("serve: shutdown — "
             + json.dumps(service.stats_payload(), sort_keys=True))
    return 0


def serve_main(args: Any) -> int:
    """Entry point for ``python -m repro serve`` (returns exit code)."""
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        _log("serve: interrupted")
        return 130
