"""Content-addressed on-disk store of compiled results.

Every entry is one JSON document at ``root/<ff>/<fingerprint>.json``,
where the fingerprint is :func:`repro.resilience.journal.spec_fingerprint`
of the canonical job spec — the same canonicalization the crash-safe
journal uses, fixed in this PR precisely so it can key persistent state
(an unstable key is a silent cache miss; an aliasing key is a poisoned
result).  The two-hex-char shard level keeps directories small at
millions of entries.

Durability contract:

* **Writes are atomic**: temp file in the same shard, ``fsync``, rename
  over the final name, directory ``fsync``
  (:func:`repro.resilience.journal.atomic_write_bytes`).  A crash at any
  instant — including an injected ``serve.store_write`` kill — leaves
  either no entry or a complete one, never a truncated hybrid.
* **Reads are skeptical**: a corrupt, truncated, version-skewed or
  wrong-fingerprint document is treated as a miss (counted under
  ``serve.store_corrupt``) rather than trusted or fatal, so a damaged
  store heals itself the next time the entry is recompiled.
* Only ``ok`` results are stored.  Failures are often environmental
  (timeout, injected fault, resource exhaustion); caching them would
  pin a transient outage into every future response.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from .._telemetry import count_event
from ..batch.jobs import BatchJob, JobResult
from ..resilience.faults import fault_point
from ..resilience.journal import (FINGERPRINT_VERSION, atomic_write_bytes,
                                  canonical_json, fsync_dir)

#: Bumped whenever the entry document changes shape.
STORE_VERSION = 1

__all__ = ["STORE_VERSION", "ResultStore"]


class ResultStore:
    """Fingerprint-keyed persistent result storage.

    The store is shared-nothing and lock-free: entries are immutable
    once published (same fingerprint => same content by construction),
    so concurrent daemons pointed at one directory can only ever race to
    write identical bytes, and the atomic rename makes the last one a
    no-op.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        fsync_dir(self.root.parent)

    def path_for(self, fingerprint: str) -> Path:
        """Where an entry for ``fingerprint`` lives (existing or not)."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # -- reading -----------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The stored document for ``fingerprint``, or ``None``.

        Any unreadable or inconsistent entry degrades to a miss.
        """
        path = self.path_for(fingerprint)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            doc = json.loads(raw)
        except ValueError:
            count_event("serve.store_corrupt")
            return None
        if (not isinstance(doc, dict)
                or doc.get("version") != STORE_VERSION
                or doc.get("fingerprint_version") != FINGERPRINT_VERSION
                or doc.get("fingerprint") != fingerprint
                or not isinstance(doc.get("result"), dict)):
            count_event("serve.store_corrupt")
            return None
        return doc

    def get_result(self, job: BatchJob,
                   fingerprint: str) -> Optional[JobResult]:
        """Rebuild the stored :class:`JobResult` for ``job``, if any."""
        doc = self.get(fingerprint)
        if doc is None:
            return None
        result = doc["result"]
        assert isinstance(result, dict)
        return JobResult.from_json(job, result)

    # -- writing -----------------------------------------------------------

    def put(self, fingerprint: str, job: BatchJob,
            result: JobResult) -> bool:
        """Durably publish one ``ok`` result; returns whether stored.

        Failed results are refused (see the module docstring) — the
        caller treats that as a normal non-cachable outcome, not an
        error.
        """
        if not result.ok:
            return False
        doc: Dict[str, object] = {
            "version": STORE_VERSION,
            "fingerprint_version": FINGERPRINT_VERSION,
            "fingerprint": fingerprint,
            "job": job.name,
            "created_s": time.time(),
            "result": result.to_json(),
        }
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = (canonical_json(doc) + "\n").encode("utf-8")
        atomic_write_bytes(
            path, data,
            publish_hook=lambda: fault_point("serve.store_write",
                                             fingerprint))
        count_event("serve.store_writes")
        return True

    # -- inventory ---------------------------------------------------------

    def iter_fingerprints(self) -> Iterator[str]:
        """Every published fingerprint (temp/corrupt names excluded)."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                yield entry.stem

    def count_entries(self) -> int:
        """Published entries on disk.

        Deliberately not ``__len__``: an empty store must never be
        falsy (``if store`` guards mean "is a store configured").
        """
        return sum(1 for _ in self.iter_fingerprints())

    def size_bytes(self) -> int:
        """Total bytes of published entries."""
        total = 0
        for fingerprint in self.iter_fingerprints():
            try:
                total += self.path_for(fingerprint).stat().st_size
            except OSError:
                continue
        return total

    def sweep_temp_files(self) -> int:
        """Remove orphaned temp files from crashed writes; returns count.

        Safe whenever no writer is mid-publish on this machine (daemon
        startup): a ``*.tmp.<pid>`` name is only ever an unrenamed
        leftover.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for leftover in shard.glob("*.tmp.*"):
                try:
                    os.unlink(leftover)
                    removed += 1
                except OSError:
                    continue
        return removed

    def stats(self) -> Dict[str, object]:
        """Plain-data inventory for the serve stats endpoint."""
        entries = list(self.iter_fingerprints())
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": self.size_bytes(),
        }

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
