"""Request/response envelopes for the serve daemon.

Both front-ends (HTTP JSON and stdin-JSONL) speak the same flat JSON
request format, normalized here into the engine's :class:`BatchJob`
spec.  Normalization is strict — an unknown key is an error, not
silently ignored — because a typo'd knob that falls on the floor would
*look* cached-and-correct while compiling the wrong thing.

Request (all fields optional except ``arch``/``qubits``)::

    {"id": 7, "op": "compile", "arch": "grid", "qubits": 16,
     "workload": "rand", "density": 0.3, "seed": 0, "method": "hybrid",
     "gamma": 0.0, "layers": 1, "mixer": "rx", "noise": false,
     "validate": true, "lint": false, "label": null,
     "options": {"max_predictions": 8}}

``qubits``/``n_qubits`` and ``noise``/``use_noise`` are accepted as
aliases.  ``op`` defaults to ``"compile"``; the daemon also understands
``"stats"``, ``"ping"`` and ``"shutdown"``.

Response::

    {"id": 7, "ok": true, "fingerprint": "...", "job": "grid/...",
     "served_from": "store" | "compiled" | "inflight",
     "serve_ms": 1.93, "result": {... JobResult.to_json() ...}}

``result`` is byte-for-byte the payload a cold compile produces — a
store or in-flight hit returns the identical document.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..batch.jobs import BatchJob
from ..exceptions import SpecificationError

#: Protocol version stamped into every response envelope.
PROTOCOL_VERSION = 1

#: Ways a compile response can be produced.
SERVED_FROM = ("store", "compiled", "inflight")

#: Request operations the daemon understands.
OPS = ("compile", "stats", "ping", "shutdown")

#: Request key -> BatchJob field (aliases included).
_FIELD_ALIASES: Dict[str, str] = {
    "arch": "arch",
    "qubits": "n_qubits",
    "n_qubits": "n_qubits",
    "workload": "workload",
    "density": "density",
    "seed": "seed",
    "method": "method",
    "gamma": "gamma",
    "layers": "layers",
    "mixer": "mixer",
    "noise": "use_noise",
    "use_noise": "use_noise",
    "validate": "validate",
    "lint": "lint",
    "label": "label",
}

#: Envelope keys that are not job-spec fields.
_ENVELOPE_KEYS = frozenset({"id", "op", "options"})

__all__ = ["OPS", "PROTOCOL_VERSION", "SERVED_FROM", "error_response",
           "normalize_request", "request_id", "request_op",
           "result_response"]


def request_op(payload: Dict[str, Any]) -> str:
    """The operation a request asks for (``"compile"`` by default)."""
    op = payload.get("op", "compile")
    if not isinstance(op, str) or op not in OPS:
        raise SpecificationError(
            f"unknown op {op!r}; expected one of {OPS}")
    return op


def request_id(payload: Dict[str, Any]) -> Optional[object]:
    """The caller's correlation id, echoed verbatim in the response."""
    return payload.get("id")


def normalize_request(payload: Dict[str, Any]) -> BatchJob:
    """A compile request dict -> validated :class:`BatchJob`.

    Raises :class:`~repro.exceptions.SpecificationError` for unknown
    keys, malformed options, or any spec the job constructor rejects
    (unknown arch/method/workload, out-of-range density...).
    """
    if not isinstance(payload, dict):
        raise SpecificationError("request must be a JSON object")
    fields: Dict[str, Any] = {}
    for key, value in payload.items():
        if key in _ENVELOPE_KEYS:
            continue
        field = _FIELD_ALIASES.get(key)
        if field is None:
            raise SpecificationError(
                f"unknown request key {key!r}; expected one of "
                f"{sorted(set(_FIELD_ALIASES) | set(_ENVELOPE_KEYS))}")
        if field in fields and fields[field] != value:
            raise SpecificationError(
                f"conflicting aliases for {field!r} in request")
        fields[field] = value
    if "arch" not in fields:
        raise SpecificationError("request needs an 'arch'")
    if "n_qubits" not in fields:
        raise SpecificationError("request needs a 'qubits' count")
    options = payload.get("options", {})
    if options is None:
        options = {}
    if not isinstance(options, dict):
        raise SpecificationError("'options' must be a JSON object")
    fields["options"] = tuple(sorted(options.items()))
    try:
        return BatchJob(**fields)
    except TypeError as exc:
        raise SpecificationError(f"malformed request: {exc}") from exc


def result_response(payload: Dict[str, Any], fingerprint: str,
                    job_name: str, served_from: str, serve_ms: float,
                    result: Dict[str, Any]) -> Dict[str, Any]:
    """The success envelope for one compile request."""
    assert served_from in SERVED_FROM
    return {
        "version": PROTOCOL_VERSION,
        "id": request_id(payload),
        "ok": bool(result.get("ok")),
        "fingerprint": fingerprint,
        "job": job_name,
        "served_from": served_from,
        "serve_ms": serve_ms,
        "result": result,
    }


def error_response(payload: Dict[str, Any], error_type: str,
                   message: str) -> Dict[str, Any]:
    """The request-level failure envelope (bad spec, daemon error)."""
    return {
        "version": PROTOCOL_VERSION,
        "id": request_id(payload) if isinstance(payload, dict) else None,
        "ok": False,
        "error_type": error_type,
        "error": message,
    }
