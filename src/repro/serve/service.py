"""The serve daemon's request core: dedupe, dispatch, store, telemetry.

:class:`CompileService` is front-end-agnostic — the HTTP and stdin-JSONL
framings in :mod:`repro.serve.daemon` both funnel into
:meth:`CompileService.handle`.  For each compile request:

1. normalize into a :class:`~repro.batch.jobs.BatchJob` and fingerprint
   it (:func:`~repro.resilience.journal.spec_fingerprint`);
2. **store hit** — serve the persisted result, no worker touched;
3. **in-flight hit** — an identical request is already compiling:
   await its shared future (one execution, N responses);
4. **miss** — dispatch to the warm :class:`~repro.batch.PersistentPool`,
   publish an ``ok`` result to the store, resolve all waiters.

Steps 2-4 run between awaits on the single event loop, so the
check-then-register sequence is atomic: two identical requests can
never both become the executing leader.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from typing import Any, Deque, Dict, List, Optional

from .._telemetry import count_event, percentile
from ..batch.jobs import BatchJob, JobResult
from ..batch.pool import PersistentPool
from ..resilience.faults import fault_point
from ..resilience.journal import spec_fingerprint
from .protocol import (error_response, normalize_request, request_op,
                       result_response)
from .store import ResultStore

#: Latency samples kept for the rolling percentile summary.
LATENCY_WINDOW = 2048

__all__ = ["LATENCY_WINDOW", "CompileService", "ServeStats"]


class ServeStats:
    """Cumulative counters plus a rolling latency window.

    Mirrors of the ``serve.*`` process-local event counters
    (:func:`repro._telemetry.count_event`), kept here as well so the
    stats endpoint reports this service instance, not everything the
    process ever did.
    """

    def __init__(self) -> None:
        self.started_s = time.time()
        self.requests = 0
        self.compile_requests = 0
        self.store_hits = 0
        self.store_misses = 0
        self.inflight_dedupe = 0
        self.compiled = 0
        self.compile_failures = 0
        self.request_errors = 0
        self.pool_recoveries = 0
        self.latencies_ms: Deque[float] = deque(maxlen=LATENCY_WINDOW)
        #: Summed per-job cache deltas of jobs *this service* compiled —
        #: the warm-pool proof: misses concentrate in the first requests
        #: and hits dominate once the workers are hot.
        self.cache_totals: Dict[str, Dict[str, int]] = {}

    def observe_latency(self, ms: float) -> None:
        self.latencies_ms.append(ms)

    def absorb_cache_delta(self, delta: Dict[str, Dict[str, int]]) -> None:
        for name, counts in delta.items():
            bucket = self.cache_totals.setdefault(
                name, {"hits": 0, "misses": 0})
            bucket["hits"] += counts.get("hits", 0)
            bucket["misses"] += counts.get("misses", 0)

    def snapshot(self) -> Dict[str, Any]:
        samples: List[float] = list(self.latencies_ms)
        lookups = self.store_hits + self.store_misses
        return {
            "uptime_s": time.time() - self.started_s,
            "requests": self.requests,
            "compile_requests": self.compile_requests,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_hit_rate": (self.store_hits / lookups) if lookups
            else 0.0,
            "inflight_dedupe": self.inflight_dedupe,
            "compiled": self.compiled,
            "compile_failures": self.compile_failures,
            "request_errors": self.request_errors,
            "pool_recoveries": self.pool_recoveries,
            "latency_ms": {
                "count": len(samples),
                "p50": round(percentile(samples, 50), 3),
                "p90": round(percentile(samples, 90), 3),
                "p99": round(percentile(samples, 99), 3),
            },
            "cache_totals": {name: dict(counts) for name, counts
                             in sorted(self.cache_totals.items())},
        }


class CompileService:
    """Async compile front-door over a warm pool and a result store."""

    def __init__(self, pool: PersistentPool,
                 store: Optional[ResultStore] = None) -> None:
        self.pool = pool
        self.store = store
        self.stats = ServeStats()
        #: fingerprint -> future resolving to the leader's JobResult.
        self._inflight: Dict[str, "asyncio.Future[JobResult]"] = {}

    # -- request routing ---------------------------------------------------

    async def handle(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request in, one response envelope out; never raises."""
        self.stats.requests += 1
        count_event("serve.requests")
        try:
            op = request_op(payload)
            if op == "ping":
                return {"id": payload.get("id"), "ok": True, "op": "ping"}
            if op == "stats":
                return {"id": payload.get("id"), "ok": True,
                        "stats": self.stats_payload()}
            if op == "shutdown":
                # The front-end intercepts shutdown *before* handle();
                # reaching here means a bare service (tests) — ack it.
                return {"id": payload.get("id"), "ok": True,
                        "op": "shutdown"}
            return await self.compile(payload)
        except Exception as exc:  # daemon survives any request
            self.stats.request_errors += 1
            count_event("serve.request_errors")
            return error_response(payload, type(exc).__name__, str(exc))

    def stats_payload(self) -> Dict[str, Any]:
        payload = self.stats.snapshot()
        payload["pool"] = self.pool.stats()
        payload["store"] = self.store.stats() if self.store is not None \
            else None
        payload["inflight"] = len(self._inflight)
        return payload

    # -- the compile path --------------------------------------------------

    async def compile(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one compile request from store, flight, or a worker."""
        started = time.perf_counter()
        job = normalize_request(payload)
        fingerprint = spec_fingerprint(job)
        self.stats.compile_requests += 1
        count_event("serve.compile_requests")
        fault_point("serve.request", f"{job.name}:{fingerprint[:12]}")

        # NOTE: no await between the store probe, the in-flight probe
        # and leader registration — this block is atomic on the loop.
        if self.store is not None:
            stored = self.store.get_result(job, fingerprint)
            if stored is not None:
                self.stats.store_hits += 1
                count_event("serve.store_hits")
                return self._respond(payload, fingerprint, job, stored,
                                     "store", started)
            self.stats.store_misses += 1
            count_event("serve.store_misses")

        shared = self._inflight.get(fingerprint)
        if shared is not None:
            self.stats.inflight_dedupe += 1
            count_event("serve.inflight_dedupe")
            result = await asyncio.shield(shared)
            return self._respond(payload, fingerprint, job, result,
                                 "inflight", started)

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[JobResult]" = loop.create_future()
        self._inflight[fingerprint] = future
        try:
            result = await self._execute(job)
            if self.store is not None and result.ok:
                self.store.put(fingerprint, job, result)
            future.set_result(result)
        except BaseException as exc:
            future.set_exception(exc)
            # A future nobody awaits would log "exception never
            # retrieved" on gc; mark it observed.
            future.exception()
            raise
        finally:
            self._inflight.pop(fingerprint, None)
        return self._respond(payload, fingerprint, job, result,
                             "compiled", started)

    async def _execute(self, job: BatchJob) -> JobResult:
        """Run ``job`` on the warm pool, recovering one pool breakage."""
        try:
            result = await asyncio.wrap_future(self.pool.submit(job))
        except BrokenExecutor as first:
            # A worker died mid-job (OOM, segfault, injected kill).
            # Rebuild the pool once and retry; a job that kills its
            # worker again becomes a structured failure, mirroring the
            # batch engine's quarantine convergence.
            self.pool.restart()
            self.stats.pool_recoveries += 1
            count_event("serve.pool_recoveries")
            try:
                result = await asyncio.wrap_future(self.pool.submit(job))
            except BrokenExecutor:
                return JobResult(
                    job=job, ok=False,
                    error=(f"worker died twice running this job "
                           f"(pool rebuilt in between): {first}"),
                    error_type=type(first).__name__)
        if result.ok:
            self.stats.compiled += 1
            count_event("serve.compiled")
            self.stats.absorb_cache_delta(result.cache)
        else:
            self.stats.compile_failures += 1
            count_event("serve.compile_failures")
        return result

    def _respond(self, payload: Dict[str, Any], fingerprint: str,
                 job: BatchJob, result: JobResult, served_from: str,
                 started: float) -> Dict[str, Any]:
        serve_ms = (time.perf_counter() - started) * 1000.0
        self.stats.observe_latency(serve_ms)
        return result_response(payload, fingerprint, job.name,
                               served_from, round(serve_ms, 3),
                               result.to_json())

    def close(self) -> None:
        """Release the pool (the store needs no teardown)."""
        self.pool.close()
