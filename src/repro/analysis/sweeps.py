"""Programmatic experiment sweeps (the library surface behind benchmarks/).

A *sweep* compiles a grid of (architecture, workload, compiler) points and
collects the paper's metrics, optionally averaging over random seeds.

Compilers may be given either as callables (legacy, runs in-process) or as
method-name strings resolved through the single method registry
(:mod:`repro.pipeline.registry` — ``"hybrid"``, ``"greedy"``, ``"ata"``,
or any registered baseline).  The string form routes every cell through
the batch engine, which memoizes distance matrices and ATA patterns
across cells and, with ``workers > 1``, fans the sweep out over a process
pool.  This module keeps no method table of its own: registering a new
compiler makes it sweepable by name immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..arch.coupling import CouplingGraph
from ..arch.registry import architecture_for
from ..compiler.result import CompiledResult
from ..problems.graphs import (ProblemGraph, random_problem_graph,
                               regular_for_density)

CompilerFn = Callable[[CouplingGraph, ProblemGraph], CompiledResult]
CompilerSpec = Union[str, CompilerFn]


@dataclass
class SweepPoint:
    """One measured cell of a sweep."""

    arch: str
    workload: str
    compiler: str
    depth: float
    cx: float
    swaps: float
    time_s: float
    n_seeds: int = 1

    def as_row(self) -> List[object]:
        return [f"{self.arch} {self.workload}", self.compiler,
                self.depth, self.cx, self.time_s]


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def get(self, arch: str, workload: str, compiler: str) -> SweepPoint:
        for point in self.points:
            if (point.arch == arch and point.workload == workload
                    and point.compiler == compiler):
                return point
        raise KeyError((arch, workload, compiler))

    def compilers(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.compiler not in seen:
                seen.append(point.compiler)
        return seen

    def rows(self, metric: str = "depth") -> List[List[object]]:
        """One row per (arch, workload), one column per compiler."""
        compilers = self.compilers()
        cells: Dict[tuple, Dict[str, float]] = {}
        order: List[tuple] = []
        for point in self.points:
            key = (point.arch, point.workload)
            if key not in cells:
                cells[key] = {}
                order.append(key)
            cells[key][point.compiler] = getattr(point, metric)
        return [[f"{arch} {workload}"]
                + [cells[(arch, workload)].get(c, "") for c in compilers]
                for arch, workload in order]


def make_workload(kind: str, n: int, density: float,
                  seed: int) -> ProblemGraph:
    """Paper-style workloads: ``rand`` (G(n,m)) or ``reg`` (regular)."""
    if kind == "rand":
        return random_problem_graph(n, density, seed=seed)
    if kind == "reg":
        return regular_for_density(n, density, seed=seed)
    raise ValueError(f"unknown workload kind {kind!r}")


def run_sweep(
    arch_kinds: Sequence[str],
    workloads: Sequence[tuple],
    compilers: Dict[str, CompilerSpec],
    seeds: Sequence[int] = (0,),
    validate: bool = True,
    coupling_factory: Optional[Callable[[str, int], CouplingGraph]] = None,
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
) -> SweepResult:
    """Compile every (arch, workload, compiler) cell, averaged over seeds.

    ``workloads`` entries are ``(kind, n, density)`` tuples; the workload
    label in the result is ``"{kind}-{n}-{density}"``.

    ``compilers`` values that are strings (and no custom
    ``coupling_factory``) run through :func:`repro.batch.compile_many` —
    serially by default, over ``workers`` processes when given.  A failed
    cell raises ``RuntimeError`` naming the job and the captured error.
    """
    batchable = (coupling_factory is None
                 and all(isinstance(spec, str) for spec in compilers.values()))
    if batchable:
        return _run_sweep_batched(arch_kinds, workloads, compilers, seeds,
                                  validate, workers, timeout_s)
    if workers and workers > 1:
        raise ValueError(
            "workers > 1 needs picklable cells: name compilers by method "
            "string and drop coupling_factory")
    factory = coupling_factory or architecture_for
    result = SweepResult()
    for arch in arch_kinds:
        for kind, n, density in workloads:
            label = f"{kind}-{n}-{density:g}"
            coupling = factory(arch, n)
            accumulators: Dict[str, List[float]] = {
                name: [0.0, 0.0, 0.0, 0.0] for name in compilers}
            for seed in seeds:
                problem = make_workload(kind, n, density, seed)
                for name, compile_fn in compilers.items():
                    compiled = compile_fn(coupling, problem)
                    if validate:
                        compiled.validate(coupling, problem)
                    acc = accumulators[name]
                    acc[0] += compiled.depth()
                    acc[1] += compiled.gate_count
                    acc[2] += compiled.swap_count
                    acc[3] += compiled.wall_time_s
            for name, acc in accumulators.items():
                k = len(seeds)
                result.points.append(SweepPoint(
                    arch=arch, workload=label, compiler=name,
                    depth=acc[0] / k, cx=acc[1] / k, swaps=acc[2] / k,
                    time_s=acc[3] / k, n_seeds=k))
    return result


def _run_sweep_batched(
    arch_kinds: Sequence[str],
    workloads: Sequence[tuple],
    compilers: Dict[str, str],
    seeds: Sequence[int],
    validate: bool,
    workers: Optional[int],
    timeout_s: Optional[float],
) -> SweepResult:
    """Route the sweep grid through the batch engine, then re-aggregate."""
    from ..batch import BatchJob, compile_many

    jobs: List[BatchJob] = []
    cells: List[tuple] = []  # parallel to jobs: (arch, label, compiler name)
    for arch in arch_kinds:
        for kind, n, density in workloads:
            label = f"{kind}-{n}-{density:g}"
            for name, method in compilers.items():
                for seed in seeds:
                    jobs.append(BatchJob(
                        arch=arch, n_qubits=n, workload=kind,
                        density=density, seed=seed, method=method,
                        validate=validate))
                    cells.append((arch, label, name))
    executor = "process" if workers and workers > 1 else "serial"
    report = compile_many(jobs, workers=workers, timeout_s=timeout_s,
                          executor=executor)
    if report.failures:
        detail = "; ".join(f"{r.job.name}: {r.error_type}: {r.error}"
                           for r in report.failures[:5])
        raise RuntimeError(
            f"{len(report.failures)} sweep cell(s) failed — {detail}")

    result = SweepResult()
    accumulators: Dict[tuple, List[float]] = {}
    order: List[tuple] = []
    for cell, job_result in zip(cells, report.results):
        if cell not in accumulators:
            accumulators[cell] = [0.0, 0.0, 0.0, 0.0, 0]
            order.append(cell)
        acc = accumulators[cell]
        record = job_result.record
        acc[0] += record["depth"]
        acc[1] += record["cx"]
        acc[2] += record["swaps"]
        acc[3] += record["wall_time_s"]
        acc[4] += 1
    for (arch, label, name) in order:
        acc = accumulators[(arch, label, name)]
        k = acc[4]
        result.points.append(SweepPoint(
            arch=arch, workload=label, compiler=name,
            depth=acc[0] / k, cx=acc[1] / k, swaps=acc[2] / k,
            time_s=acc[3] / k, n_seeds=k))
    return result
