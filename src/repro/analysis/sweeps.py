"""Programmatic experiment sweeps (the library surface behind benchmarks/).

A *sweep* compiles a grid of (architecture, workload, compiler) points and
collects the paper's metrics, optionally averaging over random seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..arch.coupling import CouplingGraph
from ..arch.registry import architecture_for
from ..compiler.result import CompiledResult
from ..problems.graphs import (ProblemGraph, random_problem_graph,
                               regular_for_density)

CompilerFn = Callable[[CouplingGraph, ProblemGraph], CompiledResult]


@dataclass
class SweepPoint:
    """One measured cell of a sweep."""

    arch: str
    workload: str
    compiler: str
    depth: float
    cx: float
    swaps: float
    time_s: float
    n_seeds: int = 1

    def as_row(self) -> List[object]:
        return [f"{self.arch} {self.workload}", self.compiler,
                self.depth, self.cx, self.time_s]


@dataclass
class SweepResult:
    points: List[SweepPoint] = field(default_factory=list)

    def get(self, arch: str, workload: str, compiler: str) -> SweepPoint:
        for point in self.points:
            if (point.arch == arch and point.workload == workload
                    and point.compiler == compiler):
                return point
        raise KeyError((arch, workload, compiler))

    def compilers(self) -> List[str]:
        seen: List[str] = []
        for point in self.points:
            if point.compiler not in seen:
                seen.append(point.compiler)
        return seen

    def rows(self, metric: str = "depth") -> List[List[object]]:
        """One row per (arch, workload), one column per compiler."""
        compilers = self.compilers()
        cells: Dict[tuple, Dict[str, float]] = {}
        order: List[tuple] = []
        for point in self.points:
            key = (point.arch, point.workload)
            if key not in cells:
                cells[key] = {}
                order.append(key)
            cells[key][point.compiler] = getattr(point, metric)
        return [[f"{arch} {workload}"]
                + [cells[(arch, workload)].get(c, "") for c in compilers]
                for arch, workload in order]


def make_workload(kind: str, n: int, density: float,
                  seed: int) -> ProblemGraph:
    """Paper-style workloads: ``rand`` (G(n,m)) or ``reg`` (regular)."""
    if kind == "rand":
        return random_problem_graph(n, density, seed=seed)
    if kind == "reg":
        return regular_for_density(n, density, seed=seed)
    raise ValueError(f"unknown workload kind {kind!r}")


def run_sweep(
    arch_kinds: Sequence[str],
    workloads: Sequence[tuple],
    compilers: Dict[str, CompilerFn],
    seeds: Sequence[int] = (0,),
    validate: bool = True,
    coupling_factory: Optional[Callable[[str, int], CouplingGraph]] = None,
) -> SweepResult:
    """Compile every (arch, workload, compiler) cell, averaged over seeds.

    ``workloads`` entries are ``(kind, n, density)`` tuples; the workload
    label in the result is ``"{kind}-{n}-{density}"``.
    """
    factory = coupling_factory or architecture_for
    result = SweepResult()
    for arch in arch_kinds:
        for kind, n, density in workloads:
            label = f"{kind}-{n}-{density:g}"
            coupling = factory(arch, n)
            accumulators: Dict[str, List[float]] = {
                name: [0.0, 0.0, 0.0, 0.0] for name in compilers}
            for seed in seeds:
                problem = make_workload(kind, n, density, seed)
                for name, compile_fn in compilers.items():
                    compiled = compile_fn(coupling, problem)
                    if validate:
                        compiled.validate(coupling, problem)
                    acc = accumulators[name]
                    acc[0] += compiled.depth()
                    acc[1] += compiled.gate_count
                    acc[2] += compiled.swap_count
                    acc[3] += compiled.wall_time_s
            for name, acc in accumulators.items():
                k = len(seeds)
                result.points.append(SweepPoint(
                    arch=arch, workload=label, compiler=name,
                    depth=acc[0] / k, cx=acc[1] / k, swaps=acc[2] / k,
                    time_s=acc[3] / k, n_seeds=k))
    return result
