"""Result metrics and cross-compiler comparison helpers."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..arch.noise import NoiseModel
from ..compiler.result import CompiledResult


def result_metrics(result: CompiledResult,
                   noise: Optional[NoiseModel] = None) -> Dict[str, float]:
    """The metric row the paper reports for one compiled circuit."""
    metrics: Dict[str, float] = {
        "depth": result.depth(),
        "cx": result.gate_count,
        "swaps": result.swap_count,
        "time_s": result.wall_time_s,
    }
    if noise is not None:
        metrics["esp"] = result.esp(noise)
    return metrics


def reduction(ours: float, baseline: float) -> float:
    """Relative reduction "ours vs baseline" (positive = ours smaller).

    This is the number behind claims like "72% depth reduction".
    """
    if baseline == 0:
        return 0.0
    return 1.0 - ours / baseline


def normalize(values: Dict[str, float],
              reference: str) -> Dict[str, float]:
    """Normalise a metric dict to one entry (Fig 17 style bars)."""
    ref = values[reference]
    if ref == 0:
        raise ValueError(f"reference {reference!r} metric is zero")
    return {name: value / ref for name, value in values.items()}


def geometric_mean(values: Iterable[float]) -> float:
    import math

    values = list(values)
    if not values:
        raise ValueError("no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
