"""Metrics and reporting used by the benchmark harness."""

from .metrics import geometric_mean, normalize, reduction, result_metrics
from .report import format_table
from .sweeps import (SweepPoint, SweepResult, make_workload, run_sweep)

__all__ = ["result_metrics", "reduction", "normalize", "geometric_mean",
           "format_table", "run_sweep", "SweepResult", "SweepPoint",
           "make_workload"]
