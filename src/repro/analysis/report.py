"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (benchmarks print these)."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3f}"
    return str(cell)
