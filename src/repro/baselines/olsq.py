"""QAOA-OLSQ-like baseline (Tan & Cong, ICCAD 2020) — simplified.

OLSQ encodes layout synthesis as a constraint problem and asks a SAT/SMT
solver for a depth-minimal schedule; for QAOA it drops gate-dependency
constraints.  We reproduce its *behavioural* profile — near-optimal depth
at 10-15 qubits, compile times orders of magnitude above the structured
compiler, infeasible beyond toy sizes — with exact A* search where the
node budget allows and wide beam search (top-k states per depth level)
otherwise.
"""

from __future__ import annotations

import time
from itertools import islice
from typing import List, Optional, Tuple

from ..arch.coupling import CouplingGraph
from ..compiler.result import CompiledResult
from ..exceptions import SolverError
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph
from ..solver.astar import solve_depth_optimal
from ..solver.reference import (_candidate_actions, _conflict_free_subsets,
                                _h, _invert)
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge


def compile_olsq(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    gamma: float = 0.0,
    initial_mapping: Optional[Mapping] = None,
    exact_node_budget: int = 150_000,
    beam_width: int = 400,
    children_per_state: int = 128,
) -> CompiledResult:
    """Exact depth-minimal search with a beam-search fallback."""
    start = time.perf_counter()
    if initial_mapping is None:
        initial_mapping = Mapping.trivial(problem.n_vertices,
                                          coupling.n_qubits)
    # The exact expansion enumerates every conflict-free action subset per
    # node — affordable only on genuinely tiny instances (this mirrors the
    # real OLSQ hitting a wall beyond ~15 qubits).
    tiny = problem.n_edges <= 8 and coupling.n_edges <= 8
    exact = False
    circuit = None
    if tiny:
        try:
            result = solve_depth_optimal(
                coupling, sorted(problem.edges),
                initial_mapping=initial_mapping, gamma=gamma,
                max_nodes=exact_node_budget)
            circuit = result.circuit
            exact = True
        except SolverError:
            pass
    if circuit is None:
        circuit = _beam_search(coupling, problem, initial_mapping, gamma,
                               beam_width, children_per_state)
    compiled = CompiledResult(circuit, initial_mapping, "olsq",
                              time.perf_counter() - start)
    compiled.extra["exact"] = exact
    return compiled


def _beam_search(coupling, problem, initial_mapping, gamma, beam_width,
                 children_per_state):
    """Depth-synchronous beam search with the solver's admissible h.

    Child enumeration is capped; because the subset generator emits
    action-rich combinations first, the cap keeps gate-dense candidates.
    """
    dist = coupling.distance_matrix
    hw_edges = sorted(coupling.edges)
    required = frozenset(canonical_edge(u, v) for u, v in problem.edges)

    # Beam entries: (occupancy, remaining, history, swap_count)
    start_state = (initial_mapping.as_tuple(), required, (), 0)
    beam: List[Tuple] = [start_state]
    depth = 0
    max_depth = 8 * coupling.n_qubits + 8 * len(required) + 16
    best_state = start_state
    stall = 0

    while depth < max_depth and stall < 30:
        depth += 1
        scored: List[Tuple] = []
        seen = set()
        for occupancy, remaining, history, swap_count in beam:
            log_to_phys = _invert(occupancy, initial_mapping.n_logical)
            actions = _candidate_actions(hw_edges, occupancy, remaining,
                                         log_to_phys, dist, True)
            for action_set in islice(_conflict_free_subsets(actions),
                                     children_per_state):
                new_occ = list(occupancy)
                new_rem = set(remaining)
                new_swaps = swap_count
                for action, u, v in action_set:
                    if action == "gate":
                        lu, lv = new_occ[u], new_occ[v]
                        new_rem.discard(canonical_edge(lu, lv))
                    else:
                        new_occ[u], new_occ[v] = new_occ[v], new_occ[u]
                        new_swaps += 1
                key = (tuple(new_occ), frozenset(new_rem))
                if key in seen:
                    continue
                seen.add(key)
                new_history = history + (action_set,)
                if not new_rem:
                    return _materialise(coupling, initial_mapping,
                                        new_history, gamma)
                child_l2p = _invert(key[0], initial_mapping.n_logical)
                h = _h(key[1], child_l2p, dist)
                # Primary: depth lower bound, then remaining work, then
                # swaps spent (OLSQ's SAT objective also bounds gates).
                scored.append((h + depth, len(new_rem), new_swaps,
                               key[0], key[1], new_history))
        if not scored:
            break
        scored.sort(key=lambda s: (s[0], s[1], s[2]))
        beam = [(occ, rem, hist, swaps)
                for _, _, swaps, occ, rem, hist in scored[:beam_width]]
        leader = min(beam, key=lambda s: len(s[1]))
        if len(leader[1]) < len(best_state[1]):
            best_state = leader
            stall = 0
        else:
            stall += 1

    # Beam stalled (it can cycle through equivalent permutations): take the
    # most advanced state and finish the few leftovers by plain routing.
    from ..ata.executor import greedy_completion
    from ..ir.mapping import Mapping as _Mapping

    occupancy, remaining, history, _ = best_state
    circuit = _materialise(coupling, initial_mapping, history, gamma)
    final = _Mapping.__new__(_Mapping)
    final.phys_to_log = list(occupancy)
    final.log_to_phys = [0] * initial_mapping.n_logical
    for phys, logical in enumerate(occupancy):
        if logical is not None:
            final.log_to_phys[logical] = phys
    greedy_completion(coupling, circuit, final, set(remaining), gamma)
    return circuit


def _materialise(coupling, initial_mapping, history, gamma) -> Circuit:
    circuit = Circuit(coupling.n_qubits)
    occupancy = list(initial_mapping.as_tuple())
    for action_set in history:
        for action, u, v in action_set:
            if action == "gate":
                lu, lv = occupancy[u], occupancy[v]
                circuit.append(
                    Op.cphase(u, v, gamma, tag=canonical_edge(lu, lv)))
        for action, u, v in action_set:
            if action == "swap":
                circuit.append(Op.swap(u, v))
                occupancy[u], occupancy[v] = occupancy[v], occupancy[u]
    return circuit
