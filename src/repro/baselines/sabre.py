"""SABRE-like generic router (Li, Ding, Xie — ASPLOS 2019).

The classic qubit-mapping algorithm for *fixed-order* circuits.  Applied
to a QAOA program it deliberately ignores commutativity: gates are wired
into a dependency DAG in their textual order (two gates sharing a qubit
depend on each other), and routing only ever looks at the DAG's front
layer plus a shallow lookahead window.

This is the "previous compilation methods are designed for quantum
architectures with arbitrary connectivity" strawman of Section 1 — a
correct, widely deployed technique that leaves the permutable-operator
freedom on the table.  Including it lets the benchmarks quantify how much
of the paper's win comes from commutativity alone vs from regularity.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..compiler.mapping import degree_placement
from ..compiler.result import CompiledResult
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph

#: Weight of the lookahead window relative to the front layer.
_LOOKAHEAD_WEIGHT = 0.5
_LOOKAHEAD_SIZE = 20
#: Decay applied to recently swapped qubits to avoid ping-ponging.
_DECAY = 0.001


def compile_sabre(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    gamma: float = 0.0,
    initial_mapping: Optional[Mapping] = None,
) -> CompiledResult:
    """Route the fixed-order gate list with SABRE's heuristic search."""
    start = time.perf_counter()
    if initial_mapping is None:
        initial_mapping = degree_placement(coupling, problem)
    mapping = initial_mapping.copy()
    circuit = Circuit(coupling.n_qubits)
    dist = coupling.distance_matrix

    gates: List[Tuple[int, int]] = sorted(problem.edges)
    # DAG: gate i depends on the latest earlier gate using each qubit.
    preds: List[Set[int]] = [set() for _ in gates]
    succs: List[Set[int]] = [set() for _ in gates]
    last_user: Dict[int, int] = {}
    for index, (u, v) in enumerate(gates):
        for q in (u, v):
            if q in last_user:
                preds[index].add(last_user[q])
                succs[last_user[q]].add(index)
            last_user[q] = index

    indegree = [len(p) for p in preds]
    front: Set[int] = {i for i, d in enumerate(indegree) if d == 0}
    decay = [1.0] * coupling.n_qubits

    def executable(gate: int) -> bool:
        u, v = gates[gate]
        return coupling.has_edge(mapping.physical(u), mapping.physical(v))

    def gate_distance(gate: int, trial: Mapping) -> int:
        u, v = gates[gate]
        return int(dist[trial.physical(u), trial.physical(v)])

    def lookahead(front_set: Set[int]) -> List[int]:
        window: List[int] = []
        frontier = sorted(front_set)
        seen = set(frontier)
        while frontier and len(window) < _LOOKAHEAD_SIZE:
            nxt: List[int] = []
            for g in frontier:
                for s in sorted(succs[g]):
                    if s not in seen:
                        seen.add(s)
                        window.append(s)
                        nxt.append(s)
            frontier = nxt
        return window

    guard = 0
    guard_limit = 60 * coupling.n_qubits + 10 * len(gates) + 200
    while front:
        guard += 1
        ready = [g for g in sorted(front) if executable(g)]
        if ready:
            for g in ready:
                u, v = gates[g]
                circuit.append(Op.cphase(mapping.physical(u),
                                         mapping.physical(v), gamma,
                                         tag=canonical_edge(u, v)))
                front.discard(g)
                for s in succs[g]:
                    indegree[s] -= 1
                    if indegree[s] == 0:
                        front.add(s)
            decay = [1.0] * coupling.n_qubits
            continue

        if guard > guard_limit:
            from ..ata.executor import greedy_completion

            remaining = {canonical_edge(*gates[g]) for g in front}
            remaining |= {canonical_edge(*gates[i])
                          for i in range(len(gates)) if indegree[i] > 0}
            greedy_completion(coupling, circuit, mapping, remaining, gamma)
            front.clear()
            break

        window = lookahead(front)
        best_swap, best_score = None, None
        candidate_qubits = {mapping.physical(q)
                            for g in front for q in gates[g]}
        for pu in sorted(candidate_qubits):
            for pv in coupling.neighbors(pu):
                trial = mapping.copy()
                trial.swap_physical(pu, pv)
                score = sum(gate_distance(g, trial) for g in front)
                if window:
                    score += _LOOKAHEAD_WEIGHT * sum(
                        gate_distance(g, trial) for g in window) / len(window)
                score *= max(decay[pu], decay[pv])
                key = (score, pu, pv)
                if best_score is None or key < best_score:
                    best_score = key
                    best_swap = (pu, pv)
        pu, pv = best_swap
        circuit.append(Op.swap(pu, pv))
        mapping.swap_physical(pu, pv)
        decay[pu] += _DECAY
        decay[pv] += _DECAY

    return CompiledResult(circuit, initial_mapping, "sabre",
                          time.perf_counter() - start)
