"""SATMAP-like baseline (Molavi et al. 2022) — simplified.

SATMAP phrases qubit mapping and routing as MaxSAT with a swap-count
objective.  We reproduce its behavioural profile — very low gate counts,
indifferent depth, compile times well above the structured compiler but
below OLSQ — with a multi-restart search: several initial placements each
routed with unification-aware greedy routing, keeping the circuit with the
fewest CX gates.
"""

from __future__ import annotations

import random
import time

from ..arch.coupling import CouplingGraph
from ..compiler.greedy import greedy_compile
from ..compiler.mapping import degree_placement, trivial_placement
from ..compiler.result import CompiledResult
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph
from .twoqan import quadratic_initial_mapping


def compile_satmap(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    gamma: float = 0.0,
    restarts: int = 8,
    seed: int = 0,
) -> CompiledResult:
    """Gate-count-minimising multi-restart compilation."""
    start = time.perf_counter()
    rng = random.Random(seed)
    placements = [
        trivial_placement(coupling, problem),
        degree_placement(coupling, problem),
        quadratic_initial_mapping(coupling, problem, seed=seed),
    ]
    n = problem.n_vertices
    sites = list(range(coupling.n_qubits))
    for _ in range(max(0, restarts - len(placements))):
        chosen = rng.sample(sites, n)
        placements.append(Mapping(chosen, coupling.n_qubits))

    best = None
    for placement in placements:
        trace = greedy_compile(coupling, problem, placement, gamma=gamma,
                               record_snapshots=False, unify_swaps=True,
                               gate_selection="greedy")
        cx = trace.circuit.cx_count(unify=True)
        if best is None or cx < best[0]:
            best = (cx, trace.circuit, placement)

    _, circuit, placement = best
    return CompiledResult(circuit, placement, "satmap",
                          time.perf_counter() - start)
