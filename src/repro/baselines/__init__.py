"""Baseline compilers the paper compares against (Section 7.1).

All are *reimplementations in spirit*: each preserves the algorithmic
traits that position the original tool relative to the regularity-aware
compiler (see DESIGN.md, Substitutions).  Every baseline emits circuits
through the same IR and is checked by the same validator.

The "greedy" and "solver" bars of Fig 17 are
``repro.compiler.compile_qaoa(..., method="greedy")`` and
``method="ata"`` respectively.
"""

from .olsq import compile_olsq
from .paulihedral import compile_paulihedral
from .qaim import compile_qaim
from .routing import mapping_cost, matching_layers, route_and_execute
from .sabre import compile_sabre
from .satmap import compile_satmap
from .twoqan import compile_twoqan, quadratic_initial_mapping

__all__ = [
    "compile_sabre",
    "compile_paulihedral",
    "compile_qaim",
    "compile_twoqan",
    "compile_olsq",
    "compile_satmap",
    "quadratic_initial_mapping",
    "matching_layers",
    "route_and_execute",
    "mapping_cost",
]
