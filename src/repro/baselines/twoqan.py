"""2QAN-like baseline (Lao & Browne, ISCA 2022) — simplified.

2QAN's two distinguishing components are reproduced:

* **Quadratic-cost initial mapping** — a local search over placements
  minimising the summed physical distance of all problem edges.  The
  search evaluates O(``n^2 * iterations``) swap moves, which is why the
  real 2QAN becomes intractable beyond ~128 qubits; our iteration budget
  scales the same way (capped so tests stay fast).
* **Unitary unification** — when a routing SWAP lands on a pair that still
  needs a gate, gate and SWAP merge into one 3-CX block.

Routing reuses the greedy engine with unification enabled; no architecture
regularity is exploited, matching the real tool.
"""

from __future__ import annotations

import time
from typing import Optional

from ..arch.coupling import CouplingGraph
from ..compiler.greedy import greedy_compile
from ..compiler.mapping import quadratic_placement
from ..compiler.result import CompiledResult
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph


def quadratic_initial_mapping(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    iterations: Optional[int] = None,
    seed: int = 0,
) -> Mapping:
    """Distance-minimising placement by pairwise-exchange local search.

    2QAN's larger search budget: the real tool explores placements with a
    quadratic-cost solver, which is what makes it strong at small scale
    and slow beyond ~128 qubits.
    """
    n = problem.n_vertices
    if iterations is None:
        iterations = min(20 * n * n, 200_000)
    return quadratic_placement(coupling, problem, iterations=iterations,
                               seed=seed)


def compile_twoqan(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    gamma: float = 0.0,
    seed: int = 0,
    iterations: Optional[int] = None,
) -> CompiledResult:
    """Quadratic placement search + unification-aware greedy routing."""
    start = time.perf_counter()
    initial_mapping = quadratic_initial_mapping(
        coupling, problem, iterations=iterations, seed=seed)
    trace = greedy_compile(coupling, problem, initial_mapping,
                           record_snapshots=False, gamma=gamma,
                           unify_swaps=True, gate_selection="greedy")
    return CompiledResult(trace.circuit, initial_mapping, "2qan",
                          time.perf_counter() - start)
