"""QAIM-like baseline (Alam et al., MICRO 2020) — simplified.

QAIM ("instruction parallelization-aware compilation") heuristically packs
executable CPHASE gates into cycles and inserts SWAPs for unmapped gates,
guided by connectivity strength.  The reproduction keeps its two defining
traits relative to the other systems:

* commutativity *is* exploited (any pending gate may be scheduled when its
  qubits touch), so it beats fixed-order Paulihedral; but
* SWAP insertion is per-gate single-step chasing without matching-based
  coordination or any architecture-regularity awareness, so it trails the
  structured compiler and degrades with scale.
"""

from __future__ import annotations

import time
from typing import Optional, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..compiler.mapping import degree_placement
from ..compiler.result import CompiledResult
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph


def compile_qaim(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    gamma: float = 0.0,
    initial_mapping: Optional[Mapping] = None,
) -> CompiledResult:
    """Cycle-by-cycle scheduling with one-step-per-gate SWAP chasing."""
    start = time.perf_counter()
    if initial_mapping is None:
        initial_mapping = degree_placement(coupling, problem)
    mapping = initial_mapping.copy()
    circuit = Circuit(coupling.n_qubits)
    dist = coupling.distance_matrix

    remaining: Set[Tuple[int, int]] = {canonical_edge(u, v)
                                       for u, v in problem.edges}
    guard = 0
    guard_limit = 60 * coupling.n_qubits + 6 * len(remaining) + 100
    while remaining:
        guard += 1
        busy: Set[int] = set()
        scheduled_any = False
        # Schedule every executable gate first-come (no colouring).
        for u, v in sorted(coupling.edges):
            if u in busy or v in busy:
                continue
            lu, lv = mapping.logical(u), mapping.logical(v)
            if lu is None or lv is None:
                continue
            pair = canonical_edge(lu, lv)
            if pair in remaining:
                circuit.append(Op.cphase(u, v, gamma, tag=pair))
                remaining.discard(pair)
                busy.add(u)
                busy.add(v)
                scheduled_any = True
        if not remaining:
            break
        # One chase step per pending gate, closest pairs first.
        order = sorted(
            remaining,
            key=lambda p: int(dist[mapping.physical(p[0]),
                                   mapping.physical(p[1])]))
        progressed = False
        for lu, lv in order:
            pu, pv = mapping.physical(lu), mapping.physical(lv)
            if int(dist[pu, pv]) <= 1 or pu in busy:
                continue
            step = _step_towards(coupling, pu, pv, dist)
            if step is None or step in busy:
                continue
            circuit.append(Op.swap(pu, step))
            mapping.swap_physical(pu, step)
            busy.add(pu)
            busy.add(step)
            progressed = True
        stuck = not scheduled_any and not progressed
        if remaining and (stuck or guard > guard_limit):
            # Safety net against chase oscillation: route directly.
            from ..ata.executor import greedy_completion

            greedy_completion(coupling, circuit, mapping, remaining, gamma)
            break

    return CompiledResult(circuit, initial_mapping, "qaim",
                          time.perf_counter() - start)


def _step_towards(coupling: CouplingGraph, source: int, target: int,
                  dist) -> Optional[int]:
    for nbr in coupling.neighbors(source):
        if int(dist[nbr, target]) < int(dist[source, target]):
            return nbr
    return None
