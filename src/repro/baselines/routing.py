"""Shared routing helpers for the baseline compilers."""

from __future__ import annotations

from typing import List, Set, Tuple

from ..arch.coupling import CouplingGraph
from ..ir.circuit import Circuit
from ..ir.gates import Op, canonical_edge
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph


def route_and_execute(
    coupling: CouplingGraph,
    circuit: Circuit,
    mapping: Mapping,
    pair: Tuple[int, int],
    gamma: float = 0.0,
) -> None:
    """Bring a logical pair together with shortest-path SWAPs, run the gate.

    The endpoint with more routing freedom is not analysed — one endpoint
    simply walks to the other, which is what the non-regularity-aware
    baselines do per gate.  Mutates ``circuit`` and ``mapping``.
    """
    lu, lv = pair
    pu, pv = mapping.physical(lu), mapping.physical(lv)
    path = coupling.shortest_path(pu, pv)
    for k in range(len(path) - 1, 1, -1):
        circuit.append(Op.swap(path[k], path[k - 1]))
        mapping.swap_physical(path[k], path[k - 1])
    circuit.append(Op.cphase(path[0], path[1], gamma,
                             tag=canonical_edge(lu, lv)))


def matching_layers(problem: ProblemGraph) -> List[List[Tuple[int, int]]]:
    """Partition problem edges into maximal-matching layers.

    This models Pauli-string blocking: each layer is a set of mutually
    disjoint interactions that could run simultaneously with unlimited
    connectivity.
    """
    remaining: Set[Tuple[int, int]] = set(problem.edges)
    layers: List[List[Tuple[int, int]]] = []
    while remaining:
        used: Set[int] = set()
        layer: List[Tuple[int, int]] = []
        for u, v in sorted(remaining):
            if u in used or v in used:
                continue
            layer.append((u, v))
            used.add(u)
            used.add(v)
        remaining -= set(layer)
        layers.append(layer)
    return layers


def mapping_cost(coupling: CouplingGraph, mapping: Mapping,
                 problem: ProblemGraph) -> int:
    """Sum of physical distances over all problem edges (2QAN's objective)."""
    dist = coupling.distance_matrix
    return int(sum(dist[mapping.physical(u), mapping.physical(v)]
                   for u, v in problem.edges))
