"""Paulihedral-like baseline (Li et al., ASPLOS 2022) — simplified.

Paulihedral schedules Hamiltonian-simulation kernels block-wise: Pauli
strings are grouped into layers of disjoint terms and each layer is routed
onto hardware in order.  The two properties that matter for the comparison
with the regularity-aware compiler are reproduced:

* gates are processed in a fixed layer order (no global commutativity
  exploitation across the whole circuit), and
* routing is per-gate shortest-path SWAP insertion with no architecture
  structure awareness.

This yields the paper's observed behaviour: it scales to 1024 qubits (its
per-gate work is cheap), but both depth and gate count are several times
those of the structured compiler on dense inputs.
"""

from __future__ import annotations

import time
from typing import Optional

from ..arch.coupling import CouplingGraph
from ..compiler.mapping import degree_placement
from ..compiler.result import CompiledResult
from ..ir.circuit import Circuit
from ..ir.mapping import Mapping
from ..problems.graphs import ProblemGraph
from .routing import matching_layers, route_and_execute


def compile_paulihedral(
    coupling: CouplingGraph,
    problem: ProblemGraph,
    gamma: float = 0.0,
    initial_mapping: Optional[Mapping] = None,
) -> CompiledResult:
    """Layer-ordered block scheduling with per-gate SWAP routing."""
    start = time.perf_counter()
    if initial_mapping is None:
        initial_mapping = degree_placement(coupling, problem)
    mapping = initial_mapping.copy()
    circuit = Circuit(coupling.n_qubits)

    for layer in matching_layers(problem):
        # Within a block, adjacent gates run first (they parallelise under
        # ASAP layering); distant gates are then routed one by one.
        adjacent = []
        distant = []
        for u, v in layer:
            if coupling.has_edge(mapping.physical(u), mapping.physical(v)):
                adjacent.append((u, v))
            else:
                distant.append((u, v))
        for pair in adjacent:
            route_and_execute(coupling, circuit, mapping, pair, gamma)
        for pair in distant:
            route_and_execute(coupling, circuit, mapping, pair, gamma)

    return CompiledResult(circuit, initial_mapping, "paulihedral",
                          time.perf_counter() - start)
