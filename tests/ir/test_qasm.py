"""QASM export / round-trip tests."""

import pytest

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.qasm import from_qasm, to_qasm


@pytest.fixture
def sample():
    return Circuit(3, [
        Op.h(0), Op.cphase(0, 1, 0.75), Op.swap(1, 2),
        Op.cx(0, 2), Op.rx(1, 0.5), Op.rz(2, -0.25), Op.phase(0, 1.5),
    ])


class TestExport:
    def test_header(self, sample):
        text = to_qasm(sample)
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[3];" in text

    def test_gate_lines(self, sample):
        text = to_qasm(sample)
        assert "cu1(0.75) q[0],q[1];" in text
        assert "swap q[1],q[2];" in text
        assert "cx q[0],q[2];" in text
        assert "rx(0.5) q[1];" in text

    def test_measurement_block(self, sample):
        text = to_qasm(sample, measure=True)
        assert "creg c[3];" in text
        assert "measure q -> c;" in text

    def test_comment_header(self, sample):
        text = to_qasm(sample, comment="hello\nworld")
        assert text.splitlines()[0] == "// hello"
        assert text.splitlines()[1] == "// world"


class TestRoundTrip:
    def test_roundtrip_preserves_ops(self, sample):
        parsed = from_qasm(to_qasm(sample))
        assert parsed.n_qubits == sample.n_qubits
        assert len(parsed) == len(sample)
        for a, b in zip(parsed, sample):
            assert a.kind == b.kind
            assert a.qubits == b.qubits
            if b.param is not None:
                assert a.param == pytest.approx(b.param)

    def test_roundtrip_compiled_circuit(self):
        from repro.arch import line
        from repro.compiler import compile_qaoa
        from repro.problems import clique

        result = compile_qaoa(line(5), clique(5), gamma=0.4)
        parsed = from_qasm(to_qasm(result.circuit))
        assert parsed.depth() == result.circuit.depth()
        assert parsed.swap_count == result.circuit.swap_count

    def test_reject_garbage(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nfoo q[0];")

    def test_reject_missing_qreg(self):
        with pytest.raises(ValueError):
            from_qasm("OPENQASM 2.0;\nh q[0];")


class TestDraw:
    def test_draw_contains_symbols(self):
        from repro.ir.draw import draw
        c = Circuit(3, [Op.cphase(0, 1), Op.swap(1, 2), Op.h(0)])
        art = draw(c)
        assert "●" in art
        assert "x" in art
        assert "H" in art
        assert art.count("\n") == 2

    def test_draw_truncates(self):
        from repro.ir.draw import draw
        c = Circuit(2, [Op.h(0)] * 100)
        art = draw(c, max_cycles=10)
        assert "…" in art
