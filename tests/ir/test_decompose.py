"""Decomposition tests: exact unitaries and fusion-aware CX counting."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.decompose import count_cx, decompose_to_cx
from repro.ir.gates import CX, Op

from tests.helpers import assert_unitary_equal, circuit_unitary, op_unitary


GAMMA = 0.731


class TestUnitaryExactness:
    def test_lone_cphase_decomposition_is_exact(self):
        abstract = Circuit(2, [Op.cphase(0, 1, GAMMA)])
        decomposed = decompose_to_cx(abstract)
        assert_unitary_equal(circuit_unitary(abstract),
                             circuit_unitary(decomposed))

    def test_lone_swap_decomposition_is_exact(self):
        abstract = Circuit(2, [Op.swap(0, 1)])
        decomposed = decompose_to_cx(abstract)
        assert_unitary_equal(circuit_unitary(abstract),
                             circuit_unitary(decomposed))

    def test_fused_cphase_swap_is_exact(self):
        abstract = Circuit(2, [Op.cphase(0, 1, GAMMA), Op.swap(0, 1)])
        decomposed = decompose_to_cx(abstract)
        assert decomposed.count_kind(CX) == 3
        assert_unitary_equal(circuit_unitary(abstract),
                             circuit_unitary(decomposed))

    def test_fused_swap_then_cphase_is_exact(self):
        abstract = Circuit(2, [Op.swap(0, 1), Op.cphase(0, 1, GAMMA)])
        decomposed = decompose_to_cx(abstract)
        assert decomposed.count_kind(CX) == 3
        assert_unitary_equal(circuit_unitary(abstract),
                             circuit_unitary(decomposed))

    def test_fusion_across_reversed_qubit_order(self):
        abstract = Circuit(2, [Op.cphase(1, 0, GAMMA), Op.swap(0, 1)])
        decomposed = decompose_to_cx(abstract)
        assert decomposed.count_kind(CX) == 3
        assert_unitary_equal(circuit_unitary(abstract),
                             circuit_unitary(decomposed))

    def test_three_qubit_pattern_slice_is_exact(self):
        abstract = Circuit(3, [
            Op.cphase(0, 1, GAMMA), Op.swap(0, 1),
            Op.cphase(1, 2, 0.3), Op.swap(1, 2),
            Op.cphase(0, 1, 0.9),
        ])
        decomposed = decompose_to_cx(abstract)
        assert_unitary_equal(circuit_unitary(abstract),
                             circuit_unitary(decomposed))

    def test_unify_false_uses_five_cx(self):
        abstract = Circuit(2, [Op.cphase(0, 1, GAMMA), Op.swap(0, 1)])
        decomposed = decompose_to_cx(abstract, unify=False)
        assert decomposed.count_kind(CX) == 5
        assert_unitary_equal(circuit_unitary(abstract),
                             circuit_unitary(decomposed))


class TestFusionRules:
    def test_intervening_gate_blocks_fusion(self):
        c = Circuit(2, [Op.cphase(0, 1, GAMMA), Op.h(0), Op.swap(0, 1)])
        assert count_cx(c) == 2 + 3

    def test_intervening_gate_on_other_qubit_blocks_fusion(self):
        c = Circuit(3, [Op.cphase(0, 1, GAMMA), Op.cphase(1, 2, 0.1),
                        Op.swap(0, 1)])
        # cphase(0,1) is interrupted by cphase(1,2) touching qubit 1.
        assert count_cx(c) == 2 + 2 + 3

    def test_unrelated_gate_does_not_block_fusion(self):
        c = Circuit(3, [Op.cphase(0, 1, GAMMA), Op.h(2), Op.swap(0, 1)])
        assert count_cx(c) == 3

    def test_same_kind_repeat_does_not_fuse(self):
        c = Circuit(2, [Op.swap(0, 1), Op.swap(0, 1)])
        assert count_cx(c) == 6

    def test_counts_match_materialised_decomposition(self):
        ops = [Op.cphase(0, 1, 0.2), Op.swap(0, 1), Op.swap(1, 2),
               Op.cphase(1, 2, 0.4), Op.h(0), Op.cphase(0, 2, 0.5)]
        c = Circuit(3, ops)
        for unify in (True, False):
            assert (count_cx(c, unify=unify)
                    == decompose_to_cx(c, unify=unify).count_kind(CX))

    def test_raw_cx_passes_through(self):
        c = Circuit(2, [Op.cx(0, 1)])
        assert count_cx(c) == 1
        assert decompose_to_cx(c).count_kind(CX) == 1


class TestHelperSanity:
    """Trust-but-verify the test helper itself on textbook identities."""

    def test_cx_squared_is_identity(self):
        u = op_unitary(Op.cx(0, 1), 2)
        np.testing.assert_allclose(u @ u, np.eye(4), atol=1e-12)

    def test_swap_via_three_cx(self):
        c = Circuit(2, [Op.cx(0, 1), Op.cx(1, 0), Op.cx(0, 1)])
        assert_unitary_equal(op_unitary(Op.swap(0, 1), 2), circuit_unitary(c))

    @pytest.mark.parametrize("gamma", [0.0, 0.5, np.pi, -1.2])
    def test_cphase_is_diagonal(self, gamma):
        u = op_unitary(Op.cphase(0, 1, gamma), 2)
        np.testing.assert_allclose(u, np.diag(np.diag(u)), atol=1e-12)
