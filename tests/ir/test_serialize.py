"""Round-trip tests for JSON serialisation."""

import pytest

from repro.arch import line
from repro.compiler import compile_qaoa
from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.ir.serialize import (circuit_from_dict, circuit_to_dict,
                                compiled_result_from_dict,
                                compiled_result_to_dict, load_result,
                                mapping_from_dict, mapping_to_dict,
                                problem_from_dict, problem_to_dict,
                                save_result)
from repro.problems import random_problem_graph


class TestCircuitRoundTrip:
    def test_ops_preserved(self):
        c = Circuit(3, [Op.h(0), Op.cphase(0, 1, 0.4, tag=(0, 1)),
                        Op.swap(1, 2), Op.cx(0, 2)])
        back = circuit_from_dict(circuit_to_dict(c))
        assert back.n_qubits == 3
        assert len(back) == len(c)
        for a, b in zip(back, c):
            assert a.kind == b.kind
            assert a.qubits == b.qubits
            assert a.param == b.param
            assert a.tag == b.tag

    def test_version_check(self):
        data = circuit_to_dict(Circuit(2))
        data["version"] = 99
        with pytest.raises(ValueError):
            circuit_from_dict(data)

    def test_unknown_kind_rejected(self):
        data = circuit_to_dict(Circuit(2))
        data["ops"] = [{"kind": "warp", "qubits": [0]}]
        with pytest.raises(ValueError):
            circuit_from_dict(data)


class TestMappingRoundTrip:
    def test_round_trip(self):
        m = Mapping([2, 0, 1], 4)
        back = mapping_from_dict(mapping_to_dict(m))
        assert back == m

    def test_version_check(self):
        with pytest.raises(ValueError):
            mapping_from_dict({"version": 0})


class TestResultRoundTrip:
    def test_full_round_trip(self, tmp_path):
        coupling = line(5)
        problem = random_problem_graph(5, 0.6, seed=1)
        result = compile_qaoa(coupling, problem, method="hybrid")
        path = str(tmp_path / "result.json")
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.method == result.method
        assert loaded.depth() == result.depth()
        assert loaded.gate_count == result.gate_count
        loaded.validate(coupling, problem)

    def test_extra_filtered_to_scalars(self):
        coupling = line(4)
        problem = random_problem_graph(4, 0.5, seed=0)
        result = compile_qaoa(coupling, problem, method="hybrid")
        data = compiled_result_to_dict(result)
        assert all(isinstance(v, (str, int, float, bool))
                   for v in data["extra"].values())
        back = compiled_result_from_dict(data)
        assert back.method == "hybrid"


class TestProblemRoundTrip:
    def test_round_trip(self):
        problem = random_problem_graph(8, 0.4, seed=2)
        back = problem_from_dict(problem_to_dict(problem))
        assert back.n_vertices == problem.n_vertices
        assert back.edges == problem.edges
        assert back.name == problem.name
