"""Property-based QASM round-trip tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.qasm import from_qasm, to_qasm

N_QUBITS = 4


def op_strategy():
    qubit = st.integers(0, N_QUBITS - 1)
    pair = st.tuples(qubit, qubit).filter(lambda t: t[0] != t[1])
    angle = st.floats(-3.0, 3.0, allow_nan=False).map(lambda a: round(a, 9))
    return st.one_of(
        st.builds(lambda q: Op.h(q), qubit),
        st.builds(lambda q, a: Op.rx(q, a), qubit, angle),
        st.builds(lambda q, a: Op.rz(q, a), qubit, angle),
        st.builds(lambda q, a: Op.phase(q, a), qubit, angle),
        st.builds(lambda p, a: Op.cphase(p[0], p[1], a), pair, angle),
        st.builds(lambda p: Op.swap(p[0], p[1]), pair),
        st.builds(lambda p: Op.cx(p[0], p[1]), pair),
    )


@settings(max_examples=80, deadline=None)
@given(st.lists(op_strategy(), max_size=20))
def test_qasm_round_trip(ops):
    circuit = Circuit(N_QUBITS, ops)
    back = from_qasm(to_qasm(circuit))
    assert back.n_qubits == circuit.n_qubits
    assert len(back) == len(circuit)
    for a, b in zip(back, circuit):
        assert a.kind == b.kind
        assert a.qubits == b.qubits
        if b.param is not None:
            assert a.param == pytest.approx(b.param, abs=1e-9)
