"""Tests for the logical<->physical Mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.mapping import Mapping


class TestConstruction:
    def test_trivial(self):
        m = Mapping.trivial(3)
        assert m.log_to_phys == [0, 1, 2]
        assert m.phys_to_log == [0, 1, 2]

    def test_trivial_with_spares(self):
        m = Mapping.trivial(2, 4)
        assert m.phys_to_log == [0, 1, None, None]

    def test_rejects_non_injective(self):
        with pytest.raises(ValueError):
            Mapping([0, 0], 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Mapping([0, 5], 2)

    def test_rejects_too_few_physical(self):
        with pytest.raises(ValueError):
            Mapping.trivial(4, 2)


class TestSwaps:
    def test_swap_updates_both_directions(self):
        m = Mapping.trivial(3)
        m.swap_physical(0, 2)
        assert m.physical(0) == 2
        assert m.physical(2) == 0
        assert m.logical(0) == 2
        assert m.logical(2) == 0

    def test_swap_with_spare_qubit(self):
        m = Mapping.trivial(1, 2)
        m.swap_physical(0, 1)
        assert m.physical(0) == 1
        assert m.logical(0) is None
        assert m.logical(1) == 0

    def test_double_swap_is_identity(self):
        m = Mapping.trivial(4)
        m.swap_physical(1, 3)
        m.swap_physical(1, 3)
        assert m == Mapping.trivial(4)

    def test_copy_is_independent(self):
        m = Mapping.trivial(2)
        c = m.copy()
        c.swap_physical(0, 1)
        assert m.physical(0) == 0
        assert c.physical(0) == 1

    def test_as_tuple_snapshot(self):
        m = Mapping.trivial(2, 3)
        assert m.as_tuple() == (0, 1, None)


@given(st.permutations(list(range(6))),
       st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5))
                .filter(lambda t: t[0] != t[1]), max_size=20))
def test_mapping_stays_bijective_under_swaps(perm, swaps):
    m = Mapping(perm, 6)
    for u, v in swaps:
        m.swap_physical(u, v)
    # phys_to_log is a permutation and consistent with log_to_phys.
    assert sorted(p for p in m.phys_to_log if p is not None) == list(range(6))
    for logical, physical in enumerate(m.log_to_phys):
        assert m.phys_to_log[physical] == logical
