"""Tests for Circuit: ASAP layering, depth, counting, layer construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.circuit import Circuit, circuit_from_layers
from repro.ir.gates import Op


class TestConstruction:
    def test_empty_circuit(self):
        c = Circuit(4)
        assert len(c) == 0
        assert c.depth() == 0

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            Circuit(0)

    def test_rejects_out_of_range_qubit(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.append(Op.swap(0, 2))

    def test_rejects_duplicate_qubits(self):
        c = Circuit(3)
        with pytest.raises(ValueError):
            c.append(Op.swap(1, 1))

    def test_concatenation(self):
        a = Circuit(2, [Op.h(0)])
        b = Circuit(2, [Op.h(1)])
        c = a + b
        assert len(c) == 2

    def test_concatenation_width_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2) + Circuit(3)

    def test_copy_is_independent(self):
        a = Circuit(2, [Op.h(0)])
        b = a.copy()
        b.append(Op.h(1))
        assert len(a) == 1
        assert len(b) == 2


class TestDepth:
    def test_parallel_gates_share_a_cycle(self):
        c = Circuit(4, [Op.cphase(0, 1), Op.cphase(2, 3)])
        assert c.depth() == 1

    def test_sequential_gates_on_shared_qubit(self):
        c = Circuit(3, [Op.cphase(0, 1), Op.cphase(1, 2)])
        assert c.depth() == 2

    def test_fig2_style_permutation_depth(self):
        # Two stacked chains: serialised order needs 4 cycles, parallel 2.
        serial = Circuit(5, [Op.cphase(0, 1), Op.cphase(1, 2),
                             Op.cphase(2, 3), Op.cphase(3, 4)])
        assert serial.depth() == 4
        permuted = Circuit(5, [Op.cphase(0, 1), Op.cphase(2, 3),
                               Op.cphase(1, 2), Op.cphase(3, 4)])
        assert permuted.depth() == 2

    def test_two_qubit_only_depth_ignores_1q(self):
        c = Circuit(2, [Op.h(0), Op.h(0), Op.h(0), Op.cphase(0, 1)])
        assert c.depth() == 4
        assert c.depth(two_qubit_only=True) == 1

    def test_layers_partition_all_ops(self):
        c = Circuit(4, [Op.cphase(0, 1), Op.cphase(2, 3),
                        Op.swap(1, 2), Op.h(0)])
        layers = c.layers()
        assert sum(len(layer) for layer in layers) == 4
        assert len(layers) == c.depth()

    def test_layers_have_no_qubit_conflicts(self):
        ops = [Op.cphase(0, 1), Op.swap(1, 2), Op.cphase(0, 3),
               Op.swap(2, 3), Op.h(1)]
        c = Circuit(4, ops)
        for layer in c.layers():
            used = [q for op in layer for q in op.qubits]
            assert len(used) == len(set(used))


class TestCounts:
    def test_kind_counters(self):
        c = Circuit(4, [Op.cphase(0, 1), Op.swap(2, 3), Op.swap(0, 1)])
        assert c.cphase_count == 1
        assert c.swap_count == 2

    def test_two_qubit_ops_iterator(self):
        c = Circuit(2, [Op.h(0), Op.cphase(0, 1), Op.rz(1, 0.2)])
        assert sum(1 for _ in c.two_qubit_ops()) == 1


class TestCircuitFromLayers:
    def test_valid_layers(self):
        c = circuit_from_layers(4, [[Op.cphase(0, 1), Op.cphase(2, 3)],
                                    [Op.swap(1, 2)]])
        assert c.depth() == 2

    def test_conflicting_layer_rejected(self):
        with pytest.raises(ValueError):
            circuit_from_layers(3, [[Op.cphase(0, 1), Op.cphase(1, 2)]])


@settings(max_examples=50)
@given(st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(lambda t: t[0] != t[1]),
    max_size=30))
def test_depth_never_exceeds_op_count_property(pairs):
    c = Circuit(6, [Op.cphase(u, v) for u, v in pairs])
    assert c.depth() <= len(pairs)
    # Depth is at least the load of the busiest qubit.
    if pairs:
        busiest = max(
            sum(1 for p in pairs if q in p) for q in range(6))
        assert c.depth() >= busiest
