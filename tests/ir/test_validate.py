"""Tests for the compiled-circuit validator (the package's ground truth)."""

import pytest

from repro.exceptions import ValidationError
from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled

LINE3 = [(0, 1), (1, 2)]


def test_trivially_valid_circuit():
    c = Circuit(3, [Op.cphase(0, 1), Op.cphase(1, 2)])
    report = validate_compiled(c, LINE3, Mapping.trivial(3),
                               [(0, 1), (1, 2)])
    assert report.n_cphase == 2
    assert report.n_swap == 0
    assert report.executed_edges == {(0, 1), (1, 2)}


def test_swap_retargets_logical_pair():
    # Problem edge (0, 2) on a 3-line: swap 2 next to 0 first.
    c = Circuit(3, [Op.swap(1, 2), Op.cphase(0, 1)])
    report = validate_compiled(c, LINE3, Mapping.trivial(3), [(0, 2)])
    assert report.executed_edges == {(0, 2)}
    assert report.n_swap == 1
    assert report.final_mapping.physical(2) == 1


def test_uncoupled_gate_rejected():
    c = Circuit(3, [Op.cphase(0, 2)])
    with pytest.raises(ValidationError, match="uncoupled"):
        validate_compiled(c, LINE3, Mapping.trivial(3), [(0, 2)])


def test_gate_on_non_problem_edge_rejected():
    c = Circuit(3, [Op.cphase(0, 1)])
    with pytest.raises(ValidationError, match="not a problem edge"):
        validate_compiled(c, LINE3, Mapping.trivial(3), [(1, 2)])


def test_missing_edges_rejected():
    c = Circuit(3, [Op.cphase(0, 1)])
    with pytest.raises(ValidationError, match="never executed"):
        validate_compiled(c, LINE3, Mapping.trivial(3), [(0, 1), (1, 2)])


def test_missing_edges_allowed_when_not_required():
    c = Circuit(3, [Op.cphase(0, 1)])
    report = validate_compiled(c, LINE3, Mapping.trivial(3),
                               [(0, 1), (1, 2)], require_all_edges=False)
    assert report.n_edges == 1


def test_repeat_edge_rejected_by_default():
    c = Circuit(3, [Op.cphase(0, 1), Op.cphase(0, 1)])
    with pytest.raises(ValidationError, match="repeats"):
        validate_compiled(c, LINE3, Mapping.trivial(3), [(0, 1)])


def test_repeat_edge_allowed_when_requested():
    c = Circuit(3, [Op.cphase(0, 1), Op.cphase(0, 1)])
    report = validate_compiled(c, LINE3, Mapping.trivial(3), [(0, 1)],
                               allow_repeats=True)
    assert report.n_cphase == 2


def test_gate_on_spare_qubit_rejected():
    c = Circuit(3, [Op.cphase(1, 2)])
    with pytest.raises(ValidationError, match="spare"):
        validate_compiled(c, LINE3, Mapping.trivial(2, 3), [(0, 1)])


def test_tag_mismatch_rejected():
    c = Circuit(3, [Op.cphase(0, 1, tag=(1, 2))])
    with pytest.raises(ValidationError, match="tag"):
        validate_compiled(c, LINE3, Mapping.trivial(3), [(0, 1)])


def test_tag_match_accepted():
    c = Circuit(3, [Op.cphase(0, 1, tag=(1, 0))])
    validate_compiled(c, LINE3, Mapping.trivial(3), [(0, 1)])


def test_nontrivial_initial_mapping():
    # Logical 0 starts on physical 2, logical 1 on physical 0.
    mapping = Mapping([2, 0], 3)
    # CPHASE on physical (0, 1) would implement logical pair... nothing on 1.
    c = Circuit(3, [Op.swap(1, 2), Op.cphase(0, 1)])
    report = validate_compiled(c, LINE3, mapping, [(0, 1)])
    assert report.executed_edges == {(0, 1)}


def test_missing_edge_message_truncates_to_first_five():
    # 10 missing edges on a 5-clique: the message samples the first 5.
    edges = [(u, v) for u in range(5) for v in range(u + 1, 5)]
    c = Circuit(5, [])
    line5 = [(i, i + 1) for i in range(4)]
    with pytest.raises(ValidationError) as excinfo:
        validate_compiled(c, line5, Mapping.trivial(5), edges)
    message = str(excinfo.value)
    assert "10 problem edges never executed" in message
    assert "first few" in message
    sample = message[message.index("["):]
    assert sample.count("(") == 5  # exactly five edges shown
    assert str(sorted(edges)[5]) not in message


def test_report_records_final_mapping_and_tallies():
    c = Circuit(3, [Op.swap(1, 2), Op.cphase(0, 1), Op.cphase(1, 2)])
    report = validate_compiled(c, LINE3, Mapping.trivial(3),
                               [(0, 2), (1, 2)])
    assert report.n_cphase == 2
    assert report.n_swap == 1
    assert report.final_mapping.log_to_phys == [0, 2, 1]


def test_spare_qubit_message_names_occupants():
    c = Circuit(3, [Op.cphase(1, 2)])
    with pytest.raises(ValidationError, match="logical occupants: 1, None"):
        validate_compiled(c, LINE3, Mapping.trivial(2, 3), [(0, 1)])


def test_swap_on_uncoupled_pair_rejected():
    c = Circuit(3, [Op.swap(0, 2)])
    with pytest.raises(ValidationError, match="uncoupled"):
        validate_compiled(c, LINE3, Mapping.trivial(3), [],
                          require_all_edges=False)
