"""Unit tests for the Op value object and edge canonicalisation."""

import pytest

from repro.ir.gates import (CPHASE, SWAP, Op, canonical_edge, canonical_edges)


class TestOpConstruction:
    def test_cphase_holds_angle_and_tag(self):
        op = Op.cphase(3, 5, 0.7, tag=(1, 2))
        assert op.kind == CPHASE
        assert op.qubits == (3, 5)
        assert op.param == 0.7
        assert op.tag == (1, 2)

    def test_swap_has_no_param(self):
        op = Op.swap(0, 1)
        assert op.kind == SWAP
        assert op.param is None

    def test_single_qubit_constructors(self):
        assert Op.h(2).qubits == (2,)
        assert Op.rx(1, 0.5).param == 0.5
        assert Op.rz(1, -0.5).param == -0.5
        assert Op.phase(0, 1.0).param == 1.0

    def test_is_two_qubit(self):
        assert Op.cphase(0, 1).is_two_qubit
        assert Op.swap(0, 1).is_two_qubit
        assert Op.cx(0, 1).is_two_qubit
        assert not Op.h(0).is_two_qubit


class TestOpEquality:
    def test_symmetric_gates_ignore_qubit_order(self):
        assert Op.cphase(1, 2, 0.3) == Op.cphase(2, 1, 0.3)
        assert Op.swap(4, 0) == Op.swap(0, 4)
        assert hash(Op.swap(4, 0)) == hash(Op.swap(0, 4))

    def test_cx_is_directional(self):
        assert Op.cx(0, 1) != Op.cx(1, 0)

    def test_param_distinguishes(self):
        assert Op.cphase(0, 1, 0.1) != Op.cphase(0, 1, 0.2)

    def test_repr_mentions_kind(self):
        assert "cphase" in repr(Op.cphase(0, 1, 0.25))


class TestCanonicalEdges:
    def test_canonical_edge_sorts(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_canonical_edges_dedups(self):
        edges = canonical_edges([(1, 0), (0, 1), (2, 3)])
        assert edges == frozenset({(0, 1), (2, 3)})

    @pytest.mark.parametrize("u,v", [(0, 0), (7, 7)])
    def test_self_edge_is_representable_but_unusual(self, u, v):
        # canonical_edge does not reject self loops; circuits do.
        assert canonical_edge(u, v) == (u, v)
