"""Property-based decomposition tests: unitary exactness on random circuits."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.circuit import Circuit
from repro.ir.decompose import count_cx, decompose_to_cx
from repro.ir.gates import CX, Op

from tests.helpers import assert_unitary_equal, circuit_unitary

N_QUBITS = 3


def op_strategy():
    qubit = st.integers(0, N_QUBITS - 1)
    pair = st.tuples(qubit, qubit).filter(lambda t: t[0] != t[1])
    angle = st.floats(-3.0, 3.0, allow_nan=False)
    return st.one_of(
        st.builds(lambda q: Op.h(q), qubit),
        st.builds(lambda q, a: Op.rx(q, a), qubit, angle),
        st.builds(lambda q, a: Op.rz(q, a), qubit, angle),
        st.builds(lambda p, a: Op.cphase(p[0], p[1], a), pair, angle),
        st.builds(lambda p: Op.swap(p[0], p[1]), pair),
        st.builds(lambda p: Op.cx(p[0], p[1]), pair),
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy(), max_size=10))
def test_decomposition_is_unitary_exact(ops):
    circuit = Circuit(N_QUBITS, ops)
    decomposed = decompose_to_cx(circuit)
    assert_unitary_equal(circuit_unitary(circuit),
                         circuit_unitary(decomposed))


@settings(max_examples=60, deadline=None)
@given(st.lists(op_strategy(), max_size=12))
def test_count_matches_materialisation(ops):
    circuit = Circuit(N_QUBITS, ops)
    for unify in (True, False):
        assert (count_cx(circuit, unify=unify)
                == decompose_to_cx(circuit, unify=unify).count_kind(CX))


@settings(max_examples=40, deadline=None)
@given(st.lists(op_strategy(), max_size=12))
def test_unified_never_more_cx(ops):
    circuit = Circuit(N_QUBITS, ops)
    assert count_cx(circuit, unify=True) <= count_cx(circuit, unify=False)


@settings(max_examples=40, deadline=None)
@given(st.lists(op_strategy(), max_size=10))
def test_unify_false_is_unitary_exact_too(ops):
    circuit = Circuit(N_QUBITS, ops)
    decomposed = decompose_to_cx(circuit, unify=False)
    assert_unitary_equal(circuit_unitary(circuit),
                         circuit_unitary(decomposed))
