"""Unit tests for the layered-program IR (repro.ir.program)."""

import math

import pytest

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.ir.program import (COST_ROLES, LAYER_ROLES, Program, ProgramLayer,
                              ROLE_COST, ROLE_MIXER, ROLE_REVERSED_COST,
                              layer_permutation, reversed_layer)
from repro.ir.serialize import (program_from_dict, program_to_dict)

N = 4


def _cost_circuit():
    """CPHASE(0,1), SWAP(1,2), CPHASE(0,1) on 4 physical qubits."""
    return Circuit.from_ops_unchecked(N, [
        Op.cphase(0, 1, 0.4),
        Op.swap(1, 2),
        Op.cphase(0, 1, 0.4),
    ])


def _mapping():
    return Mapping(list(range(N)), N)


def _layer(role, circuit, mapping, param=0.4):
    out = layer_permutation(circuit, mapping)
    return ProgramLayer(role=role, circuit=circuit, param=param,
                        input_log_to_phys=tuple(mapping.log_to_phys),
                        output_log_to_phys=tuple(out.log_to_phys))


class TestProgramLayer:
    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown layer role"):
            _layer("banana", _cost_circuit(), _mapping())

    def test_mismatched_mapping_widths_rejected(self):
        with pytest.raises(ValueError, match="different logical"):
            ProgramLayer(role=ROLE_COST, circuit=_cost_circuit(), param=0.4,
                         input_log_to_phys=(0, 1, 2, 3),
                         output_log_to_phys=(0, 1, 2))

    def test_is_cost(self):
        circuit = _cost_circuit()
        assert _layer(ROLE_COST, circuit, _mapping()).is_cost
        assert _layer(ROLE_REVERSED_COST, circuit, _mapping()).is_cost
        mixer = Circuit.from_ops_unchecked(N, [Op.rx(q, 0.6)
                                               for q in range(N)])
        assert not _layer(ROLE_MIXER, mixer, _mapping()).is_cost

    def test_role_sets(self):
        assert COST_ROLES < LAYER_ROLES
        assert ROLE_MIXER in LAYER_ROLES - COST_ROLES


class TestProgram:
    def _program(self, n_layers=2):
        circuit = _cost_circuit()
        mapping = _mapping()
        layers = []
        current = mapping
        for k in range(n_layers):
            layer_circuit = circuit if k % 2 == 0 else reversed_layer(circuit)
            role = ROLE_COST if k % 2 == 0 else ROLE_REVERSED_COST
            layer = _layer(role, layer_circuit, current)
            layers.append(layer)
            current = Mapping(list(layer.output_log_to_phys), N)
        return Program(N, layers, mapping, name="test")

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError, match="at least one layer"):
            Program(N, [], _mapping())

    def test_mapping_discontinuity_rejected(self):
        circuit = _cost_circuit()
        first = _layer(ROLE_COST, circuit, _mapping())
        # Second layer claims to start from the *initial* layout instead
        # of the first layer's output layout.
        second = _layer(ROLE_REVERSED_COST, reversed_layer(circuit),
                        _mapping())
        with pytest.raises(ValueError, match="disagrees"):
            Program(N, [first, second], _mapping())

    def test_width_mismatch_rejected(self):
        narrow = Circuit.from_ops_unchecked(2, [Op.cphase(0, 1, 0.4)])
        layer = ProgramLayer(role=ROLE_COST, circuit=narrow, param=0.4,
                             input_log_to_phys=(0, 1),
                             output_log_to_phys=(0, 1))
        with pytest.raises(ValueError, match="wide"):
            Program(N, [layer], _mapping())

    def test_p_counts_cost_roles_only(self):
        program = self._program(n_layers=2)
        assert program.p == 2
        assert len(program.cost_layers()) == 2
        assert program.mixer_layers() == []
        assert program.mixer == "none"

    def test_cancellation_after_even_layers(self):
        program = self._program(n_layers=2)
        assert program.net_permutation_is_identity
        assert program.final_log_to_phys == \
            tuple(program.initial_mapping.log_to_phys)

    def test_odd_layers_leave_the_permutation(self):
        program = self._program(n_layers=1)
        assert not program.net_permutation_is_identity
        assert program.final_mapping().log_to_phys == [0, 2, 1, 3]

    def test_flatten_concatenates_in_layer_order(self):
        program = self._program(n_layers=2)
        flat = program.flatten()
        expected = (list(_cost_circuit().ops)
                    + list(reversed_layer(_cost_circuit()).ops))
        assert list(flat.ops) == expected
        assert program.n_ops() == len(flat)
        assert program.swap_count() == flat.swap_count == 2

    def test_gammas_betas(self):
        program = self._program(n_layers=2)
        assert program.gammas() == [0.4, 0.4]
        assert program.betas() == []

    def test_telemetry_shape(self):
        telemetry = self._program(n_layers=2).telemetry()
        assert telemetry == {
            "layers": 2,
            "p": 2,
            "mixer": "none",
            "roles": [ROLE_COST, ROLE_REVERSED_COST],
            "ops": 6,
            "swaps": 2,
            "net_permutation_identity": True,
        }

    def test_len_and_iter(self):
        program = self._program(n_layers=2)
        assert len(program) == 2
        assert [layer.role for layer in program] == \
            [ROLE_COST, ROLE_REVERSED_COST]

    def test_serialize_round_trip(self):
        program = self._program(n_layers=2)
        document = program_to_dict(program)
        restored = program_from_dict(document)
        assert program_to_dict(restored) == document
        assert restored.p == program.p
        assert restored.final_log_to_phys == program.final_log_to_phys
        assert [layer.role for layer in restored] == \
            [layer.role for layer in program]

    def test_tampered_document_needs_the_unchecked_loader(self):
        # A broken provenance chain loads only through check=False —
        # the lint path, where RL030 diagnoses it instead.
        document = program_to_dict(self._program(n_layers=2))
        document["layers"][1]["input_log_to_phys"] = [1, 0, 2, 3]
        with pytest.raises(ValueError, match="disagrees"):
            program_from_dict(document)
        tolerant = program_from_dict(document, check=False)
        assert tolerant.layers[1].input_log_to_phys == (1, 0, 2, 3)
        assert program_to_dict(tolerant) == document


class TestHelpers:
    def test_layer_permutation_tracks_swaps(self):
        mapping = layer_permutation(_cost_circuit(), _mapping())
        assert mapping.log_to_phys == [0, 2, 1, 3]

    def test_layer_permutation_does_not_mutate_input(self):
        mapping = _mapping()
        layer_permutation(_cost_circuit(), mapping)
        assert mapping.log_to_phys == [0, 1, 2, 3]

    def test_reversed_layer_inverts_the_permutation(self):
        circuit = Circuit.from_ops_unchecked(N, [
            Op.swap(0, 1), Op.cphase(1, 2, 0.4), Op.swap(2, 3),
        ])
        forward = layer_permutation(circuit, _mapping())
        back = layer_permutation(reversed_layer(circuit),
                                 Mapping(list(forward.log_to_phys), N))
        assert back.log_to_phys == [0, 1, 2, 3]

    def test_reversed_layer_preserves_gate_multiset(self):
        circuit = _cost_circuit()
        rev = reversed_layer(circuit)
        assert sorted(map(repr, circuit.ops)) == sorted(map(repr, rev.ops))
        assert list(rev.ops) == list(circuit.ops)[::-1]

    def test_reversed_layer_angles_survive(self):
        rev = reversed_layer(_cost_circuit())
        angles = [op.param for op in rev.ops if op.param is not None]
        assert all(math.isclose(a, 0.4) for a in angles)
