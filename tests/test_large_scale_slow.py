"""Large-scale regression checks (opt-in: REPRO_SLOW=1).

These pin the paper-scale behaviour that the default suite cannot afford:
the 1024-qubit heavy-hex ATA schedule whose depth (2 792) lands within 4%
of the paper's own Table-2 "Ours" value (2 910).
"""

import os

import pytest

slow = pytest.mark.skipif(os.environ.get("REPRO_SLOW", "") in ("", "0"),
                          reason="set REPRO_SLOW=1 to run paper-scale checks")


@slow
def test_heavyhex_1024_ata_depth_matches_paper_band():
    from repro.arch import heavyhex_for
    from repro.compiler import compile_qaoa
    from repro.problems import random_problem_graph

    problem = random_problem_graph(1024, 0.3, seed=0)
    coupling = heavyhex_for(1024)
    result = compile_qaoa(coupling, problem, method="ata")
    result.validate(coupling, problem)
    # Paper Table 2, heavy-hex 1024-0.3, "Ours": depth 2910.
    assert 2300 <= result.depth() <= 3500


@slow
def test_grid_1024_merged_schedule_linear():
    from repro.arch import square_grid_for
    from repro.ata import compile_with_pattern, get_pattern
    from repro.ir.mapping import Mapping
    from repro.problems import random_problem_graph

    coupling = square_grid_for(1024)
    problem = random_problem_graph(1024, 0.3, seed=0)
    mapping = Mapping.trivial(1024, coupling.n_qubits)
    circuit, _ = compile_with_pattern(coupling, get_pattern(coupling),
                                      problem.edges, mapping)
    # ~1.5n cycles for the merged schedule.
    assert circuit.depth() <= 2.0 * coupling.n_qubits
