"""End-to-end QAOA pipeline tests (Figs 24/25 machinery)."""

import numpy as np
import pytest

from repro.arch import NoiseModel, line, mumbai
from repro.compiler import compile_qaoa
from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.problems import ProblemGraph, QaoaProblem, random_problem_graph
from repro.sim import (QaoaRunner, logical_equivalent, probabilities,
                       qaoa_layer_circuit, run_circuit)


@pytest.fixture
def small_setup():
    problem = QaoaProblem(random_problem_graph(6, 0.5, seed=1))
    coupling = line(6)
    compiled = compile_qaoa(coupling, problem.graph, method="hybrid")
    compiled.validate(coupling, problem.graph)
    return problem, coupling, compiled


class TestLogicalEquivalent:
    def test_edge_multiset_matches_problem(self, small_setup):
        problem, _, compiled = small_setup
        logical = logical_equivalent(compiled.circuit,
                                     compiled.initial_mapping,
                                     problem.n_qubits)
        pairs = sorted(tuple(sorted(op.qubits)) for op in logical)
        assert pairs == sorted(problem.graph.edges)

    def test_matches_direct_physical_simulation(self):
        # Small enough to simulate the physical circuit with its SWAPs and
        # compare against the reduced logical circuit.
        problem = QaoaProblem(ProblemGraph(4, [(0, 2), (1, 3), (0, 3)]))
        coupling = line(4)
        compiled = compile_qaoa(coupling, problem.graph, method="ata",
                                gamma=0.8)
        mapping = compiled.initial_mapping

        # Physical simulation: H on initial homes, block, RX on final homes.
        final = compiled.validate(coupling, problem.graph).final_mapping
        physical = Circuit(coupling.n_qubits)
        for logical_q in range(4):
            physical.append(Op.h(mapping.physical(logical_q)))
        physical.extend(compiled.circuit.ops)
        for logical_q in range(4):
            physical.append(Op.rx(final.physical(logical_q), 0.6))
        phys_probs = probabilities(run_circuit(physical))

        # Logical simulation via the runner's reduction.
        block = logical_equivalent(compiled.circuit, mapping, 4)
        logical_circuit = qaoa_layer_circuit(problem, block, 0.8, 0.3)
        log_probs = probabilities(run_circuit(logical_circuit))

        # Marginalise the physical distribution onto logical bit order.
        n_phys = coupling.n_qubits
        marginal = np.zeros(2 ** 4)
        for index, p in enumerate(phys_probs):
            bits = [(index >> (n_phys - 1 - q)) & 1 for q in range(n_phys)]
            key = 0
            for logical_q in range(4):
                key = (key << 1) | bits[final.physical(logical_q)]
            marginal[key] += p
        np.testing.assert_allclose(marginal, log_probs, atol=1e-9)


class TestRunnerPhysics:
    def test_zero_angles_give_uniform(self, small_setup):
        problem, _, compiled = small_setup
        runner = QaoaRunner(problem, compiled)
        probs = runner.ideal_probabilities(0.0, 0.0)
        np.testing.assert_allclose(probs, 1 / 2 ** problem.n_qubits,
                                   atol=1e-12)

    def test_expected_cut_bounded_by_maxcut(self, small_setup):
        problem, _, compiled = small_setup
        runner = QaoaRunner(problem, compiled)
        maxcut = problem.max_cut_brute_force()
        for gamma, beta in [(0.3, 0.2), (0.7, 0.9), (1.2, 0.4)]:
            energy = runner.measure_energy(gamma, beta)
            assert -energy <= maxcut + 1e-9

    def test_good_angles_beat_random_guessing(self, small_setup):
        problem, _, compiled = small_setup
        runner = QaoaRunner(problem, compiled, shots=20000, seed=3)
        uniform_cut = problem.graph.n_edges / 2
        best = min(runner.measure_energy(g, b)
                   for g in np.linspace(0.2, 1.2, 6)
                   for b in np.linspace(0.2, 1.2, 6))
        assert -best > uniform_cut

    def test_esp_one_without_noise_model(self, small_setup):
        problem, _, compiled = small_setup
        runner = QaoaRunner(problem, compiled)
        assert runner.esp == 1.0


class TestNoiseOrdering:
    """Fewer gates -> higher ESP -> lower TVD and better energy: the causal
    chain behind the paper's real-machine results."""

    def make_runner(self, method, seed=11):
        problem = QaoaProblem(random_problem_graph(8, 0.3, seed=2))
        coupling = mumbai()
        noise = NoiseModel(coupling, seed=seed)
        compiled = compile_qaoa(coupling, problem.graph, method=method,
                                noise=noise)
        compiled.validate(coupling, problem.graph)
        return QaoaRunner(problem, compiled, noise=noise, seed=5)

    def test_esp_in_unit_interval(self):
        runner = self.make_runner("hybrid")
        assert 0.0 < runner.esp < 1.0

    def test_better_circuit_gives_lower_tvd(self):
        good = self.make_runner("hybrid")
        bad_problem = QaoaProblem(random_problem_graph(8, 0.3, seed=2))
        coupling = mumbai()
        noise = NoiseModel(coupling, seed=11)
        from repro.baselines import compile_paulihedral
        bad_compiled = compile_paulihedral(coupling, bad_problem.graph)
        bad = QaoaRunner(bad_problem, bad_compiled, noise=noise, seed=5)
        assert good.esp > bad.esp
        assert (good.tvd_vs_ideal(0.5, 0.4)
                < bad.tvd_vs_ideal(0.5, 0.4))


class TestOptimizationLoop:
    def test_cobyla_improves_energy(self, small_setup):
        problem, _, compiled = small_setup
        runner = QaoaRunner(problem, compiled, shots=4000, seed=9)
        result = runner.optimize(max_rounds=25)
        assert len(result.rounds) >= 5
        trace = result.best_so_far()
        assert trace[-1] <= trace[0]
        assert result.best_energy == pytest.approx(min(result.energies))

    def test_best_so_far_monotone(self, small_setup):
        problem, _, compiled = small_setup
        runner = QaoaRunner(problem, compiled, shots=2000, seed=4)
        result = runner.optimize(max_rounds=12)
        trace = result.best_so_far()
        assert all(a >= b for a, b in zip(trace, trace[1:]))
