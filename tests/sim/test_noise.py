"""Tests for the depolarizing substitution channel and TVD."""

import numpy as np
import pytest

from repro.sim import (depolarized_probabilities, empirical_distribution,
                       sample_counts, tvd)


class TestDepolarizedMixture:
    def test_esp_one_is_identity(self):
        ideal = np.array([0.5, 0.5, 0, 0])
        np.testing.assert_allclose(
            depolarized_probabilities(ideal, 1.0), ideal)

    def test_esp_zero_is_uniform(self):
        ideal = np.array([1.0, 0, 0, 0])
        np.testing.assert_allclose(
            depolarized_probabilities(ideal, 0.0), 0.25)

    def test_mixture_normalised(self):
        ideal = np.array([0.3, 0.7, 0, 0])
        mixed = depolarized_probabilities(ideal, 0.6)
        assert mixed.sum() == pytest.approx(1.0)
        assert (mixed > 0).all()

    def test_invalid_esp_rejected(self):
        with pytest.raises(ValueError):
            depolarized_probabilities(np.array([1.0]), 1.5)


class TestSampling:
    def test_counts_sum_to_shots(self):
        rng = np.random.default_rng(0)
        counts = sample_counts(np.array([0.25] * 4), 1000, rng)
        assert counts.sum() == 1000

    def test_empirical_distribution(self):
        dist = empirical_distribution(np.array([1, 3]))
        np.testing.assert_allclose(dist, [0.25, 0.75])

    def test_empirical_distribution_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_distribution(np.array([0, 0]))

    def test_sampling_reproducible(self):
        a = sample_counts(np.array([0.5, 0.5]), 100,
                          np.random.default_rng(7))
        b = sample_counts(np.array([0.5, 0.5]), 100,
                          np.random.default_rng(7))
        assert (a == b).all()


class TestTvd:
    def test_identical_distributions(self):
        p = np.array([0.5, 0.5])
        assert tvd(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert tvd(np.array([1.0, 0]), np.array([0, 1.0])) == pytest.approx(1.0)

    def test_monotone_in_noise(self):
        ideal = np.zeros(16)
        ideal[3] = 1.0
        weak = depolarized_probabilities(ideal, 0.9)
        strong = depolarized_probabilities(ideal, 0.4)
        assert tvd(weak, ideal) < tvd(strong, ideal)
