"""Tests for p > 1 QAOA support."""

import numpy as np
import pytest

from repro.arch import NoiseModel, line
from repro.compiler import compile_qaoa
from repro.problems import QaoaProblem, random_problem_graph
from repro.sim import QaoaRunner, qaoa_multilayer_circuit


@pytest.fixture(scope="module")
def setup():
    problem = QaoaProblem(random_problem_graph(6, 0.5, seed=1))
    coupling = line(6)
    noise = NoiseModel(coupling, seed=4)
    compiled = compile_qaoa(coupling, problem.graph, method="hybrid",
                            noise=noise)
    return problem, noise, compiled


class TestMultilayerCircuit:
    def test_layer_count(self, setup):
        problem, _, compiled = setup
        from repro.sim import logical_equivalent
        block = logical_equivalent(compiled.circuit,
                                   compiled.initial_mapping,
                                   problem.n_qubits)
        c1 = qaoa_multilayer_circuit(problem, block, [0.3], [0.2])
        c2 = qaoa_multilayer_circuit(problem, block, [0.3, 0.5], [0.2, 0.1])
        n_gates = problem.graph.n_edges
        from repro.ir.gates import CPHASE
        assert sum(1 for op in c2 if op.kind == CPHASE) == 2 * n_gates
        assert len(c2) > len(c1)

    def test_angle_length_mismatch(self, setup):
        problem, _, compiled = setup
        from repro.sim import logical_equivalent
        block = logical_equivalent(compiled.circuit,
                                   compiled.initial_mapping,
                                   problem.n_qubits)
        with pytest.raises(ValueError):
            qaoa_multilayer_circuit(problem, block, [0.3], [0.2, 0.1])


class TestP2Runner:
    def test_p_validation(self, setup):
        problem, noise, compiled = setup
        with pytest.raises(ValueError):
            QaoaRunner(problem, compiled, p=0)

    def test_esp_compounds_with_depth(self, setup):
        problem, noise, compiled = setup
        r1 = QaoaRunner(problem, compiled, noise=noise, p=1)
        r2 = QaoaRunner(problem, compiled, noise=noise, p=2)
        assert r2.esp == pytest.approx(r1.esp ** 2)

    def test_p2_ideal_beats_p1_ideal_at_optimum(self, setup):
        """Deeper noise-free QAOA can only improve the best energy."""
        problem, _, compiled = setup
        r1 = QaoaRunner(problem, compiled, shots=40000, seed=1, p=1)
        r2 = QaoaRunner(problem, compiled, shots=40000, seed=1, p=2)
        grid = np.linspace(0.1, 1.2, 5)
        best1 = min(r1.measure_energy(g, b) for g in grid for b in grid)
        best2 = min(
            r2.measure_energy([g, g2], [b, b2])
            for g in grid[::2] for b in grid[::2]
            for g2 in grid[::2] for b2 in grid[::2])
        assert best2 <= best1 + 0.1

    def test_p2_optimize_runs(self, setup):
        problem, noise, compiled = setup
        runner = QaoaRunner(problem, compiled, noise=noise, shots=2000,
                            seed=2, p=2)
        result = runner.optimize(max_rounds=10)
        assert result.rounds
        assert len(result.rounds[0].gamma) == 2

    def test_wrong_x0_length(self, setup):
        problem, _, compiled = setup
        runner = QaoaRunner(problem, compiled, p=2)
        with pytest.raises(ValueError):
            runner.optimize(max_rounds=3, x0=[0.1, 0.2])

    def test_wrong_angle_schedule_length(self, setup):
        problem, _, compiled = setup
        runner = QaoaRunner(problem, compiled, p=2)
        with pytest.raises(ValueError):
            runner.measure_energy([0.1], [0.2])
