"""Property-based statevector tests: unitarity and commutation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.sim import probabilities, run_circuit

N = 4


def op_strategy():
    qubit = st.integers(0, N - 1)
    pair = st.tuples(qubit, qubit).filter(lambda t: t[0] != t[1])
    angle = st.floats(-3.0, 3.0, allow_nan=False)
    return st.one_of(
        st.builds(lambda q: Op.h(q), qubit),
        st.builds(lambda q, a: Op.rx(q, a), qubit, angle),
        st.builds(lambda q, a: Op.rz(q, a), qubit, angle),
        st.builds(lambda p, a: Op.cphase(p[0], p[1], a), pair, angle),
        st.builds(lambda p: Op.swap(p[0], p[1]), pair),
        st.builds(lambda p: Op.cx(p[0], p[1]), pair),
    )


@settings(max_examples=50, deadline=None)
@given(st.lists(op_strategy(), max_size=15))
def test_norm_preserved(ops):
    state = run_circuit(Circuit(N, ops))
    assert abs(np.linalg.norm(state) - 1.0) < 1e-9


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, N - 1), st.integers(0, N - 1),
                          st.floats(-3, 3, allow_nan=False))
                .filter(lambda t: t[0] != t[1]), min_size=2, max_size=8),
       st.randoms())
def test_cphase_gates_commute(pairs, rng):
    """The paper's foundational fact: all problem gates commute, so any
    permutation of the CPHASE block yields the same state."""
    ops = [Op.cphase(u, v, a) for u, v, a in pairs]
    prefix = [Op.h(q) for q in range(N)]
    shuffled = list(ops)
    rng.shuffle(shuffled)
    state_a = run_circuit(Circuit(N, prefix + ops))
    state_b = run_circuit(Circuit(N, prefix + shuffled))
    np.testing.assert_allclose(state_a, state_b, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.lists(op_strategy(), max_size=10))
def test_probabilities_sum_to_one(ops):
    probs = probabilities(run_circuit(Circuit(N, ops)))
    assert abs(probs.sum() - 1.0) < 1e-9
