"""Tests for the Pauli-trajectory noise model."""

import numpy as np
import pytest

from repro.arch import NoiseModel, line, uniform_noise_model
from repro.compiler import compile_qaoa
from repro.problems import QaoaProblem, random_problem_graph
from repro.sim import tvd
from repro.sim.trajectories import trajectory_probabilities


@pytest.fixture(scope="module")
def setup():
    problem = QaoaProblem(random_problem_graph(6, 0.4, seed=3))
    coupling = line(6)
    noise = NoiseModel(coupling, seed=1)
    compiled = compile_qaoa(coupling, problem.graph, method="hybrid",
                            noise=noise)
    compiled.validate(coupling, problem.graph)
    return problem, coupling, noise, compiled


class TestTrajectorySimulation:
    def test_distribution_normalised(self, setup):
        problem, _, noise, compiled = setup
        probs = trajectory_probabilities(compiled, problem, 0.5, 0.4,
                                         noise, n_trajectories=20, seed=0)
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert (probs >= 0).all()

    def test_zero_error_matches_ideal(self, setup):
        problem, coupling, _, compiled = setup
        clean = uniform_noise_model(coupling, cx_error=0.0)
        # cx_error floor is clipped in NoiseModel; build exact zeros here.
        for edge in clean.cx_error:
            clean.cx_error[edge] = 0.0
        probs = trajectory_probabilities(compiled, problem, 0.5, 0.4,
                                         clean, n_trajectories=3, seed=0)
        from repro.sim import QaoaRunner
        runner = QaoaRunner(problem, compiled)
        ideal = runner.ideal_probabilities(0.5, 0.4)
        np.testing.assert_allclose(probs, ideal, atol=1e-9)

    def test_noise_pushes_towards_uniform(self, setup):
        problem, coupling, _, compiled = setup
        from repro.sim import QaoaRunner
        ideal = QaoaRunner(problem, compiled).ideal_probabilities(0.5, 0.4)
        light = uniform_noise_model(coupling, cx_error=0.002)
        heavy = uniform_noise_model(coupling, cx_error=0.05)
        p_light = trajectory_probabilities(compiled, problem, 0.5, 0.4,
                                           light, n_trajectories=120, seed=1)
        p_heavy = trajectory_probabilities(compiled, problem, 0.5, 0.4,
                                           heavy, n_trajectories=120, seed=1)
        assert tvd(p_light, ideal) < tvd(p_heavy, ideal)

    def test_agrees_with_esp_model_on_compiler_ordering(self):
        """Both noise models must rank compilers the same way."""
        problem = QaoaProblem(random_problem_graph(8, 0.3, seed=5))
        from repro.arch import mumbai
        from repro.baselines import compile_paulihedral
        from repro.sim import QaoaRunner
        coupling = mumbai()
        noise = NoiseModel(coupling, seed=2)
        good = compile_qaoa(coupling, problem.graph, method="hybrid",
                            noise=noise)
        bad = compile_paulihedral(coupling, problem.graph)
        ideal = QaoaRunner(problem, good).ideal_probabilities(0.5, 0.4)

        traj_good = trajectory_probabilities(good, problem, 0.5, 0.4,
                                             noise, n_trajectories=150,
                                             seed=3)
        traj_bad = trajectory_probabilities(bad, problem, 0.5, 0.4,
                                            noise, n_trajectories=150,
                                            seed=3)
        assert tvd(traj_good, ideal) < tvd(traj_bad, ideal)
        # ESP ordering agrees.
        assert noise.esp(good.circuit) > noise.esp(bad.circuit)

    def test_size_guard(self, setup):
        problem = QaoaProblem(random_problem_graph(15, 0.2, seed=1))
        _, _, noise, compiled = setup
        with pytest.raises(ValueError):
            trajectory_probabilities(compiled, problem, 0.1, 0.1, noise)
