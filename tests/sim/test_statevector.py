"""Statevector engine tests, cross-checked against the dense test helper."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.sim import probabilities, run_circuit, zero_state

from tests.helpers import circuit_unitary


class TestBasics:
    def test_zero_state_normalised(self):
        state = zero_state(3)
        assert probabilities(state)[0] == pytest.approx(1.0)

    def test_h_creates_uniform(self):
        c = Circuit(2, [Op.h(0), Op.h(1)])
        probs = probabilities(run_circuit(c))
        np.testing.assert_allclose(probs, 0.25)

    def test_bell_state(self):
        c = Circuit(2, [Op.h(0), Op.cx(0, 1)])
        probs = probabilities(run_circuit(c))
        np.testing.assert_allclose(probs, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_cx_direction_and_bit_order(self):
        # Flip qubit 0, then CX(0,1): expect |11> = index 3.
        c = Circuit(2, [Op.rx(0, np.pi), Op.cx(0, 1)])
        probs = probabilities(run_circuit(c))
        assert probs[3] == pytest.approx(1.0)

    def test_swap_moves_excitation(self):
        c = Circuit(3, [Op.rx(0, np.pi), Op.swap(0, 2)])
        probs = probabilities(run_circuit(c))
        # Excitation now on qubit 2 -> index 0b001.
        assert probs[1] == pytest.approx(1.0)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_circuit(Circuit(2), state=zero_state(3))

    def test_unsupported_gate(self):
        state = zero_state(1)
        from repro.sim import apply_op
        with pytest.raises(ValueError):
            apply_op(state, Op("mystery", (0,)))


class TestAgainstDenseHelper:
    @pytest.mark.parametrize("ops", [
        [Op.h(0), Op.cphase(0, 1, 0.7), Op.rx(1, 0.3)],
        [Op.h(0), Op.h(1), Op.h(2), Op.cphase(0, 2, 1.1),
         Op.swap(1, 2), Op.rz(0, 0.4)],
        [Op.cx(1, 0), Op.phase(0, 0.9), Op.cx(0, 1)],
    ])
    def test_matches_matrix_simulation(self, ops):
        n = 3
        c = Circuit(n, ops)
        state = run_circuit(c).reshape(-1)
        expected = circuit_unitary(c) @ np.eye(2 ** n)[:, 0]
        np.testing.assert_allclose(state, expected, atol=1e-10)

    def test_norm_preserved(self):
        c = Circuit(3, [Op.h(0), Op.cphase(0, 1, 0.5), Op.rx(2, 1.0),
                        Op.swap(0, 2), Op.cx(1, 2)])
        state = run_circuit(c)
        assert np.linalg.norm(state) == pytest.approx(1.0)
