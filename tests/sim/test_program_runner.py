"""Program-mode QaoaRunner: p-layer simulation end to end (ISSUE 7).

Covers the compile -> simulate -> TVD loop for weighted MaxCut and the
Hamiltonian-simulation benchmarks at p in {1, 2, 3}, the agreement
between the program-mode logical circuit and the historic
repeat-the-block construction, and the per-physical-layer ESP
accounting.
"""

import numpy as np
import pytest

from repro.arch import NoiseModel, architecture_for
from repro.compiler import compile_qaoa
from repro.problems import (nnn_ising_1d, random_problem_graph,
                            weighted_random_problem_graph)
from repro.problems.qaoa import QaoaProblem
from repro.sim import QaoaRunner, program_logical_circuit
from repro.sim.statevector import probabilities, run_circuit

GAMMA, BETA = 0.4, 0.3


def _setup(graph, arch="grid", n_phys=None, layers=1, mixer="rx",
           with_noise=True, seed=2):
    coupling = architecture_for(arch, n_phys or graph.n_vertices)
    result = compile_qaoa(coupling, graph, method="hybrid", gamma=GAMMA,
                          layers=layers, mixer=mixer)
    noise = NoiseModel(coupling, seed=seed) if with_noise else None
    return QaoaProblem(graph), result, noise


class TestProgramModeDispatch:
    def test_p1_result_stays_in_legacy_mode(self):
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, noise = _setup(graph, layers=1)
        runner = QaoaRunner(problem, result, noise=noise)
        assert runner.program is None and runner.p == 1
        assert runner.cost_block is not None

    def test_p2_result_enters_program_mode(self):
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, noise = _setup(graph, layers=2)
        runner = QaoaRunner(problem, result, noise=noise)
        assert runner.program is result.program
        assert runner.p == 2 and runner.cost_block is None

    def test_explicit_p_overrides_program(self):
        """Asking for a different depth falls back to block repetition."""
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, noise = _setup(graph, layers=2)
        runner = QaoaRunner(problem, result, noise=noise, p=3)
        assert runner.program is None and runner.p == 3


class TestProgramLogicalCircuit:
    def test_matches_block_repetition_distribution(self):
        """The program and the naive repeat-the-block logical circuits
        produce the same ideal distribution (the compiled program is a
        pure scheduling optimization)."""
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, _ = _setup(graph, layers=2, with_noise=False)
        _, single, _ = _setup(graph, layers=1, with_noise=False)
        program_runner = QaoaRunner(problem, result, shots=100)
        legacy_runner = QaoaRunner(problem, single, shots=100, p=2)
        assert program_runner.program is not None
        assert legacy_runner.program is None
        angles = ([0.37, 0.52], [0.21, 0.44])
        np.testing.assert_allclose(
            program_runner.ideal_probabilities(*angles),
            legacy_runner.ideal_probabilities(*angles), atol=1e-12)

    @pytest.mark.parametrize("mixer", ["rx", "none"])
    def test_mixer_styles_simulate_identically(self, mixer):
        """Physical RX walls and virtual mixers are the same logical op."""
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, _ = _setup(graph, layers=2, mixer=mixer,
                                    with_noise=False)
        circuit = program_logical_circuit(
            problem, result.program, [GAMMA, GAMMA], [BETA, BETA])
        reference = _setup(graph, layers=2, mixer="rx",
                           with_noise=False)[1]
        ref_circuit = program_logical_circuit(
            problem, reference.program, [GAMMA, GAMMA], [BETA, BETA])
        np.testing.assert_allclose(
            probabilities(run_circuit(circuit)),
            probabilities(run_circuit(ref_circuit)), atol=1e-12)

    def test_angle_count_validated(self):
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, _ = _setup(graph, layers=2, with_noise=False)
        with pytest.raises(ValueError, match="p=2"):
            program_logical_circuit(problem, result.program, [0.4], [0.3])


class TestEspAccounting:
    def test_program_esp_charges_every_layer(self):
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, noise = _setup(graph, layers=2, mixer="none")
        runner = QaoaRunner(problem, result, noise=noise)
        expected = 1.0
        for layer in result.program.layers:
            expected *= noise.esp(layer.circuit)
        assert runner.esp == pytest.approx(expected)

    def test_reversed_layer_esp_squares(self):
        """The reversed layer is the same op multiset, so a mixer-free
        p=2 program costs exactly the square of one layer's ESP."""
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, noise = _setup(graph, layers=2, mixer="none")
        runner = QaoaRunner(problem, result, noise=noise)
        single = noise.esp(result.circuit)
        assert runner.esp == pytest.approx(single ** 2)

    def test_mixer_walls_cost_noise(self):
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, with_mixers, noise = _setup(graph, layers=2, mixer="rx")
        _, without, _ = _setup(graph, layers=2, mixer="none")
        esp_rx = QaoaRunner(problem, with_mixers, noise=noise).esp
        esp_none = QaoaRunner(problem, without, noise=noise).esp
        assert esp_rx < esp_none

    def test_readout_homes_from_program_final_mapping(self):
        graph = random_problem_graph(9, 0.35, seed=2)
        problem, result, noise = _setup(graph, layers=2)
        runner = QaoaRunner(problem, result, noise=noise,
                            include_readout=True)
        final = result.program.final_mapping()
        assert runner.readout_rates == {
            q: noise.readout_error[final.physical(q)]
            for q in range(problem.n_qubits)}


class TestEndToEndTvd:
    """compile -> simulate -> TVD for p in {1, 2, 3} (ISSUE 7 acceptance)."""

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_weighted_maxcut_loop(self, p):
        graph = weighted_random_problem_graph(8, 0.4, seed=1)
        problem, result, noise = _setup(graph, arch="grid", n_phys=9,
                                        layers=p)
        runner = QaoaRunner(problem, result, noise=noise, shots=2000)
        assert runner.p == p
        value = runner.tvd_vs_ideal([GAMMA] * p, [BETA] * p)
        assert 0.0 <= value <= 1.0
        energy = runner.measure_energy([GAMMA] * p, [BETA] * p)
        assert -problem.max_cut_brute_force() <= energy <= 0.0

    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_nnn_ising_loop(self, p):
        graph = nnn_ising_1d(8)
        problem, result, noise = _setup(graph, arch="heavyhex", n_phys=16,
                                        layers=p, mixer="none")
        runner = QaoaRunner(problem, result, noise=noise, shots=2000)
        assert runner.p == p
        value = runner.tvd_vs_ideal([GAMMA] * p, [BETA] * p)
        assert 0.0 <= value <= 1.0

    def test_optimize_walks_2p_parameters(self):
        graph = weighted_random_problem_graph(8, 0.4, seed=1)
        problem, result, noise = _setup(graph, arch="grid", n_phys=9,
                                        layers=2)
        runner = QaoaRunner(problem, result, noise=noise, shots=1000)
        trace = runner.optimize(max_rounds=6)
        assert trace.rounds
        assert all(len(r.gamma) == 2 and len(r.beta) == 2
                   for r in trace.rounds)
        assert trace.best_energy == min(trace.energies)
        assert trace.esp == pytest.approx(runner.esp)

    def test_deeper_programs_decohere_more(self):
        graph = random_problem_graph(9, 0.35, seed=2)
        esps = []
        for p in (1, 2, 3):
            problem, result, noise = _setup(graph, layers=p)
            esps.append(QaoaRunner(problem, result, noise=noise).esp)
        assert esps[0] > esps[1] > esps[2]
