"""Tests for the readout-error channel."""

import numpy as np
import pytest

from repro.arch import NoiseModel, line
from repro.compiler import compile_qaoa
from repro.problems import QaoaProblem, random_problem_graph
from repro.sim import QaoaRunner
from repro.sim.noise import apply_readout_errors
from repro.sim.qaoa_runner import final_mapping_of


class TestReadoutChannel:
    def test_zero_rate_is_identity(self):
        p = np.array([0.7, 0.1, 0.1, 0.1])
        out = apply_readout_errors(p, {0: 0.0, 1: 0.0})
        np.testing.assert_allclose(out, p)

    def test_full_flip_swaps_outcomes(self):
        # Qubit 0 (most significant bit) fully flips: |00> <-> |10> etc.
        p = np.array([1.0, 0.0, 0.0, 0.0])
        out = apply_readout_errors(p, {0: 1.0})
        np.testing.assert_allclose(out, [0, 0, 1, 0])

    def test_half_rate_mixes(self):
        p = np.array([1.0, 0.0])
        out = apply_readout_errors(p, {0: 0.5})
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_normalisation_preserved(self):
        rng = np.random.default_rng(0)
        p = rng.random(16)
        p /= p.sum()
        out = apply_readout_errors(p, {0: 0.1, 2: 0.03, 3: 0.2})
        assert out.sum() == pytest.approx(1.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            apply_readout_errors(np.array([1.0, 0.0]), {0: 1.5})

    def test_out_of_range_qubit(self):
        with pytest.raises(ValueError):
            apply_readout_errors(np.array([1.0, 0.0]), {3: 0.1})

    def test_non_power_of_two(self):
        with pytest.raises(ValueError):
            apply_readout_errors(np.array([0.5, 0.3, 0.2]), {0: 0.1})


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def parts(self):
        problem = QaoaProblem(random_problem_graph(6, 0.4, seed=2))
        coupling = line(6)
        noise = NoiseModel(coupling, seed=5)
        compiled = compile_qaoa(coupling, problem.graph, noise=noise)
        return problem, noise, compiled

    def test_final_mapping_helper(self, parts):
        problem, _, compiled = parts
        final = final_mapping_of(compiled.circuit, compiled.initial_mapping)
        report = compiled.validate(line(6), problem.graph)
        assert final.log_to_phys == report.final_mapping.log_to_phys

    def test_readout_reduces_signal(self, parts):
        problem, noise, compiled = parts
        clean = QaoaRunner(problem, compiled, noise=noise, seed=1)
        noisy = QaoaRunner(problem, compiled, noise=noise, seed=1,
                           include_readout=True)
        assert noisy.readout_rates
        p_clean = clean.noisy_probabilities(0.5, 0.4)
        p_noisy = noisy.noisy_probabilities(0.5, 0.4)
        ideal = clean.ideal_probabilities(0.5, 0.4)
        from repro.sim import tvd
        assert tvd(p_noisy, ideal) > tvd(p_clean, ideal)

    def test_readout_requires_noise_model(self, parts):
        problem, _, compiled = parts
        runner = QaoaRunner(problem, compiled, include_readout=True)
        assert runner.readout_rates == {}
