"""The fast engine never changes the answer (ISSUE 4 satellite S4).

Three independent searchers must return identical optimal depths on the
paper's discovery-shaped instances:

* the rewritten A* (incremental heuristic + gate-maximal cycles + spare
  canonicalization),
* the same engine degraded to uniform-cost search (``use_heuristic=
  False`` — no heuristic to be wrong),
* the frozen pre-refactor solver (:mod:`repro.solver.reference`), and
* iterative-deepening A* (``strategy="idastar"``).

``minimize_swaps=True`` must additionally preserve the lexicographic
(depth, swaps) optimum of the reference implementation.
"""

import pytest

from repro.arch import grid, line
from repro.arch.coupling import CouplingGraph
from repro.arch.sycamore import sycamore
from repro.problems import biclique, clique, random_problem_graph
from repro.solver import solve_depth_optimal, solve_depth_optimal_reference


def sycamore_7q() -> CouplingGraph:
    """Connected 7-qubit fragment of the 2x4 Sycamore tile (drop qubit 4)."""
    tile = sycamore(2, 4)
    keep = [0, 1, 2, 3, 5, 6, 7]
    relabel = {phys: index for index, phys in enumerate(keep)}
    edges = sorted((relabel[u], relabel[v]) for u, v in tile.edges
                   if u in relabel and v in relabel)
    return CouplingGraph(7, edges, name="sycamore-7q", kind="sycamore")


INSTANCES = [
    pytest.param("line4-clique4", line(4), clique(4), id="line4-clique4"),
    pytest.param("line5-clique5", line(5), clique(5), id="line5-clique5"),
    pytest.param("2x3-biclique", grid(2, 3), biclique(3, 3),
                 id="2x3-biclique"),
    pytest.param("syc7-clique4", sycamore_7q(), clique(4),
                 id="syc7-clique4"),
]


@pytest.mark.parametrize("name,coupling,problem", INSTANCES)
def test_astar_ucs_and_reference_agree(name, coupling, problem):
    fast = solve_depth_optimal(coupling, problem.edges)
    ucs = solve_depth_optimal(coupling, problem.edges, use_heuristic=False)
    ref = solve_depth_optimal_reference(coupling, problem.edges)
    assert fast.depth == ucs.depth == ref.depth
    # The prunings must only ever *shrink* the search.
    assert fast.stats.nodes_expanded <= ref.stats.nodes_expanded


@pytest.mark.parametrize("name,coupling,problem", INSTANCES)
def test_idastar_agrees_with_astar(name, coupling, problem):
    fast = solve_depth_optimal(coupling, problem.edges)
    ida = solve_depth_optimal(coupling, problem.edges, strategy="idastar")
    assert ida.depth == fast.depth
    assert ida.stats.strategy == "idastar"


@pytest.mark.parametrize("name,coupling,problem", INSTANCES)
def test_minimize_swaps_matches_reference(name, coupling, problem):
    fast = solve_depth_optimal(coupling, problem.edges, minimize_swaps=True)
    ref = solve_depth_optimal_reference(coupling, problem.edges,
                                        minimize_swaps=True)
    assert fast.depth == ref.depth
    assert fast.circuit.swap_count == ref.circuit.swap_count


@pytest.mark.parametrize("seed", range(6))
def test_random_sparse_instances_agree(seed):
    problem = random_problem_graph(5, 0.5, seed=seed)
    coupling = grid(2, 3)
    fast = solve_depth_optimal(coupling, problem.edges)
    ref = solve_depth_optimal_reference(coupling, problem.edges)
    ida = solve_depth_optimal(coupling, problem.edges, strategy="idastar")
    assert fast.depth == ref.depth == ida.depth


def test_solver_telemetry_counters_populated():
    from repro._telemetry import clear_events, event_info

    clear_events()
    result = solve_depth_optimal(line(4), clique(4).edges)
    events = event_info()
    assert events.get("solver.runs") == 1
    assert events.get("solver.nodes_expanded") == \
        result.stats.nodes_expanded
    assert result.stats.wall_time_s > 0
    assert result.stats.heap_peak > 0
