"""Tests for the depth-optimal A* solver, including pattern rediscovery."""

import pytest

from repro.arch import grid, line
from repro.ata import BipartitePattern, LinePattern, execute_pattern
from repro.exceptions import SolverError
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import clique, random_problem_graph
from repro.solver import solve_depth_optimal


def check(coupling, edges, result):
    mapping = result.initial_mapping
    validate_compiled(result.circuit, coupling.edges, mapping, edges)
    assert result.circuit.depth() <= result.depth


class TestBasics:
    def test_trivially_executable_circuit(self):
        coupling = line(3)
        result = solve_depth_optimal(coupling, [(0, 1), (1, 2)])
        check(coupling, [(0, 1), (1, 2)], result)
        assert result.depth == 2

    def test_parallel_gates_one_cycle(self):
        coupling = line(4)
        result = solve_depth_optimal(coupling, [(0, 1), (2, 3)])
        assert result.depth == 1

    def test_single_swap_needed(self):
        # Fig 3(c): q0 and q2 on a path need one swap.
        coupling = line(3)
        result = solve_depth_optimal(coupling, [(0, 2)])
        check(coupling, [(0, 2)], result)
        assert result.depth == 2  # swap cycle + gate cycle

    def test_clique3_on_line3_depth_four(self):
        coupling = line(3)
        result = solve_depth_optimal(coupling, clique(3).edges)
        check(coupling, clique(3).edges, result)
        assert result.depth == 4

    def test_empty_problem(self):
        result = solve_depth_optimal(line(2), [])
        assert result.depth == 0
        assert len(result.circuit) == 0

    def test_node_budget_enforced(self):
        with pytest.raises(SolverError):
            solve_depth_optimal(line(5), clique(5).edges, max_nodes=5)


class TestOptimalityAgainstPatterns:
    """The solver must never be beaten by the structured patterns, and on
    the instances the paper used for discovery it matches them."""

    @pytest.mark.parametrize("n", [3, 4])
    def test_line_clique_matches_pattern(self, n):
        coupling = line(n)
        problem = clique(n)
        result = solve_depth_optimal(coupling, problem.edges)
        check(coupling, problem.edges, result)

        pattern_circuit, _, residual = execute_pattern(
            LinePattern(list(range(n))), Mapping.trivial(n), problem.edges)
        assert not residual
        assert result.depth <= pattern_circuit.depth()

    def test_bipartite_2x2_matches_pattern(self):
        coupling = grid(2, 2)
        edges = [(0, 2), (0, 3), (1, 2), (1, 3)]  # bi-clique rows {0,1}x{2,3}
        mapping = Mapping([0, 1, 2, 3], 4)
        result = solve_depth_optimal(coupling, edges, initial_mapping=mapping)
        check(coupling, edges, result)

        pattern = BipartitePattern([0, 1], [2, 3])
        pattern_circuit, _, residual = execute_pattern(pattern, mapping, edges)
        assert not residual
        assert result.depth <= pattern_circuit.depth()

    def test_bipartite_2x3_rediscovery(self):
        # The paper found the 2xUnit pattern by solving the 2x4 instance;
        # 2x3 is the largest bi-clique that stays fast in pure Python.
        coupling = grid(2, 3)
        rows_a, rows_b = [0, 1, 2], [3, 4, 5]
        edges = [(a, b) for a in rows_a for b in rows_b]
        result = solve_depth_optimal(coupling, edges)
        check(coupling, edges, result)

        pattern = BipartitePattern(rows_a, rows_b)
        pattern_circuit, _, residual = execute_pattern(
            pattern, Mapping.trivial(6), edges)
        assert not residual
        # The structured pattern is depth-optimal on its home instance.
        assert result.depth == pattern_circuit.depth()


class TestAdmissibility:
    """h(root) is a valid lower bound: optimal depth >= h(root)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_instances_bounded_below(self, seed):

        from repro.solver.heuristic import heuristic

        coupling = line(4)
        problem = random_problem_graph(4, 0.6, seed=seed)
        if not problem.edges:
            pytest.skip("empty instance")
        result = solve_depth_optimal(coupling, problem.edges)
        check(coupling, problem.edges, result)

        degrees = problem.degrees()
        h_root = heuristic(problem.edges, degrees, [0, 1, 2, 3],
                           coupling.distance_matrix)
        assert result.depth >= h_root

    def test_depth_counts_cycles_not_gates(self):
        coupling = line(4)
        result = solve_depth_optimal(coupling, [(0, 1), (1, 2), (2, 3)])
        # Chain of 3 gates sharing qubits: depth 2 (ends parallel, middle after).
        assert result.depth == 2
