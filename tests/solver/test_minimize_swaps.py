"""Tests for the lexicographic (depth, swaps) solver extension.

The paper leaves gate-count-aware optimal solving as future work
(Section 4); this verifies our implementation of it: depth must match the
depth-only solver exactly, and the SWAP count can only improve.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import grid, line
from repro.ir.validate import validate_compiled
from repro.problems import clique, random_problem_graph
from repro.solver import solve_depth_optimal


@pytest.mark.parametrize("edges", [
    [(0, 2)],
    [(0, 1), (1, 2), (0, 2)],
    [(0, 3), (1, 2)],
])
def test_depth_unchanged_swaps_not_worse_line4(edges):
    coupling = line(4)
    plain = solve_depth_optimal(coupling, edges)
    lexi = solve_depth_optimal(coupling, edges, minimize_swaps=True)
    assert lexi.depth == plain.depth
    assert lexi.circuit.swap_count <= plain.circuit.swap_count
    validate_compiled(lexi.circuit, coupling.edges, lexi.initial_mapping,
                      edges)


def test_clique4_swap_minimal_schedule():
    coupling = line(4)
    edges = sorted(clique(4).edges)
    lexi = solve_depth_optimal(coupling, edges, minimize_swaps=True)
    plain = solve_depth_optimal(coupling, edges)
    assert lexi.depth == plain.depth
    assert lexi.circuit.swap_count <= plain.circuit.swap_count
    # Clique-4 on a 4-line needs at least 3 non-adjacent pairs resolved.
    assert lexi.circuit.swap_count >= 2


def test_no_swaps_needed_when_all_adjacent():
    coupling = line(3)
    lexi = solve_depth_optimal(coupling, [(0, 1), (1, 2)],
                               minimize_swaps=True)
    assert lexi.circuit.swap_count == 0
    assert lexi.depth == 2


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 1000))
def test_random_instances_property(seed):
    coupling = grid(2, 2)
    problem = random_problem_graph(4, 0.5, seed=seed)
    if not problem.edges:
        return
    edges = sorted(problem.edges)
    plain = solve_depth_optimal(coupling, edges)
    lexi = solve_depth_optimal(coupling, edges, minimize_swaps=True)
    assert lexi.depth == plain.depth
    assert lexi.circuit.swap_count <= plain.circuit.swap_count
    validate_compiled(lexi.circuit, coupling.edges, lexi.initial_mapping,
                      edges)
