"""Tests for the admissible cost function (Definitions 3 and 4)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.solver.heuristic import heuristic, pair_cost


class TestPairCost:
    def test_fig15_worked_example(self):
        # deg(q1)=3, deg(q4)=2, distance 3 -> cost 4 (paper Fig 15).
        assert pair_cost(3, 2, 3) == 4

    def test_adjacent_pair_is_max_of_degrees(self):
        assert pair_cost(2, 5, 1) == 5
        assert pair_cost(1, 1, 1) == 1

    def test_distance_two_single_swap_split(self):
        # One swap must be taken by one of the qubits.
        assert pair_cost(1, 1, 2) == 2
        assert pair_cost(3, 1, 2) == 3  # give the swap to the light qubit

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            pair_cost(1, 1, 0)

    @given(st.integers(1, 10), st.integers(1, 10), st.integers(1, 12))
    def test_cost_at_least_busier_degree(self, di, dj, d):
        assert pair_cost(di, dj, d) >= max(di, dj)

    @given(st.integers(1, 10), st.integers(1, 10), st.integers(1, 12))
    def test_cost_at_least_half_the_total_work(self, di, dj, d):
        # di + dj gates plus d-1 swaps split across two qubits.
        total = di + dj + (d - 1)
        assert pair_cost(di, dj, d) >= total / 2

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 10))
    def test_symmetry(self, di, dj, d):
        assert pair_cost(di, dj, d) == pair_cost(dj, di, d)

    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 9))
    def test_monotone_in_distance(self, di, dj, d):
        assert pair_cost(di, dj, d + 1) >= pair_cost(di, dj, d)

    @given(st.integers(0, 40), st.integers(0, 40), st.integers(1, 60))
    def test_closed_form_equals_the_original_scan(self, di, dj, d):
        # The O(1) closed form must agree with the O(d) Definition-3
        # minimisation it replaced (kept in the frozen reference solver).
        from repro.solver.reference import _pair_cost_legacy

        assert pair_cost(di, dj, d) == _pair_cost_legacy(di, dj, d)


class TestHeuristic:
    def test_empty_remaining_is_zero(self):
        dist = np.zeros((2, 2), dtype=np.int32)
        assert heuristic([], {}, [0, 1], dist) == 0

    def test_takes_max_over_edges(self):
        # Line of 4: distances |i-j|.
        dist = np.abs(np.subtract.outer(np.arange(4), np.arange(4)))
        remaining = [(0, 1), (0, 3)]
        degrees = {0: 2, 1: 1, 3: 1}
        # (0,1): max(2,1)=2 ; (0,3): d=3, min split -> max(2+x, 1+2-x)
        # x=0 -> 3, x=1 -> 3, x=2 -> 4 => 3.
        assert heuristic(remaining, degrees, [0, 1, 2, 3], dist) == 3
