"""Cross-check A* depths against uniform-cost search (h = 0).

Uniform-cost search over the same transition system is trivially optimal;
if A* with the Definition 3 heuristic ever returned a deeper schedule the
heuristic would be inadmissible.  Property-tested on random tiny
instances.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import grid, line
from repro.problems import clique
from repro.solver import solve_depth_optimal


def edges_for(n, indices):
    all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return [all_pairs[k % len(all_pairs)] for k in indices]


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=4, unique=True))
def test_astar_matches_uniform_cost_on_line4(indices):
    coupling = line(4)
    edges = sorted(set(edges_for(4, indices)))
    fast = solve_depth_optimal(coupling, edges)
    slow = solve_depth_optimal(coupling, edges, use_heuristic=False)
    assert fast.depth == slow.depth


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 5), min_size=1, max_size=3, unique=True))
def test_astar_matches_uniform_cost_on_2x2_grid(indices):
    coupling = grid(2, 2)
    edges = sorted(set(edges_for(4, indices)))
    fast = solve_depth_optimal(coupling, edges)
    slow = solve_depth_optimal(coupling, edges, use_heuristic=False)
    assert fast.depth == slow.depth


def test_heuristic_reduces_expansions():
    coupling = line(4)
    edges = sorted(clique(4).edges)
    fast = solve_depth_optimal(coupling, edges)
    slow = solve_depth_optimal(coupling, edges, use_heuristic=False)
    assert fast.depth == slow.depth
    assert fast.nodes_expanded <= slow.nodes_expanded
