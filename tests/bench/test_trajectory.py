"""Round-trip tests for the bench trajectory store (ISSUE 6 satellite)."""

import json

import pytest

from repro.bench import (SCHEMA_VERSION, append_run, baseline_run,
                         latest_run, read_trajectory)


class TestAppendReadRoundTrip:
    def test_missing_file_reads_empty(self, tmp_path):
        trajectory = read_trajectory(tmp_path / "BENCH.json", "compiler")
        assert trajectory == {"schema": SCHEMA_VERSION,
                              "benchmark": "compiler", "runs": []}

    def test_append_creates_and_accumulates(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, {"mode": "full", "label": "baseline",
                          "instances": [{"name": "grid", "wall_s": 9.0}]},
                   benchmark="compiler")
        append_run(path, {"mode": "full",
                          "instances": [{"name": "grid", "wall_s": 1.0}]},
                   benchmark="compiler")
        trajectory = read_trajectory(path)
        assert trajectory["schema"] == SCHEMA_VERSION
        assert trajectory["benchmark"] == "compiler"
        assert [run["run_id"] for run in trajectory["runs"]] == [1, 2]
        assert trajectory["runs"][0]["label"] == "baseline"
        # every appended record is stamped with provenance
        for run in trajectory["runs"]:
            assert run["schema"] == SCHEMA_VERSION
            assert run["recorded_at"]
            assert run["environment"]["python"]

    def test_round_trip_preserves_payload(self, tmp_path):
        path = tmp_path / "BENCH.json"
        payload = {"mode": "smoke", "instances": [
            {"name": "line-1024", "wall_s": 0.5, "depth": 42, "swaps": 7}]}
        append_run(path, dict(payload))
        run = read_trajectory(path)["runs"][0]
        for key, value in payload.items():
            assert run[key] == value

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, {"mode": "full"})
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["runs"][0]["mode"] == "full"


class TestLegacyMigration:
    def test_legacy_report_becomes_run_one(self, tmp_path):
        path = tmp_path / "BENCH_solver.json"
        legacy = {"generated_by": "scripts/bench_solver.py",
                  "mode": "full", "instances": [{"name": "grid"}],
                  "acceptance": {"ok": True}}
        path.write_text(json.dumps(legacy), encoding="utf-8")

        trajectory = read_trajectory(path, "solver")
        assert trajectory["schema"] == SCHEMA_VERSION
        assert len(trajectory["runs"]) == 1
        first = trajectory["runs"][0]
        assert first["legacy"] is True
        assert first["run_id"] == 1
        assert first["mode"] == "full"
        assert first["acceptance"] == {"ok": True}

    def test_append_after_legacy_keeps_history(self, tmp_path):
        path = tmp_path / "BENCH_solver.json"
        path.write_text(json.dumps({"mode": "full", "instances": []}),
                        encoding="utf-8")
        append_run(path, {"mode": "full"}, benchmark="solver")
        trajectory = read_trajectory(path)
        assert [run["run_id"] for run in trajectory["runs"]] == [1, 2]
        assert trajectory["runs"][0]["legacy"] is True
        assert "legacy" not in trajectory["runs"][1]

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"schema": SCHEMA_VERSION + 1,
                                    "runs": []}), encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            read_trajectory(path)


class TestRunSelection:
    def _trajectory(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, {"mode": "full", "label": "baseline",
                          "wall_s": 9.0})
        append_run(path, {"mode": "smoke", "wall_s": 0.2})
        append_run(path, {"mode": "full", "wall_s": 1.0})
        return read_trajectory(path)

    def test_latest_run(self, tmp_path):
        trajectory = self._trajectory(tmp_path)
        assert latest_run(trajectory)["wall_s"] == 1.0
        assert latest_run(trajectory, mode="smoke")["wall_s"] == 0.2
        assert latest_run({"runs": []}) is None

    def test_baseline_run_prefers_label(self, tmp_path):
        trajectory = self._trajectory(tmp_path)
        assert baseline_run(trajectory)["label"] == "baseline"
        assert baseline_run(trajectory, mode="full")["wall_s"] == 9.0

    def test_baseline_falls_back_to_earliest(self, tmp_path):
        path = tmp_path / "BENCH.json"
        append_run(path, {"mode": "full", "wall_s": 5.0})
        append_run(path, {"mode": "full", "wall_s": 1.0})
        trajectory = read_trajectory(path)
        assert baseline_run(trajectory)["wall_s"] == 5.0
        assert baseline_run(trajectory, mode="smoke") is None
