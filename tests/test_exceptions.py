"""Exception-surface tests: every failure mode raises the right type."""

import pytest

from repro.exceptions import (ArchitectureError, CompilationError,
                              JobTimeout, JobTimeoutError, ReproError,
                              ResourceExhaustedError, SolverError,
                              SolverExhaustedError, TransientError,
                              ValidationError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [ValidationError, ArchitectureError,
                                     CompilationError, SolverError,
                                     TransientError,
                                     ResourceExhaustedError])
    def test_subclasses_of_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ValidationError("boom")

    def test_transient_permanent_axis(self):
        # Timeouts are transient (the machine was busy, not the spec
        # wrong); validation/compilation failures are permanent.
        assert issubclass(JobTimeoutError, TransientError)
        assert not issubclass(ValidationError, TransientError)
        assert not issubclass(CompilationError, TransientError)

    def test_solver_exhaustion_is_both_solver_and_resource(self):
        # Catch sites keyed on SolverError (CLI) and the degradation
        # path keyed on ResourceExhaustedError both see budget blowups.
        assert issubclass(SolverExhaustedError, SolverError)
        assert issubclass(SolverExhaustedError, ResourceExhaustedError)

    def test_job_timeout_back_compat_alias(self):
        assert JobTimeout is JobTimeoutError


class TestRaisedFromRealPaths:
    def test_architecture_error_from_bad_edge(self):
        from repro.arch.coupling import CouplingGraph
        with pytest.raises(ArchitectureError):
            CouplingGraph(2, [(0, 5)])

    def test_architecture_error_from_disconnection(self):
        from repro.arch.coupling import CouplingGraph
        g = CouplingGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ArchitectureError):
            g.distance(0, 3)

    def test_validation_error_from_validator(self):
        from repro.ir import Circuit, Mapping, Op, validate_compiled
        c = Circuit(2, [Op.cphase(0, 1)])
        with pytest.raises(ValidationError):
            validate_compiled(c, [(0, 1)], Mapping.trivial(2), [])

    def test_solver_error_from_budget(self):
        from repro.arch import line
        from repro.problems import clique
        from repro.solver import solve_depth_optimal
        with pytest.raises(SolverError):
            solve_depth_optimal(line(5), sorted(clique(5).edges),
                                max_nodes=2)

    def test_budget_blowup_is_specifically_exhaustion(self):
        from repro.arch import line
        from repro.problems import clique
        from repro.solver import solve_depth_optimal
        with pytest.raises(SolverExhaustedError):
            solve_depth_optimal(line(5), sorted(clique(5).edges),
                                max_nodes=2)
