"""Exception-surface tests: every failure mode raises the right type."""

import pytest

from repro.exceptions import (ArchitectureError, CompilationError,
                              ReproError, SolverError, ValidationError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [ValidationError, ArchitectureError,
                                     CompilationError, SolverError])
    def test_subclasses_of_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ValidationError("boom")


class TestRaisedFromRealPaths:
    def test_architecture_error_from_bad_edge(self):
        from repro.arch.coupling import CouplingGraph
        with pytest.raises(ArchitectureError):
            CouplingGraph(2, [(0, 5)])

    def test_architecture_error_from_disconnection(self):
        from repro.arch.coupling import CouplingGraph
        g = CouplingGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(ArchitectureError):
            g.distance(0, 3)

    def test_validation_error_from_validator(self):
        from repro.ir import Circuit, Mapping, Op, validate_compiled
        c = Circuit(2, [Op.cphase(0, 1)])
        with pytest.raises(ValidationError):
            validate_compiled(c, [(0, 1)], Mapping.trivial(2), [])

    def test_solver_error_from_budget(self):
        from repro.arch import line
        from repro.problems import clique
        from repro.solver import solve_depth_optimal
        with pytest.raises(SolverError):
            solve_depth_optimal(line(5), sorted(clique(5).edges),
                                max_nodes=2)
