"""``python -m repro check`` CLI: exit codes, reporters, baseline."""

import json
import pathlib

import pytest

from repro.cli import main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

TRIP_CK010 = ("_CACHE = {}\n"
              "\n"
              "\n"
              "def remember(key):\n"
              "    _CACHE[key] = key\n")


def run_cli(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture()
def tripping_file(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(TRIP_CK010)
    return target


class TestExitCodes:
    def test_clean_file_exits_0(self, capsys, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("X = 1\n")
        code, out, _ = run_cli(capsys, ["check", str(target),
                                        "--no-baseline"])
        assert code == 0
        assert "clean: no diagnostics" in out

    def test_findings_exit_1(self, capsys, tripping_file):
        code, out, _ = run_cli(capsys, ["check", str(tripping_file),
                                        "--no-baseline"])
        assert code == 1
        assert "CK010" in out
        assert f"{tripping_file}:5" in out

    def test_missing_path_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, ["check", str(tmp_path / "gone")])
        assert code == 2
        assert "no such file" in err

    def test_unknown_rule_code_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(capsys, ["check", str(tmp_path),
                                        "--select", "CK999"])
        assert code == 2
        assert "CK999" in err

    def test_select_excludes_other_rules(self, capsys, tripping_file):
        code, out, _ = run_cli(capsys, [
            "check", str(tripping_file), "--select", "CK001",
            "--no-baseline"])
        assert code == 0
        assert "clean: no diagnostics" in out


class TestJsonReporter:
    def test_schema(self, capsys, tripping_file):
        code, out, _ = run_cli(capsys, [
            "check", str(tripping_file), "--format", "json",
            "--no-baseline"])
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == 1
        assert payload["ok"] is False
        assert payload["by_rule"] == {"CK010": 1}
        assert payload["suppressed_baseline"] == 0
        assert payload["stale_baseline"] == []
        (diagnostic,) = payload["diagnostics"]
        assert set(diagnostic) == {"code", "severity", "rule", "message",
                                   "path", "line", "symbol", "hint"}
        assert diagnostic["line"] == 5
        assert diagnostic["symbol"] == "_CACHE"

    def test_output_artifact(self, capsys, tmp_path, tripping_file):
        artifact = tmp_path / "report.json"
        code, out, _ = run_cli(capsys, [
            "check", str(tripping_file), "--output", str(artifact),
            "--no-baseline"])
        assert code == 1
        assert "CK010" in out  # text report still printed
        payload = json.loads(artifact.read_text())
        assert payload["by_rule"] == {"CK010": 1}


class TestBaselineFlag:
    def write_baseline(self, tmp_path, justification="import-time only"):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": [
            {"code": "CK010", "path": "mod.py", "symbol": "_CACHE",
             "justification": justification}]}))
        return path

    def test_baseline_suppresses_to_exit_0(self, capsys, tmp_path,
                                           tripping_file):
        baseline = self.write_baseline(tmp_path)
        code, out, _ = run_cli(capsys, [
            "check", str(tripping_file), "--baseline", str(baseline)])
        assert code == 0
        assert "1 finding(s) suppressed by baseline" in out

    def test_no_baseline_overrides(self, capsys, tmp_path, tripping_file):
        baseline = self.write_baseline(tmp_path)
        code, _, _ = run_cli(capsys, [
            "check", str(tripping_file), "--baseline", str(baseline),
            "--no-baseline"])
        assert code == 1

    def test_unjustified_baseline_exits_2(self, capsys, tmp_path,
                                          tripping_file):
        baseline = self.write_baseline(tmp_path, justification="")
        code, _, err = run_cli(capsys, [
            "check", str(tripping_file), "--baseline", str(baseline)])
        assert code == 2
        assert "justification" in err

    def test_stale_entry_reported_not_fatal(self, capsys, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("X = 1\n")
        baseline = self.write_baseline(tmp_path)
        code, out, _ = run_cli(capsys, [
            "check", str(clean), "--baseline", str(baseline)])
        assert code == 0
        assert "stale baseline entry" in out


def test_list_rules(capsys):
    code, out, _ = run_cli(capsys, ["check", "--list-rules"])
    assert code == 0
    for expected in ("CK000", "CK001", "CK010", "CK011", "CK020",
                     "CK021", "CK030"):
        assert expected in out
    assert "escape:" in out


def test_no_restrict_flag(capsys):
    code, out, _ = run_cli(capsys, [
        "check", str(FIXTURES / "ck001.py"), "--no-restrict",
        "--select", "CK001", "--no-baseline"])
    assert code == 1
    assert "CK001" in out
