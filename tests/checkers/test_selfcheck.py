"""The gate the CI lint job enforces: the shipped tree checks clean.

Running the full catalogue over ``src/repro`` with the committed
baseline must produce zero non-baselined findings *and* zero stale
baseline entries — so a regression fails here first, and a fixed
finding forces its baseline entry to be deleted in the same change.
"""

import pathlib

from repro.checkers import apply_baseline, check_paths, load_baseline

ROOT = pathlib.Path(__file__).resolve().parents[2]


def run_selfcheck():
    findings = check_paths([ROOT / "src" / "repro"])
    entries = load_baseline(ROOT / "CHECKERS_BASELINE.json")
    return apply_baseline(findings, entries)


def test_source_tree_has_zero_nonbaselined_findings():
    remaining, _suppressed, _stale = run_selfcheck()
    assert remaining == [], "\n".join(
        f"{d.location()}: {d.code} {d.message}" for d in remaining)


def test_baseline_has_no_stale_entries():
    _remaining, suppressed, stale = run_selfcheck()
    assert stale == (), [f"{e.code} {e.path} {e.symbol}" for e in stale]
    # The baseline is in active use (the justified CK010 exemptions);
    # if this drops to zero the file should be deleted outright.
    assert suppressed > 0


def test_paper_knob_declaration_matches_presets():
    # The registry must stay import-light, so it declares the paper
    # knob names as a literal rather than importing PAPER_KNOBS; this
    # is the drift guard that keeps the two in lockstep.
    from repro.pipeline.presets import PAPER_KNOBS
    from repro.pipeline.registry import PAPER_KNOB_NAMES

    assert set(PAPER_KNOB_NAMES) == set(PAPER_KNOBS)


def test_solver_knobs_are_declared():
    from repro.pipeline.registry import declared_knobs, get_method

    assert {"max_nodes", "prune_unhelpful_swaps", "use_heuristic",
            "minimize_swaps", "strategy", "fallback"} \
        <= set(get_method("optimal").knobs)
    assert "layers" in declared_knobs()


def test_fault_sites_registry_matches_module_table():
    from repro.resilience.faults import KNOWN_SITES

    assert KNOWN_SITES == ("batch.job", "batch.collect", "pipeline.pass",
                           "solver.solve", "solver.expand",
                           "serve.request", "serve.store_write")
