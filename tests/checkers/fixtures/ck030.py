"""CK030 fixture: a Pass subclass reading undeclared knobs."""


class BasePass:
    """Stand-in for repro.pipeline.base.Pass (name is what matters)."""


class TuningPass(BasePass):
    def run(self, context):
        alpha = context.knob("alpha", 0.5)  # clean: declared paper knob
        magic = context.knob("magic_threshold", 3)  # finding
        extra = context.knobs.get("magic_extra")  # finding
        return alpha, magic, extra


class NotAPassHelper:
    def run(self, context):
        return context.knob("magic_threshold")  # clean: not a Pass
