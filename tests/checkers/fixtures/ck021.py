"""CK021 fixture: fault-site and telemetry-counter naming drift."""


def instrument(fault_point, count_event, kind):
    fault_point("batch.job", "registered sites are clean")
    fault_point("batch.jobz")  # finding: typo'd, unregistered site
    count_event("solver.expansions")
    count_event("SolverExpansions")  # finding: not family.event shaped
    count_event(f"solver{kind}.total")  # finding: no literal family prefix
    count_event(f"solver.fallback.{kind}")
