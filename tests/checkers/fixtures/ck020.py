"""CK020 fixture: an unclassified raise on a retry-reachable path."""


def run_with_budget(budget):
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")  # finding
    if budget == 0:
        raise NotImplementedError("zero budgets")  # clean: allowed builtin
    return budget


def reraise_is_clean(exc):
    raise exc
