"""Clean fixture: the full catalogue has nothing to report here."""

LIMIT = 4


def scan(edges, registry):
    ordered = sorted(set(edges))
    total = 0
    for edge in ordered:
        total += registry.get(edge, 0)
    if total > LIMIT:
        raise NotImplementedError("large scans are out of scope")
    return total
