"""CK010 fixture: module-level state mutated from inside functions."""

_CACHE = {}
_MODE = "idle"
FROZEN = (1, 2)


def remember(key, value):
    _CACHE[key] = value  # finding: subscript store into a module dict


def forget_all():
    _CACHE.clear()  # finding: mutator call on a module dict


def set_mode(mode):
    global _MODE  # finding: rebinds module state
    _MODE = mode


def local_state_is_clean(items):
    cache = {}
    for item in items:
        cache[item] = item
    cache.clear()
    return cache, FROZEN
