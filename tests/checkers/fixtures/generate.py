"""Regenerate the golden checker fixtures' expectations.

Each ``ckNNN.*`` file in this directory is crafted so that exactly one
CK rule family trips, at known lines; ``expected.json`` records the
``[[code, line], ...]`` each fixture must produce and
``tests/checkers/test_rules.py`` pins the runtime results against it.
Run from the repository root after changing a fixture or a rule::

    PYTHONPATH=src python tests/checkers/fixtures/generate.py
"""

import json
import pathlib

from repro.checkers import check_source

HERE = pathlib.Path(__file__).parent

#: Every fixture, in catalogue order (``ck000.txt`` is deliberately not
#: a ``.py`` file so tooling never tries to parse it).
FIXTURES = ("ck000.txt", "ck001.py", "ck010.py", "ck011.py", "ck020.py",
            "ck021.py", "ck030.py", "clean.py")


def main():
    expected = {}
    for name in FIXTURES:
        source = (HERE / name).read_text(encoding="utf-8")
        diagnostics = check_source(source, name, restrict=False)
        expected[name] = [[d.code, d.line] for d in diagnostics]
    (HERE / "expected.json").write_text(
        json.dumps(expected, indent=1) + "\n", encoding="utf-8")
    print(json.dumps(expected, indent=1))


if __name__ == "__main__":
    main()
