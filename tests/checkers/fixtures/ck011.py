"""CK011 fixture: unpicklable callables crossing process boundaries."""


def run_job(payload):
    return payload


def submit_all(pool, jobs):
    def bridge(job):
        return run_job(job)

    futures = [pool.submit(bridge, job) for job in jobs]  # finding
    sentinel = pool.submit(lambda: None)  # finding: lambda argument
    module_level_is_clean = pool.submit(run_job, jobs)
    return futures, sentinel, module_level_is_clean
