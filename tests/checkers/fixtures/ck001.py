"""CK001 fixture: unordered iteration — two findings, three escapes."""


def hash_ordered(edges, weights):
    pending = set(edges)
    total = 0
    for edge in pending:
        total += len(edge)  # finding: iterating a set-valued name
    for key in weights.keys():
        total += weights[key]  # finding: explicit .keys() iteration
    for edge in sorted(pending):
        total -= len(edge)  # escape: sorted(...) fixes the order
    for edge in pending:  # det: ok
        total += 1  # escape: vetted line
    # finding: a genexp over a set is still hash-ordered iteration,
    # even when its result feeds an order-insensitive reducer.
    return total + sum(len(e) for e in pending if e)


def rebound_is_clean(edges):
    pending = set(edges)
    pending = list(edges)
    for edge in pending:  # clean: reassignment cleared the taint
        yield edge
