"""Engine semantics: dispatch, suppression, selection, baseline."""

import json
import textwrap

import pytest

from repro.checkers import (BaselineEntry, BaselineError, apply_baseline,
                            check_paths, check_source, load_baseline,
                            resolve_checkers)
from repro.lint.diagnostics import Diagnostic

SET_LOOP = "for item in set(values):\n    print(item)\n"


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestSuppression:
    def test_legacy_det_ok_vets_ck001(self):
        source = "for item in set(values):  # det: ok\n    print(item)\n"
        assert check_source(source, "mod.py", restrict=False) == []

    def test_generic_check_ok_vets_any_rule(self):
        source = "for item in set(values):  # check: ok\n    print(item)\n"
        assert check_source(source, "mod.py", restrict=False) == []

    def test_scoped_check_ok_vets_only_listed_codes(self):
        vetted = ("for item in set(values):  # check: ok[CK001]\n"
                  "    print(item)\n")
        assert check_source(vetted, "mod.py", restrict=False) == []
        other = ("for item in set(values):  # check: ok[CK010]\n"
                 "    print(item)\n")
        assert codes(check_source(other, "mod.py",
                                  restrict=False)) == ["CK001"]


class TestSelection:
    def test_select_runs_only_listed_rules(self):
        source = textwrap.dedent("""\
            _CACHE = {}


            def mutate(key):
                _CACHE[key] = key
                for item in set(key):
                    print(item)
            """)
        found = check_source(source, "mod.py",
                             resolve_checkers(select=("CK010",)),
                             restrict=False)
        assert codes(found) == ["CK010"]

    def test_unknown_code_raises_before_scanning(self):
        with pytest.raises(ValueError, match="CK999"):
            resolve_checkers(select=("CK999",))

    def test_ignore_removes_rules(self):
        rules = resolve_checkers(ignore=("CK001",))
        assert "CK001" not in {r.code for r in rules}

    def test_ck000_fires_even_under_select(self):
        found = check_source("def broken(:\n", "mod.py",
                             resolve_checkers(select=("CK010",)),
                             restrict=False)
        assert codes(found) == ["CK000"]
        assert "syntax error" in found[0].message


class TestRestriction:
    def test_ck001_restricted_to_hot_paths(self):
        assert check_source(SET_LOOP, "src/repro/baselines/x.py") == []
        assert codes(check_source(
            SET_LOOP, "src/repro/compiler/x.py")) == ["CK001"]

    def test_restrict_false_scans_everything(self):
        assert codes(check_source(
            SET_LOOP, "src/repro/baselines/x.py",
            restrict=False)) == ["CK001"]


class TestCheckPaths:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such file"):
            check_paths([tmp_path / "gone"])

    def test_scans_tree_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text(SET_LOOP)
        (tmp_path / "a.py").write_text(SET_LOOP)
        found = check_paths([tmp_path], select=("CK001",), restrict=False)
        assert [d.path for d in found] == [str(tmp_path / "a.py"),
                                           str(tmp_path / "b.py")]


def write_baseline(tmp_path, entries):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "entries": entries}))
    return path


class TestBaseline:
    def test_load_and_match(self, tmp_path):
        path = write_baseline(tmp_path, [
            {"code": "CK010", "path": "repro/x.py", "symbol": "_S",
             "justification": "import-time only"}])
        (entry,) = load_baseline(path)
        hit = Diagnostic(code="CK010", severity="error", rule="r",
                         message="m", path="/abs/src/repro/x.py",
                         line=3, symbol="_S")
        miss_symbol = Diagnostic(code="CK010", severity="error", rule="r",
                                 message="m", path="/abs/src/repro/x.py",
                                 line=3, symbol="_T")
        miss_path = Diagnostic(code="CK010", severity="error", rule="r",
                               message="m", path="src/repro/y.py",
                               line=3, symbol="_S")
        remaining, suppressed, stale = apply_baseline(
            [hit, miss_symbol, miss_path], (entry,))
        assert remaining == [miss_symbol, miss_path]
        assert suppressed == 1
        assert stale == ()

    def test_symbol_free_entry_matches_wholesale(self, tmp_path):
        path = write_baseline(tmp_path, [
            {"code": "CK010", "path": "repro/x.py",
             "justification": "whole file vetted"}])
        (entry,) = load_baseline(path)
        assert entry.symbol is None
        hit = Diagnostic(code="CK010", severity="error", rule="r",
                         message="m", path="src/repro/x.py", line=1,
                         symbol="anything")
        remaining, suppressed, _ = apply_baseline([hit], (entry,))
        assert remaining == [] and suppressed == 1

    def test_stale_entries_are_reported(self, tmp_path):
        path = write_baseline(tmp_path, [
            {"code": "CK010", "path": "repro/fixed.py", "symbol": "_X",
             "justification": "was true once"}])
        entries = load_baseline(path)
        remaining, suppressed, stale = apply_baseline([], entries)
        assert remaining == [] and suppressed == 0
        assert [e.path for e in stale] == ["repro/fixed.py"]

    def test_missing_justification_is_an_error(self, tmp_path):
        path = write_baseline(tmp_path, [
            {"code": "CK010", "path": "repro/x.py", "justification": "  "}])
        with pytest.raises(BaselineError, match="justification"):
            load_baseline(path)

    def test_malformed_baseline_is_an_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(bad)
        versionless = tmp_path / "versionless.json"
        versionless.write_text(json.dumps({"entries": []}))
        with pytest.raises(BaselineError, match="version"):
            load_baseline(versionless)

    def test_entry_dataclass_matching_uses_posix_suffix(self):
        entry = BaselineEntry(code="CK010", path="repro/x.py",
                              justification="j", symbol=None)
        win = Diagnostic(code="CK010", severity="error", rule="r",
                         message="m", path="src\\repro\\x.py", line=1)
        assert entry.matches(win)
