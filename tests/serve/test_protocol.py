"""Request normalization and response envelopes."""

import pytest

from repro.exceptions import SpecificationError
from repro.serve.protocol import (error_response, normalize_request,
                                  request_op, result_response)

BASE = {"arch": "grid", "qubits": 8}


class TestRequestOp:
    def test_defaults_to_compile(self):
        assert request_op(BASE) == "compile"

    @pytest.mark.parametrize("op", ["stats", "ping", "shutdown"])
    def test_known_ops(self, op):
        assert request_op({"op": op}) == op

    @pytest.mark.parametrize("op", ["frobnicate", 7, None])
    def test_unknown_op_is_an_error(self, op):
        with pytest.raises(SpecificationError, match="unknown op"):
            request_op({"op": op})


class TestNormalizeRequest:
    def test_minimal_request(self):
        job = normalize_request(dict(BASE))
        assert (job.arch, job.n_qubits) == ("grid", 8)
        assert job.options == ()

    def test_envelope_keys_are_not_spec_fields(self):
        job = normalize_request({**BASE, "id": 42, "op": "compile"})
        assert job == normalize_request(dict(BASE))

    @pytest.mark.parametrize("alias,canonical,value", [
        ("qubits", "n_qubits", 8),
        ("n_qubits", "n_qubits", 8),
        ("noise", "use_noise", True),
        ("use_noise", "use_noise", True),
    ])
    def test_aliases(self, alias, canonical, value):
        payload = {"arch": "grid", "qubits": 8}
        payload.pop("qubits" if canonical == "n_qubits" else "", None)
        payload[alias] = value
        job = normalize_request(payload)
        assert getattr(job, canonical) == value

    def test_agreeing_aliases_are_accepted(self):
        job = normalize_request({"arch": "grid", "qubits": 8,
                                 "n_qubits": 8})
        assert job.n_qubits == 8

    def test_conflicting_aliases_are_rejected(self):
        with pytest.raises(SpecificationError, match="conflicting"):
            normalize_request({"arch": "grid", "qubits": 8,
                               "n_qubits": 16})

    def test_unknown_key_is_an_error_not_ignored(self):
        with pytest.raises(SpecificationError, match="unknown request key"):
            normalize_request({**BASE, "sede": 3})  # typo'd "seed"

    @pytest.mark.parametrize("missing,needle", [
        ({"qubits": 8}, "arch"),
        ({"arch": "grid"}, "qubits"),
    ])
    def test_missing_required_fields(self, missing, needle):
        with pytest.raises(SpecificationError, match=needle):
            normalize_request(dict(missing))

    def test_options_become_a_sorted_tuple(self):
        job = normalize_request({**BASE, "options": {"b": 2, "a": 1}})
        assert job.options == (("a", 1), ("b", 2))

    def test_null_options_mean_no_options(self):
        assert normalize_request({**BASE, "options": None}).options == ()

    def test_non_object_options_are_rejected(self):
        with pytest.raises(SpecificationError, match="options"):
            normalize_request({**BASE, "options": [1, 2]})

    def test_non_object_request_is_rejected(self):
        with pytest.raises(SpecificationError, match="JSON object"):
            normalize_request(["not", "a", "dict"])

    def test_bad_field_type_becomes_a_specification_error(self):
        with pytest.raises(SpecificationError):
            normalize_request({"arch": "grid", "qubits": "eight"})

    def test_job_validation_errors_propagate(self):
        with pytest.raises(SpecificationError, match="workload"):
            normalize_request({**BASE, "workload": "maxcut"})

    def test_label_passes_through(self):
        job = normalize_request({**BASE, "label": "mine"})
        assert job.label == "mine" and job.name == "mine"


class TestEnvelopes:
    def test_result_response_echoes_id_and_stamps_version(self):
        doc = result_response({"id": 9}, "f" * 64, "grid/x", "store",
                              1.25, {"ok": True})
        assert doc["id"] == 9 and doc["ok"] is True
        assert doc["served_from"] == "store"
        assert doc["version"] == 1
        assert doc["fingerprint"] == "f" * 64

    def test_result_response_reflects_failed_results(self):
        doc = result_response({}, "f" * 64, "grid/x", "compiled", 1.0,
                              {"ok": False})
        assert doc["ok"] is False

    def test_error_response_shape(self):
        doc = error_response({"id": 3}, "SpecificationError", "nope")
        assert doc == {"version": 1, "id": 3, "ok": False,
                       "error_type": "SpecificationError", "error": "nope"}

    def test_error_response_tolerates_non_dict_payloads(self):
        assert error_response("garbage", "X", "y")["id"] is None
