"""The content-addressed result store: durability and skeptical reads."""

import json

import pytest

from repro._telemetry import clear_events, event_info
from repro.batch.jobs import BatchJob, JobResult
from repro.resilience.faults import FaultPlan, FaultSpec, active_plan
from repro.resilience.journal import spec_fingerprint
from repro.serve.store import STORE_VERSION, ResultStore

JOB = BatchJob(arch="grid", n_qubits=8, method="greedy")
FP = spec_fingerprint(JOB)


def ok_result(depth=3):
    return JobResult(job=JOB, ok=True, wall_time_s=0.25,
                     record={"depth": depth, "cx": 7},
                     cache={"pattern": {"hits": 1, "misses": 2}})


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get_round_trip_is_exact(self, store):
        result = ok_result()
        assert store.put(FP, JOB, result) is True
        loaded = store.get_result(JOB, FP)
        assert loaded is not None
        assert json.dumps(loaded.to_json(), sort_keys=True) \
            == json.dumps(result.to_json(), sort_keys=True)

    def test_entries_are_sharded_by_fingerprint_prefix(self, store):
        store.put(FP, JOB, ok_result())
        path = store.path_for(FP)
        assert path.exists()
        assert path.parent.name == FP[:2]

    def test_failed_results_are_refused(self, store):
        failed = JobResult(job=JOB, ok=False, error="boom",
                           error_type="CompilationError")
        assert store.put(FP, JOB, failed) is False
        assert store.get(FP) is None
        assert store.count_entries() == 0

    def test_missing_entry_is_a_quiet_miss(self, store):
        assert store.get("0" * 64) is None
        assert store.get_result(JOB, "0" * 64) is None


class TestSkepticalReads:
    def test_truncated_json_degrades_to_a_counted_miss(self, store):
        store.put(FP, JOB, ok_result())
        path = store.path_for(FP)
        path.write_bytes(path.read_bytes()[:20])
        clear_events()
        assert store.get(FP) is None
        assert event_info().get("serve.store_corrupt") == 1

    def test_version_skew_degrades_to_a_miss(self, store):
        store.put(FP, JOB, ok_result())
        path = store.path_for(FP)
        doc = json.loads(path.read_bytes())
        doc["version"] = STORE_VERSION + 1
        path.write_text(json.dumps(doc))
        assert store.get(FP) is None

    def test_fingerprint_mismatch_degrades_to_a_miss(self, store):
        # An entry renamed (or hard-linked) to the wrong address must
        # never be served for it.
        store.put(FP, JOB, ok_result())
        other = "ab" + "0" * 62
        target = store.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(store.path_for(FP).read_bytes())
        assert store.get(other) is None

    def test_corruption_heals_on_the_next_put(self, store):
        store.put(FP, JOB, ok_result())
        store.path_for(FP).write_text("{garbage")
        assert store.get(FP) is None
        store.put(FP, JOB, ok_result())
        assert store.get_result(JOB, FP) is not None


class TestCrashRecovery:
    PLAN = [FaultSpec(site="serve.store_write", action="raise",
                      error="runtime")]

    def test_fault_mid_publish_leaves_a_recoverable_store(self, store):
        # The serve.store_write site fires *between* the temp-file fsync
        # and the atomic rename — the narrowest crash window.
        with active_plan(FaultPlan(self.PLAN)):
            with pytest.raises(RuntimeError, match="injected"):
                store.put(FP, JOB, ok_result())
        assert store.get(FP) is None
        assert store.count_entries() == 0
        # The orphaned temp file is swept, then a clean retry publishes.
        assert store.sweep_temp_files() == 1
        assert store.put(FP, JOB, ok_result()) is True
        assert store.get_result(JOB, FP) is not None

    def test_sweep_ignores_published_entries(self, store):
        store.put(FP, JOB, ok_result())
        assert store.sweep_temp_files() == 0
        assert store.count_entries() == 1


class TestInventory:
    def test_iter_count_and_stats(self, store):
        assert store.count_entries() == 0
        store.put(FP, JOB, ok_result())
        assert list(store.iter_fingerprints()) == [FP]
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == store.path_for(FP).stat().st_size

    def test_empty_store_is_not_falsy(self, store):
        # `if store` guards mean "is a store configured"; an empty store
        # silently disabling itself was a real bug.
        assert bool(store) is True
