"""End-to-end daemon tests over the stdin-JSONL framing.

Each test drives a real ``python -m repro serve --stdio`` subprocess:
requests go in as JSONL on stdin, responses come back on stdout
(correlated by ``id`` — identical in-flight requests dedupe, so order
is not guaranteed), and the banner/stats go to stderr.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.resilience.faults import ENV_VAR, FaultPlan, FaultSpec

REPO_ROOT = Path(__file__).resolve().parents[2]

COMPILE = {"op": "compile", "arch": "grid", "qubits": 8,
           "method": "greedy", "seed": 0}


def run_daemon(tmp_path, requests, fault_env=None, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop(ENV_VAR, None)
    if fault_env is not None:
        env[ENV_VAR] = fault_env
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--stdio",
         "--store", str(tmp_path / "store"),
         "--executor", "thread", "--workers", "2"],
        input="".join(json.dumps(r) + "\n" for r in requests),
        env=env, cwd=tmp_path, capture_output=True, text=True,
        timeout=timeout)
    responses = {}
    for line in proc.stdout.splitlines():
        doc = json.loads(line)
        responses[doc.get("id")] = doc
    return proc, responses


class TestStdioEndToEnd:
    def test_cold_then_store_across_daemon_restarts(self, tmp_path):
        requests = [{**COMPILE, "id": 1}, {"op": "stats", "id": 2},
                    {"op": "shutdown", "id": 3}]

        proc1, cold = run_daemon(tmp_path, requests)
        assert proc1.returncode == 0, proc1.stderr
        assert cold[1]["ok"] and cold[1]["served_from"] == "compiled"
        assert cold[3] == {"id": 3, "ok": True, "op": "shutdown"}

        proc2, warm = run_daemon(tmp_path, requests)
        assert proc2.returncode == 0, proc2.stderr
        assert warm[1]["ok"] and warm[1]["served_from"] == "store"
        assert json.dumps(cold[1]["result"], sort_keys=True) \
            == json.dumps(warm[1]["result"], sort_keys=True)
        assert warm[2]["stats"]["store_hits"] == 1
        assert warm[2]["stats"]["store_hit_rate"] == 1.0

    def test_identical_inflight_requests_compile_once(self, tmp_path):
        proc, responses = run_daemon(tmp_path, [
            {**COMPILE, "id": 1}, {**COMPILE, "id": 2},
            {"op": "shutdown", "id": 3}])
        assert proc.returncode == 0, proc.stderr
        served = sorted([responses[1]["served_from"],
                         responses[2]["served_from"]])
        assert served == ["compiled", "inflight"]
        assert json.dumps(responses[1]["result"], sort_keys=True) \
            == json.dumps(responses[2]["result"], sort_keys=True)

    def test_eof_is_a_clean_shutdown(self, tmp_path):
        proc, responses = run_daemon(tmp_path, [{**COMPILE, "id": 1}])
        assert proc.returncode == 0, proc.stderr
        assert responses[1]["ok"]
        assert "serve: shutdown" in proc.stderr

    def test_bad_lines_answer_errors_and_daemon_survives(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio",
             "--no-store", "--executor", "thread", "--workers", "1"],
            input='not json at all\n'
                  + json.dumps({"op": "ping", "id": 1}) + "\n"
                  + json.dumps({"op": "shutdown", "id": 2}) + "\n",
            env=env, cwd=tmp_path, capture_output=True, text=True,
            timeout=60)
        assert proc.returncode == 0, proc.stderr
        docs = [json.loads(line) for line in proc.stdout.splitlines()]
        errors = [d for d in docs if d.get("error_type")]
        assert errors and errors[0]["error_type"] == "JSONDecodeError"
        assert {"id": 1, "ok": True, "op": "ping"} in docs


class TestCrashMidStoreWrite:
    def test_kill_leaves_a_recoverable_store(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="serve.store_write",
                                    action="kill", exit_code=134)])
        proc, _ = run_daemon(tmp_path, [{**COMPILE, "id": 1}],
                             fault_env=plan.to_env())
        assert proc.returncode == 134

        # Crash window: temp file written and fsynced, rename never ran.
        store_root = tmp_path / "store"
        temps = list(store_root.glob("*/*.tmp.*"))
        entries = list(store_root.glob("*/*.json"))
        assert len(temps) == 1 and entries == []

        # A fresh daemon sweeps the orphan, recompiles, publishes.
        proc2, responses = run_daemon(tmp_path, [
            {**COMPILE, "id": 1}, {"op": "shutdown", "id": 2}])
        assert proc2.returncode == 0, proc2.stderr
        assert "swept 1 orphaned temp file(s)" in proc2.stderr
        assert responses[1]["ok"]
        assert responses[1]["served_from"] == "compiled"
        assert list(store_root.glob("*/*.tmp.*")) == []
        assert len(list(store_root.glob("*/*.json"))) == 1

        # ...and the healed entry serves the repeat request.
        proc3, warm = run_daemon(tmp_path, [
            {**COMPILE, "id": 1}, {"op": "shutdown", "id": 2}])
        assert proc3.returncode == 0, proc3.stderr
        assert warm[1]["served_from"] == "store"
