"""CompileService: store hits, in-flight dedupe, failure handling.

A thread-executor pool keeps these tests in-process (fault plans and
telemetry are visible to the workers) and fast (no interpreter spawns).
"""

import asyncio
import json

import pytest

from repro.batch.pool import PersistentPool
from repro.resilience.faults import FaultPlan, FaultSpec, active_plan
from repro.serve.service import CompileService
from repro.serve.store import ResultStore

REQ = {"arch": "grid", "qubits": 8, "method": "greedy", "seed": 0}


@pytest.fixture
def pool():
    with PersistentPool(workers=2, executor="thread") as p:
        yield p


def payload_bytes(response):
    return json.dumps(response["result"], sort_keys=True)


class TestStoreServing:
    def test_repeat_is_served_from_store_without_dispatch(self, pool,
                                                          tmp_path):
        service = CompileService(pool, ResultStore(tmp_path / "store"))

        async def scenario():
            cold = await service.handle({**REQ, "id": 1})
            warm = await service.handle({**REQ, "id": 2})
            return cold, warm

        cold, warm = asyncio.run(scenario())
        assert cold["served_from"] == "compiled" and cold["ok"]
        assert warm["served_from"] == "store" and warm["ok"]
        # Byte-identical payload, and the pool was never touched again.
        assert payload_bytes(cold) == payload_bytes(warm)
        assert pool.submitted == 1
        assert warm["fingerprint"] == cold["fingerprint"]
        assert service.stats.store_hits == 1
        assert service.stats.store_misses == 1

    def test_store_survives_service_restart(self, pool, tmp_path):
        root = tmp_path / "store"
        first = CompileService(pool, ResultStore(root))
        cold = asyncio.run(first.handle(dict(REQ)))
        second = CompileService(pool, ResultStore(root))
        warm = asyncio.run(second.handle(dict(REQ)))
        assert warm["served_from"] == "store"
        assert payload_bytes(cold) == payload_bytes(warm)

    def test_semantically_equal_requests_share_one_entry(self, pool,
                                                         tmp_path):
        service = CompileService(pool, ResultStore(tmp_path / "store"))
        a = {**REQ, "gamma": 0.0}
        b = {**REQ, "gamma": -0.0}
        cold = asyncio.run(service.handle(a))
        warm = asyncio.run(service.handle(b))
        assert cold["fingerprint"] == warm["fingerprint"]
        assert warm["served_from"] == "store"

    def test_failures_are_not_stored(self, pool, tmp_path):
        store = ResultStore(tmp_path / "store")
        service = CompileService(pool, store)
        plan = FaultPlan([FaultSpec(site="batch.job", action="raise",
                                    error="compilation", times=10)])
        with active_plan(plan):
            response = asyncio.run(service.handle(dict(REQ)))
        assert response["ok"] is False
        assert response["served_from"] == "compiled"
        assert response["result"]["error_type"] == "CompilationError"
        assert store.count_entries() == 0
        assert service.stats.compile_failures == 1
        # The failed attempt must not poison later requests.
        retry = asyncio.run(service.handle(dict(REQ)))
        assert retry["ok"] is True
        assert store.count_entries() == 1


class TestInflightDedupe:
    def test_identical_concurrent_requests_execute_once(self, pool):
        service = CompileService(pool, store=None)

        async def scenario():
            return await asyncio.gather(
                service.handle({**REQ, "id": "a"}),
                service.handle({**REQ, "id": "b"}))

        first, second = asyncio.run(scenario())
        assert sorted([first["served_from"], second["served_from"]]) \
            == ["compiled", "inflight"]
        assert payload_bytes(first) == payload_bytes(second)
        assert pool.submitted == 1
        assert service.stats.inflight_dedupe == 1
        assert not service._inflight  # leader cleaned up after itself

    def test_different_requests_do_not_dedupe(self, pool):
        service = CompileService(pool, store=None)

        async def scenario():
            return await asyncio.gather(
                service.handle({**REQ, "seed": 0}),
                service.handle({**REQ, "seed": 1}))

        first, second = asyncio.run(scenario())
        assert {first["served_from"], second["served_from"]} \
            == {"compiled"}
        assert pool.submitted == 2


class TestRequestHandling:
    def test_bad_requests_become_error_envelopes_not_crashes(self, pool):
        service = CompileService(pool, store=None)
        response = asyncio.run(service.handle(
            {"id": 5, "arch": "grid", "qubits": 8, "sede": 3}))
        assert response["ok"] is False
        assert response["id"] == 5
        assert response["error_type"] == "SpecificationError"
        assert service.stats.request_errors == 1
        assert pool.submitted == 0

    def test_ping_and_stats_ops(self, pool):
        service = CompileService(pool, store=None)
        assert asyncio.run(service.handle({"op": "ping", "id": 1})) \
            == {"id": 1, "ok": True, "op": "ping"}
        stats = asyncio.run(service.handle({"op": "stats"}))
        assert stats["ok"] is True
        assert stats["stats"]["requests"] == 2

    def test_stats_payload_shape(self, pool, tmp_path):
        service = CompileService(pool, ResultStore(tmp_path / "store"))
        asyncio.run(service.handle(dict(REQ)))
        payload = service.stats_payload()
        assert payload["compiled"] == 1
        assert payload["store"]["entries"] == 1
        assert payload["pool"]["submitted"] == 1
        assert payload["inflight"] == 0
        assert payload["latency_ms"]["count"] == 1
        assert payload["latency_ms"]["p50"] > 0
        # Warm-pool evidence accumulates per compiled job.
        assert "cache_totals" in payload
