"""CLI tests (direct main() invocation with captured stdout)."""

import pytest

from repro.cli import main


def run_cli(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestCompile:
    def test_basic_compile(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "grid",
                                     "--qubits", "9", "--density", "0.4"])
        assert code == 0
        assert "depth" in out
        assert "method:   hybrid" in out

    def test_method_selection(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "line",
                                     "--qubits", "6", "--method", "ata"])
        assert code == 0
        assert "method:   ata" in out

    def test_baseline_method_resolves_through_registry(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "grid",
                                     "--qubits", "9", "--density", "0.4",
                                     "--method", "sabre"])
        assert code == 0
        assert "method:   sabre" in out
        assert "depth" in out

    def test_unknown_method_exits_2_listing_registry(self, capsys):
        code = main(["compile", "--arch", "grid", "--qubits", "9",
                     "--method", "magic"])
        assert code == 2
        err = capsys.readouterr().err
        assert "magic" in err
        # The message must list every registered method, baselines too.
        for name in ("hybrid", "greedy", "ata", "sabre", "qaim", "2qan",
                     "paulihedral", "olsq", "satmap"):
            assert name in err

    def test_noise_flag_adds_esp(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "grid",
                                     "--qubits", "9", "--noise"])
        assert code == 0
        assert "esp" in out

    def test_qasm_output(self, capsys, tmp_path):
        target = tmp_path / "out.qasm"
        code, out = run_cli(capsys, ["compile", "--arch", "line",
                                     "--qubits", "5", "--qasm", str(target)])
        assert code == 0
        text = target.read_text()
        assert text.splitlines()[0].startswith("//")
        assert "OPENQASM 2.0;" in text


class TestInputValidation:
    @pytest.mark.parametrize("density", ["1.5", "-0.1", "nan"])
    def test_bad_density_rejected_with_message(self, capsys, density):
        with pytest.raises(SystemExit) as excinfo:
            main(["compile", "--density", density])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "density" in err

    def test_zero_qubits_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compile", "--qubits", "0"])
        assert excinfo.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_negative_qubits_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "--qubits", "-4"])

    def test_non_numeric_qubits_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["compile", "--qubits", "many"])
        assert "integer" in capsys.readouterr().err

    def test_batch_unknown_arch_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["batch", "--arch", "grid,torus"])
        assert "torus" in capsys.readouterr().err

    def test_batch_zero_timeout_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "--timeout", "0"])


class TestBatch:
    def test_serial_batch_runs(self, capsys):
        code, out = run_cli(capsys, ["batch", "--arch", "grid,line",
                                     "--qubits", "8", "--count", "2",
                                     "--method", "hybrid,greedy",
                                     "--serial"])
        assert code == 0
        assert "8/8 jobs ok" in out
        assert "cache distance_matrix" in out

    def test_batch_json_report(self, capsys, tmp_path):
        target = tmp_path / "report.json"
        code, out = run_cli(capsys, ["batch", "--arch", "grid",
                                     "--qubits", "8", "--count", "2",
                                     "--serial", "--json", str(target)])
        assert code == 0
        import json
        payload = json.loads(target.read_text())
        assert len(payload["jobs"]) == 2
        assert all(job["ok"] for job in payload["jobs"])

    def test_batch_bad_method_exits_2(self, capsys):
        code = main(["batch", "--method", "magic", "--serial"])
        assert code == 2
        err = capsys.readouterr().err
        assert "magic" in err
        assert "sabre" in err  # registry listing, not a local table

    def test_batch_baseline_method_runs(self, capsys):
        code, out = run_cli(capsys, ["batch", "--arch", "line",
                                     "--qubits", "6", "--count", "2",
                                     "--method", "sabre", "--serial"])
        assert code == 0
        assert "2/2 jobs ok" in out

    def test_telemetry_flag_prints_stages(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "grid",
                                     "--qubits", "9", "--telemetry"])
        assert code == 0
        assert "pass" in out
        assert "stage" in out
        assert "cache" in out


FIXTURES = "tests/lint/fixtures"


class TestLint:
    """``repro lint`` exit codes (0/1/2) and reporter output."""

    def test_clean_file_exits_0(self, capsys):
        code, out = run_cli(capsys, [
            "lint", f"{FIXTURES}/clean.json", "--arch", "line",
            "--problem", f"{FIXTURES}/clean.problem.json"])
        assert code == 0
        assert "clean: no diagnostics" in out

    def test_errors_exit_1_with_code_and_location(self, capsys):
        code, out = run_cli(capsys, [
            "lint", f"{FIXTURES}/rl001.json", "--arch", "line",
            "--problem", f"{FIXTURES}/rl001.problem.json"])
        assert code == 1
        assert "RL001" in out
        assert "op#0" in out
        assert "hint:" in out

    def test_warnings_exit_0_unless_strict(self, capsys):
        argv = ["lint", f"{FIXTURES}/rl020.json", "--arch", "line",
                "--problem", f"{FIXTURES}/rl020.problem.json"]
        code, out = run_cli(capsys, argv)
        assert code == 0
        assert "RL020" in out
        code, _ = run_cli(capsys, argv + ["--strict"])
        assert code == 1

    def test_ignore_drops_the_error(self, capsys):
        code, _ = run_cli(capsys, [
            "lint", f"{FIXTURES}/rl001.json", "--arch", "line",
            "--problem", f"{FIXTURES}/rl001.problem.json",
            "--ignore", "RL001"])
        assert code == 0

    def test_regenerated_problem_from_flags(self, capsys):
        # No --problem: the empty-ops fixture misses every regenerated
        # clique edge, so RL013 errors out.
        code, out = run_cli(capsys, [
            "lint", f"{FIXTURES}/rl013.json", "--arch", "line",
            "--qubits", "6", "--workload", "clique"])
        assert code == 1
        assert "RL013" in out

    def test_missing_problem_and_qubits_exits_2(self, capsys):
        code = main(["lint", f"{FIXTURES}/clean.json", "--arch", "line"])
        assert code == 2
        assert "--problem" in capsys.readouterr().err

    def test_unknown_rule_code_exits_2(self, capsys):
        code = main(["lint", f"{FIXTURES}/clean.json", "--arch", "line",
                     "--qubits", "6", "--select", "RL999"])
        assert code == 2
        assert "RL999" in capsys.readouterr().err

    def test_unreadable_file_exits_2(self, capsys):
        code = main(["lint", "no-such-file.json", "--arch", "line",
                     "--qubits", "6"])
        assert code == 2
        assert "no-such-file.json" in capsys.readouterr().err

    def test_json_reporter_schema(self, capsys):
        import json
        code, out = run_cli(capsys, [
            "lint", f"{FIXTURES}/rl001.json", f"{FIXTURES}/rl012.json",
            "--arch", "line",
            "--problem", f"{FIXTURES}/rl001.problem.json",
            "--format", "json"])
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == 1
        assert payload["totals"]["error"] >= 1
        assert len(payload["files"]) == 2
        first = payload["files"][0]
        assert first["source"].endswith("rl001.json")
        assert first["by_rule"] == {"RL001": 1}
        diagnostic = first["diagnostics"][0]
        assert set(diagnostic) == {"code", "severity", "rule", "message",
                                   "op_index", "cycle", "qubits", "logical",
                                   "layer", "hint"}

    def test_qasm_input(self, capsys, tmp_path):
        # QASM carries no initial mapping, so the linter assumes the
        # trivial one; a hand-laid-out circuit lints clean through it.
        target = tmp_path / "c.qasm"
        target.write_text(
            "OPENQASM 2.0;\n"
            'include "qelib1.inc";\n'
            "qreg q[6];\n"
            "cu1(0.7) q[0],q[1];\n"
            "cu1(0.7) q[1],q[2];\n")
        code, out = run_cli(capsys, [
            "lint", str(target), "--arch", "line",
            "--problem", f"{FIXTURES}/clean.problem.json"])
        assert code == 0, out
        assert "clean: no diagnostics" in out

    def test_batch_lint_flag_aggregates(self, capsys):
        code, out = run_cli(capsys, ["batch", "--arch", "line",
                                     "--qubits", "6", "--count", "2",
                                     "--serial", "--lint"])
        assert code == 0
        assert "lint: 0 error(s)" in out


class TestSolve:
    def test_line_clique_reports_depth_and_counters(self, capsys):
        code, out = run_cli(capsys, ["solve", "--arch", "line",
                                     "--qubits", "4"])
        assert code == 0
        assert "depth:    6" in out  # clique-4 on a line is depth 6
        assert "expanded" in out
        assert "strategy: astar" in out

    def test_idastar_strategy(self, capsys):
        code, out = run_cli(capsys, ["solve", "--arch", "grid",
                                     "--qubits", "6", "--workload",
                                     "biclique", "--strategy", "idastar"])
        assert code == 0
        assert "depth:    5" in out
        assert "strategy: idastar" in out

    def test_json_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "solve.json"
        code, out = run_cli(capsys, ["solve", "--arch", "line",
                                     "--qubits", "4", "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["depth"] == 6
        assert payload["strategy"] == "astar"
        assert payload["nodes_expanded"] > 0

    def test_qasm_output(self, capsys, tmp_path):
        path = tmp_path / "optimal.qasm"
        code, _ = run_cli(capsys, ["solve", "--arch", "line",
                                   "--qubits", "4", "--qasm", str(path)])
        assert code == 0
        assert "OPENQASM 2.0" in path.read_text()

    def test_exhausted_budget_exits_1(self, capsys):
        code = main(["solve", "--arch", "grid", "--qubits", "8",
                     "--workload", "clique", "--max-nodes", "10"])
        assert code == 1
        assert "node budget" in capsys.readouterr().err


class TestOtherCommands:
    def test_compare(self, capsys):
        code, out = run_cli(capsys, ["compare", "--arch", "grid",
                                     "--qubits", "9"])
        assert code == 0
        for method in ("greedy", "ata", "hybrid"):
            assert method in out

    def test_clique(self, capsys):
        code, out = run_cli(capsys, ["clique", "--arch", "grid",
                                     "--qubits", "9"])
        assert code == 0
        assert "clique-9" in out
        assert "per qubit" in out

    def test_info(self, capsys):
        code, out = run_cli(capsys, ["info", "--arch", "heavyhex",
                                     "--qubits", "30"])
        assert code == 0
        assert "kind:      heavyhex" in out
        assert "couplings:" in out

    def test_unknown_arch_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["info", "--arch", "torus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
