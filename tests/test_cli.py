"""CLI tests (direct main() invocation with captured stdout)."""

import pytest

from repro.cli import main


def run_cli(capsys, argv):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestCompile:
    def test_basic_compile(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "grid",
                                     "--qubits", "9", "--density", "0.4"])
        assert code == 0
        assert "depth" in out
        assert "method:   hybrid" in out

    def test_method_selection(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "line",
                                     "--qubits", "6", "--method", "ata"])
        assert code == 0
        assert "method:   ata" in out

    def test_noise_flag_adds_esp(self, capsys):
        code, out = run_cli(capsys, ["compile", "--arch", "grid",
                                     "--qubits", "9", "--noise"])
        assert code == 0
        assert "esp" in out

    def test_qasm_output(self, capsys, tmp_path):
        target = tmp_path / "out.qasm"
        code, out = run_cli(capsys, ["compile", "--arch", "line",
                                     "--qubits", "5", "--qasm", str(target)])
        assert code == 0
        text = target.read_text()
        assert text.splitlines()[0].startswith("//")
        assert "OPENQASM 2.0;" in text


class TestOtherCommands:
    def test_compare(self, capsys):
        code, out = run_cli(capsys, ["compare", "--arch", "grid",
                                     "--qubits", "9"])
        assert code == 0
        for method in ("greedy", "ata", "hybrid"):
            assert method in out

    def test_clique(self, capsys):
        code, out = run_cli(capsys, ["clique", "--arch", "grid",
                                     "--qubits", "9"])
        assert code == 0
        assert "clique-9" in out
        assert "per qubit" in out

    def test_info(self, capsys):
        code, out = run_cli(capsys, ["info", "--arch", "heavyhex",
                                     "--qubits", "30"])
        assert code == 0
        assert "kind:      heavyhex" in out
        assert "couplings:" in out

    def test_unknown_arch_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["info", "--arch", "torus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
