"""Tests for the tolerant scan (``build_context``) and ``lint_circuit``."""

import pytest

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.lint import build_context, lint_circuit

LINE6 = [(i, i + 1) for i in range(5)]


def ctx(circuit, problem_edges, mapping=None, **kwargs):
    return build_context(circuit, LINE6,
                         mapping or Mapping.trivial(circuit.n_qubits),
                         problem_edges, **kwargs)


class TestBuildContext:
    def test_cycles_match_circuit_depth(self):
        circuit = Circuit(6, [Op.cphase(0, 1), Op.cphase(2, 3),
                              Op.swap(1, 2), Op.cphase(0, 1)])
        context = ctx(circuit, [(0, 1), (2, 3), (0, 2)])
        assert context.n_cycles == circuit.depth()
        cycles = [view.cycle for view in context.views]
        assert cycles == [0, 0, 1, 2]

    def test_mapping_tracked_through_swaps(self):
        # swap(1, 2) moves logical 2 next to 0; the cphase then
        # implements logical (0, 2) on physical (0, 1).
        circuit = Circuit(6, [Op.swap(1, 2), Op.cphase(0, 1)])
        context = ctx(circuit, [(0, 2)])
        assert context.views[1].logical_edge == (0, 2)
        assert context.executed == {(0, 2): [1]}
        assert context.final_mapping.physical(2) == 1

    def test_repeated_edge_indexed_in_program_order(self):
        circuit = Circuit(6, [Op.cphase(0, 1), Op.cphase(2, 3),
                              Op.cphase(0, 1)])
        context = ctx(circuit, [(0, 1), (2, 3)])
        assert context.executed[(0, 1)] == [0, 2]

    def test_out_of_range_op_tolerated(self):
        circuit = Circuit.from_ops_unchecked(6, [Op.h(7), Op.cphase(0, 1)])
        context = ctx(circuit, [(0, 1)])
        assert context.views[0].out_of_range == (7,)
        assert context.views[0].malformed
        assert context.has_malformed
        # The well-formed op is still fully analysed.
        assert context.views[1].logical_edge == (0, 1)

    def test_duplicated_qubit_tolerated_and_mapping_preserved(self):
        circuit = Circuit.from_ops_unchecked(
            6, [Op.swap(2, 2), Op.cphase(1, 2)])
        context = ctx(circuit, [(1, 2)])
        assert context.views[0].duplicated == (2,)
        # The corrupt SWAP must not scramble the tracked mapping.
        assert context.views[1].logical_edge == (1, 2)

    def test_spare_occupants_recorded(self):
        circuit = Circuit(6, [Op.cphase(4, 5)])
        context = ctx(circuit, [(0, 1)], mapping=Mapping.trivial(4, 6))
        assert context.views[0].logical == (None, None)
        assert context.views[0].logical_edge is None
        assert context.executed == {}

    def test_cycle_activity(self):
        circuit = Circuit(6, [Op.cphase(0, 1), Op.cphase(2, 3)])
        context = ctx(circuit, [(0, 1), (2, 3)])
        assert context.cycle_active == [4]


class TestLintCircuitSelection:
    def setup_method(self):
        # One RL001 error and one RL013 error.
        self.circuit = Circuit(6, [Op.cphase(0, 2)])
        self.args = (self.circuit, LINE6, Mapping.trivial(6),
                     [(0, 2), (3, 4)])

    def test_all_rules_by_default(self):
        assert lint_circuit(*self.args).codes() == ("RL001", "RL013")

    def test_select_restricts(self):
        report = lint_circuit(*self.args, select=["RL013"])
        assert report.codes() == ("RL013",)

    def test_ignore_drops(self):
        report = lint_circuit(*self.args, ignore=["RL013"])
        assert report.codes() == ("RL001",)

    def test_unknown_code_raises_listing_registry(self):
        with pytest.raises(ValueError, match="RL999"):
            lint_circuit(*self.args, select=["RL999"])
        with pytest.raises(ValueError, match="RL001"):
            lint_circuit(*self.args, ignore=["RL999"])

    def test_diagnostics_sorted_by_op_index(self):
        report = lint_circuit(*self.args)
        indices = [d.op_index for d in report.diagnostics]
        # op-level findings first, circuit-level (None) last
        assert indices == [0, None]
