"""Every registered method's output lints clean (ISSUE 3 acceptance).

All nine methods — the three paper presets and the six baselines — must
produce circuits with **zero error-severity diagnostics** on the four
headline architectures.  Warnings and infos (RL02x quality findings)
are allowed; a correct compiler may still schedule wastefully.
"""

import pytest

from repro.arch import architecture_for
from repro.lint import lint_result
from repro.pipeline.registry import available_methods, get_method
from repro.problems import random_problem_graph

ARCHES = ("line", "grid", "sycamore", "heavyhex")
N_LOGICAL = 8
SEED = 7


def test_registry_lists_the_nine_methods():
    assert set(available_methods()) >= {
        "hybrid", "greedy", "ata", "sabre", "qaim", "2qan",
        "paulihedral", "olsq", "satmap"}


@pytest.mark.parametrize("arch", ARCHES)
@pytest.mark.parametrize("method", sorted(available_methods()))
def test_method_lints_with_zero_errors(arch, method):
    coupling = architecture_for(arch, N_LOGICAL)
    problem = random_problem_graph(N_LOGICAL, 0.35, seed=SEED)
    result = get_method(method).compile(coupling, problem)
    report = lint_result(result, coupling, problem)
    assert report.ok, (
        f"{method} on {arch}: {[d.message for d in report.errors]}")
