"""Every registered method's output lints clean (ISSUE 3 acceptance).

All nine heuristic methods — the three paper presets and the six
baselines — must produce circuits with **zero error-severity
diagnostics** on the four headline architectures.  Warnings and infos
(RL02x quality findings) are allowed; a correct compiler may still
schedule wastefully.

``kind == "exact"`` methods (the depth-optimal solver) are excluded from
the 8-qubit sweep — exhaustive search at that density is not a lint
fixture — and covered on a discovery-scale instance instead.
"""

import pytest

from repro.arch import architecture_for
from repro.lint import lint_result
from repro.pipeline.registry import available_methods, get_method
from repro.problems import clique, random_problem_graph

ARCHES = ("line", "grid", "sycamore", "heavyhex")
N_LOGICAL = 8
SEED = 7

HEURISTIC_METHODS = sorted(
    name for name in available_methods()
    if get_method(name).kind != "exact")


def test_registry_lists_the_nine_methods():
    assert set(available_methods()) >= {
        "hybrid", "greedy", "ata", "sabre", "qaim", "2qan",
        "paulihedral", "olsq", "satmap"}


def test_registry_lists_the_exact_solver():
    assert "optimal" in available_methods()
    assert get_method("optimal").kind == "exact"
    assert get_method("exact") is get_method("optimal")


@pytest.mark.parametrize("arch", ARCHES)
@pytest.mark.parametrize("method", HEURISTIC_METHODS)
def test_method_lints_with_zero_errors(arch, method):
    coupling = architecture_for(arch, N_LOGICAL)
    problem = random_problem_graph(N_LOGICAL, 0.35, seed=SEED)
    result = get_method(method).compile(coupling, problem)
    report = lint_result(result, coupling, problem)
    assert report.ok, (
        f"{method} on {arch}: {[d.message for d in report.errors]}")


@pytest.mark.parametrize("arch", ARCHES)
@pytest.mark.parametrize("method", HEURISTIC_METHODS)
def test_method_p2_program_lints_with_zero_errors(arch, method):
    """The assembled p=2 program lints clean per layer (ISSUE 7)."""
    coupling = architecture_for(arch, N_LOGICAL)
    problem = random_problem_graph(N_LOGICAL, 0.35, seed=SEED)
    result = get_method(method).compile(coupling, problem, layers=2)
    assert result.program is not None and result.program.p == 2
    assert result.program.net_permutation_is_identity
    report = lint_result(result, coupling, problem)
    assert report.ok, (
        f"{method} on {arch}: "
        f"{[(d.layer, d.message) for d in report.errors]}")


def test_optimal_method_lints_with_zero_errors():
    coupling = architecture_for("line", 4)
    problem = clique(4)
    result = get_method("optimal").compile(coupling, problem)
    report = lint_result(result, coupling, problem)
    assert report.ok, [d.message for d in report.errors]
