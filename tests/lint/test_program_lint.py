"""RL03x program rules and the per-layer lint dispatch."""

from dataclasses import replace

import pytest

from repro.arch import architecture_for
from repro.compiler import compile_qaoa
from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.ir.program import (Program, ProgramLayer, ROLE_COST,
                              layer_permutation)
from repro.lint import lint_result
from repro.lint.program import lint_program
from repro.problems import ProblemGraph, random_problem_graph


def _compiled(layers=2, mixer="rx"):
    coupling = architecture_for("grid", 9)
    problem = random_problem_graph(9, 0.35, seed=2)
    result = compile_qaoa(coupling, problem, method="hybrid", gamma=0.4,
                          layers=layers, mixer=mixer)
    return result, coupling, problem


class TestCleanPrograms:
    @pytest.mark.parametrize("mixer", ["rx", "none"])
    def test_p2_program_lints_clean(self, mixer):
        result, coupling, problem = _compiled(layers=2, mixer=mixer)
        report = lint_result(result, coupling, problem)
        assert report.ok, [(d.layer, d.message) for d in report.errors]

    def test_diagnostics_carry_layer_index(self):
        result, coupling, problem = _compiled(layers=3)
        report = lint_result(result, coupling, problem)
        # Any RL02x quality warnings must be attributed to a layer.
        for diagnostic in report.diagnostics:
            assert diagnostic.layer is not None
            assert f"layer {diagnostic.layer}" in diagnostic.location()

    def test_p1_result_keeps_flat_lint(self):
        result, coupling, problem = _compiled(layers=1)
        report = lint_result(result, coupling, problem)
        assert report.ok
        assert all(d.layer is None for d in report.diagnostics)


class TestTamperedPrograms:
    def test_rl030_fires_on_mapping_discontinuity(self):
        result, coupling, problem = _compiled(layers=2, mixer="none")
        program = result.program
        bad = list(program.layers[1].input_log_to_phys)
        bad[0], bad[1] = bad[1], bad[0]
        program.layers[1] = replace(program.layers[1],
                                    input_log_to_phys=tuple(bad))
        report = lint_program(program, coupling.edges, problem.edges,
                              select=["RL030"])
        assert [d.code for d in report.errors] == ["RL030"]
        assert report.errors[0].layer == 1

    def test_rl031_fires_on_recorded_output_drift(self):
        result, coupling, problem = _compiled(layers=1, mixer="none")
        program = result.program
        bad = list(program.layers[0].output_log_to_phys)
        bad[0], bad[1] = bad[1], bad[0]
        program.layers[0] = replace(program.layers[0],
                                    output_log_to_phys=tuple(bad))
        report = lint_program(program, coupling.edges, problem.edges,
                              select=["RL031"])
        assert [d.code for d in report.errors] == ["RL031"]
        assert report.errors[0].layer == 0

    def test_rl032_fires_on_uncancelled_even_program(self):
        # Two *forward* copies of a layer whose permutation is a 3-cycle:
        # provenance is recorded faithfully, but the net permutation does
        # not cancel — exactly the waste RL032 warns about.
        n = 3
        circuit = Circuit.from_ops_unchecked(n, [
            Op.cphase(0, 1, 0.4), Op.swap(0, 1),
            Op.cphase(1, 2, 0.4), Op.swap(1, 2),
        ])
        mapping = Mapping([0, 1, 2], n)
        layers = []
        current = mapping
        for _ in range(2):
            out = layer_permutation(circuit, current)
            layers.append(ProgramLayer(
                role=ROLE_COST, circuit=circuit, param=None,
                input_log_to_phys=tuple(current.log_to_phys),
                output_log_to_phys=tuple(out.log_to_phys)))
            current = out
        program = Program(n, layers, mapping)
        assert program.p == 2 and not program.net_permutation_is_identity
        problem = ProblemGraph(3, [(0, 1), (1, 2)])
        coupling_edges = [(0, 1), (1, 2)]
        report = lint_program(program, coupling_edges, problem.edges,
                              select=["RL032"])
        assert [d.code for d in report.warnings] == ["RL032"]
        assert report.warnings[0].layer == len(program.layers) - 1

    def test_rl032_silent_on_cancelled_program(self):
        result, coupling, problem = _compiled(layers=2)
        report = lint_program(result.program, coupling.edges,
                              problem.edges, select=["RL032"])
        assert not report.diagnostics


class TestProgramTotals:
    def test_expected_totals_cross_check(self):
        result, coupling, problem = _compiled(layers=2)
        program = result.program
        good = lint_program(program, coupling.edges, problem.edges,
                            expected=result.extra["program"])
        assert good.ok
        bad = lint_program(program, coupling.edges, problem.edges,
                           expected={"ops": program.n_ops() + 1,
                                     "swaps": program.swap_count()})
        assert [d.code for d in bad.diagnostics].count("RL021") == 1
