"""Tests for the diagnostic record and report containers."""

from repro.lint import Diagnostic, LintReport
from repro.lint.diagnostics import ERROR, INFO, WARNING


def diag(code="RL001", severity=ERROR, **kwargs):
    return Diagnostic(code=code, severity=severity, rule="test-rule",
                      message="msg", **kwargs)


class TestDiagnostic:
    def test_to_dict_is_plain_json(self):
        d = diag(op_index=3, cycle=1, qubits=(0, 4), logical=(2, 5),
                 hint="fix it")
        payload = d.to_dict()
        assert payload["code"] == "RL001"
        assert payload["severity"] == "error"
        assert payload["op_index"] == 3
        assert payload["qubits"] == [0, 4]
        assert payload["logical"] == [2, 5]
        assert payload["hint"] == "fix it"
        import json
        json.dumps(payload)  # must serialise without custom encoders

    def test_location_with_op(self):
        assert diag(op_index=3, cycle=1,
                    qubits=(0, 4)).location() == "op#3 cycle 1 qubits (0, 4)"

    def test_location_circuit_level(self):
        assert diag().location() == "circuit"

    def test_sort_key_orders_by_op_then_severity(self):
        first = diag(op_index=0, severity=INFO)
        second = diag(op_index=1, severity=ERROR)
        circuit_level = diag(severity=ERROR)
        ordered = sorted([circuit_level, second, first],
                         key=Diagnostic.sort_key)
        assert ordered == [first, second, circuit_level]


class TestLintReport:
    def test_counts_and_partitions(self):
        report = LintReport([diag(severity=ERROR), diag(severity=ERROR),
                             diag(severity=WARNING), diag(severity=INFO)])
        assert report.counts() == {"error": 2, "warning": 1, "info": 1}
        assert len(report.errors) == 2
        assert len(report.warnings) == 1
        assert len(report.infos) == 1
        assert len(report) == 4

    def test_ok_means_no_errors(self):
        assert LintReport([]).ok
        assert LintReport([diag(severity=WARNING)]).ok
        assert not LintReport([diag(severity=ERROR)]).ok

    def test_by_rule_sorted(self):
        report = LintReport([diag(code="RL013"), diag(code="RL001"),
                             diag(code="RL013")])
        assert report.by_rule() == {"RL001": 1, "RL013": 2}
        assert list(report.by_rule()) == ["RL001", "RL013"]
        assert report.codes() == ("RL001", "RL013")

    def test_summary(self):
        assert LintReport([]).summary() == "clean: no diagnostics"
        report = LintReport([diag(severity=ERROR), diag(severity=WARNING)])
        assert report.summary() == "1 error(s), 1 warning(s), 0 info"
