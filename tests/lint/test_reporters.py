"""Tests for the text and JSON reporters."""

import json

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.lint import (JSON_SCHEMA_VERSION, lint_circuit, render_json,
                        render_text)

LINE6 = [(i, i + 1) for i in range(5)]


def sample_report():
    # RL001 at op#0 plus a missing edge (RL013).
    circuit = Circuit(6, [Op.cphase(0, 2)])
    return lint_circuit(circuit, LINE6, Mapping.trivial(6),
                        [(0, 2), (3, 4)])


class TestRenderText:
    def test_header_and_one_line_per_diagnostic(self):
        text = render_text(sample_report(), source="fixture.json")
        lines = text.splitlines()
        assert lines[0] == "fixture.json: 2 error(s), 0 warning(s), 0 info"
        assert lines[1].startswith("  RL001 error   op#0")
        assert any(line.startswith("        hint: ") for line in lines)

    def test_clean_report(self):
        circuit = Circuit(6, [Op.cphase(0, 1)])
        report = lint_circuit(circuit, LINE6, Mapping.trivial(6), [(0, 1)])
        assert render_text(report) == "clean: no diagnostics"


class TestRenderJson:
    def test_schema(self):
        payload = render_json(sample_report(), source="fixture.json")
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["ok"] is False
        assert payload["counts"] == {"error": 2, "warning": 0, "info": 0}
        assert payload["by_rule"] == {"RL001": 1, "RL013": 1}
        assert payload["truncated"] == 0
        assert payload["source"] == "fixture.json"
        codes = [d["code"] for d in payload["diagnostics"]]
        assert codes == ["RL001", "RL013"]
        json.dumps(payload)  # plain JSON end to end

    def test_truncation_keeps_counts_exact(self):
        payload = render_json(sample_report(), max_diagnostics=1)
        assert len(payload["diagnostics"]) == 1
        assert payload["truncated"] == 1
        assert payload["counts"]["error"] == 2  # counts stay exact
