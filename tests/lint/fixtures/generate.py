"""Regenerate the golden lint fixtures in this directory.

Each fixture is a pair of committed JSON files — ``<name>.json`` (a
serialized result or bare circuit document, ``repro.ir.serialize``
format) and ``<name>.problem.json`` (the problem graph to lint against)
— crafted so that exactly one rule family trips, at known op indices.
``tests/lint/test_rules.py`` pins the expected codes and indices;
``tests/test_cli.py`` feeds the same files through ``repro lint``.

Run from the repository root after changing the serialization format::

    PYTHONPATH=src python tests/lint/fixtures/generate.py
"""

import json
import pathlib

from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping
from repro.ir.program import Program, ProgramLayer
from repro.ir.serialize import (FORMAT_VERSION, circuit_to_dict,
                                mapping_to_dict, program_to_dict)

HERE = pathlib.Path(__file__).parent

#: All fixtures assume ``--arch line`` (path coupling) of the circuit's
#: width; 6 qubits unless stated otherwise.
N = 6


def result_doc(circuit, mapping, metrics=None):
    doc = {
        "version": FORMAT_VERSION,
        "method": "fixture",
        "wall_time_s": 0.0,
        "circuit": circuit_to_dict(circuit),
        "initial_mapping": mapping_to_dict(mapping),
        "extra": {},
    }
    if metrics is not None:
        doc["metrics"] = metrics
    return doc


def true_metrics(circuit):
    return {"depth": circuit.depth(), "cx": circuit.cx_count(unify=True),
            "swaps": circuit.swap_count, "ops": len(circuit)}


def problem_doc(n_vertices, edges):
    return {"version": FORMAT_VERSION, "name": "fixture",
            "n_vertices": n_vertices,
            "edges": sorted(list(e) for e in edges)}


def unchecked_circuit_doc(n_qubits, ops):
    """Bare circuit document that may be deliberately malformed."""
    return circuit_to_dict(Circuit.from_ops_unchecked(n_qubits, ops))


def write(name, target, problem):
    (HERE / f"{name}.json").write_text(json.dumps(target, indent=1) + "\n")
    (HERE / f"{name}.problem.json").write_text(
        json.dumps(problem, indent=1) + "\n")


def main():
    # clean: two problem gates on coupled pairs, correct metrics.
    circuit = Circuit(N, [Op.cphase(0, 1, 0.7, tag=(0, 1)),
                          Op.cphase(1, 2, 0.7, tag=(1, 2))])
    write("clean", result_doc(circuit, Mapping.trivial(N),
                              true_metrics(circuit)),
          problem_doc(N, [(0, 1), (1, 2)]))

    # RL001: problem edge (0, 2) executed directly on an uncoupled pair.
    write("rl001", unchecked_circuit_doc(N, [Op.cphase(0, 2)]),
          problem_doc(N, [(0, 2)]))

    # RL002: a SWAP naming the same qubit twice (corrupt producer).
    write("rl002", unchecked_circuit_doc(N, [Op.swap(2, 2)]),
          problem_doc(N, []))

    # RL003: a gate outside the 6-qubit register.
    write("rl003", unchecked_circuit_doc(N, [Op.h(7)]),
          problem_doc(N, []))

    # RL010: only 4 of 6 qubits are mapped; op#1 touches the spares.
    circuit = Circuit(N, [Op.cphase(0, 1), Op.cphase(4, 5)])
    write("rl010", result_doc(circuit, Mapping.trivial(4, N)),
          problem_doc(4, [(0, 1)]))

    # RL011: the executed pair (0, 1) is not a problem edge (also
    # leaves (1, 2) missing -> RL013 rides along).
    write("rl011", unchecked_circuit_doc(N, [Op.cphase(0, 1)]),
          problem_doc(N, [(1, 2)]))

    # RL012: the only problem edge executed twice.
    write("rl012", unchecked_circuit_doc(
        N, [Op.cphase(0, 1), Op.cphase(0, 1)]),
        problem_doc(N, [(0, 1)]))

    # RL013 (capped): an empty circuit against 13 problem edges ->
    # 10 per-edge diagnostics plus one "...and 3 more" summary.
    clique_edges = [(u, v) for u in range(N) for v in range(u + 1, N)]
    write("rl013", unchecked_circuit_doc(N, []),
          problem_doc(N, clique_edges[:13]))

    # RL014: the tag says (1, 2) but the mapping tracks (0, 1).
    write("rl014", unchecked_circuit_doc(
        N, [Op.cphase(0, 1, tag=(1, 2))]),
        problem_doc(N, [(0, 1)]))

    # RL020 (warning, no errors): op#1 cancels op#0; the gate between
    # the swapped qubits still implements its edge (swaps net out).
    write("rl020", unchecked_circuit_doc(
        N, [Op.swap(0, 1), Op.swap(0, 1), Op.cphase(0, 1)]),
        problem_doc(N, [(0, 1)]))

    # RL021 (warning, no errors): recorded depth drifted from the circuit.
    circuit = Circuit(N, [Op.cphase(0, 1)])
    metrics = true_metrics(circuit)
    metrics["depth"] = 99
    write("rl021", result_doc(circuit, Mapping.trivial(N), metrics),
          problem_doc(N, [(0, 1)]))

    # RL022 (info, no errors): ten serial cycles with 1 of 16 mapped
    # qubits busy -> mean idle 15/16 > 85% over >= 8 cycles.
    write("rl022", unchecked_circuit_doc(16, [Op.h(0)] * 10),
          problem_doc(16, []))

    # -- RL03x: layered-program documents (lint_program path) -------------
    # One forward cost layer of the triangle problem on a 3-qubit line:
    # every problem edge exactly once, and the SWAPs leave the 3-cycle
    # layout (2, 0, 1).
    cost_ops = [Op.cphase(0, 1, 0.7), Op.swap(0, 1), Op.cphase(1, 2, 0.7),
                Op.swap(1, 2), Op.cphase(0, 1, 0.7)]
    triangle = problem_doc(3, [(0, 1), (0, 2), (1, 2)])

    def cost_layer(input_l2p, output_l2p):
        return ProgramLayer(role="cost", circuit=Circuit(3, list(cost_ops)),
                            param=0.7, input_log_to_phys=input_l2p,
                            output_log_to_phys=output_l2p)

    # RL030: the mixer wall's recorded input mapping is the initial
    # layout instead of the cost layer's output — a broken provenance
    # chain only the unchecked loader accepts.
    mixer = ProgramLayer(role="mixer",
                         circuit=Circuit(3, [Op.rx(q, 0.6)
                                             for q in range(3)]),
                         param=0.3, input_log_to_phys=(0, 1, 2),
                         output_log_to_phys=(0, 1, 2))
    broken = Program.from_layers_unchecked(
        3, [cost_layer((0, 1, 2), (2, 0, 1)), mixer], Mapping.trivial(3))
    write("rl030", program_to_dict(broken), triangle)

    # RL031: the recorded output mapping claims the layer is
    # permutation-free, but its SWAPs produce (2, 0, 1).
    drifted = Program(3, [cost_layer((0, 1, 2), (0, 1, 2))],
                      Mapping.trivial(3))
    write("rl031", program_to_dict(drifted), triangle)

    # RL032: two *forward* cost layers — provenance all correct (any
    # relabeling of the triangle is still the triangle, so both layers
    # are clean), but the even-depth net permutation (1, 2, 0) never
    # cancelled.
    uncancelled = Program(3, [cost_layer((0, 1, 2), (2, 0, 1)),
                              cost_layer((2, 0, 1), (1, 2, 0))],
                          Mapping.trivial(3))
    write("rl032", program_to_dict(uncancelled), triangle)


if __name__ == "__main__":
    main()
