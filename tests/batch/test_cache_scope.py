"""Thread-scoped cache-delta attribution.

The historic per-compilation cache delta subtracted two process-global
snapshots; under concurrency (thread executor, the serve daemon) the
windows interleave and each request absorbs the other's hits.  A
:class:`CacheDeltaScope` accumulates only events raised on its opening
thread, so attribution is exact by construction — these tests pin that.
"""

import threading

import pytest

from repro._telemetry import (_REGISTRY, CacheCounter, cache_info,
                              measure_cache_delta, register_cache)


@pytest.fixture
def counter():
    """A registered throwaway cache counter, unregistered on teardown."""
    name = "test_scope_cache"
    counter = register_cache(name, CacheCounter(name),
                             size_fn=lambda: 0, clear_fn=lambda: None)
    try:
        yield counter
    finally:
        _REGISTRY.pop(name, None)


class TestScopeSemantics:
    def test_delta_covers_every_registered_cache_with_zeros(self):
        with measure_cache_delta() as scope:
            pass
        delta = scope.delta()
        assert set(delta) == set(cache_info())
        assert all(d == {"hits": 0, "misses": 0} for d in delta.values())

    def test_scope_observes_own_thread_events(self, counter):
        name = counter.name
        with measure_cache_delta() as scope:
            counter.hit()
            counter.miss()
            counter.miss()
        assert scope.delta()[name] == {"hits": 1, "misses": 2}

    def test_events_outside_the_scope_are_not_attributed(self, counter):
        name = counter.name
        counter.hit()
        with measure_cache_delta() as scope:
            pass
        counter.hit()
        assert scope.delta()[name] == {"hits": 0, "misses": 0}

    def test_nested_scopes_both_observe(self, counter):
        name = counter.name
        with measure_cache_delta() as outer:
            counter.miss()
            with measure_cache_delta() as inner:
                counter.hit()
        assert outer.delta()[name] == {"hits": 1, "misses": 1}
        assert inner.delta()[name] == {"hits": 1, "misses": 0}


class TestThreadIsolation:
    def test_other_threads_do_not_pollute_an_open_scope(self, counter):
        name = counter.name
        with measure_cache_delta() as scope:
            other = threading.Thread(target=counter.hit)
            other.start()
            other.join()
            counter.miss()
        # The other thread's hit bumped the global counter but not this
        # scope — exactly the misattribution the old snapshots had.
        assert scope.delta()[name] == {"hits": 0, "misses": 1}

    def test_concurrent_scopes_attribute_exactly(self, counter):
        name = counter.name
        barrier = threading.Barrier(2)
        deltas = {}

        def work(key, hits, misses):
            with measure_cache_delta() as scope:
                barrier.wait()  # both scopes provably open at once
                for _ in range(hits):
                    counter.hit()
                for _ in range(misses):
                    counter.miss()
                barrier.wait()
                deltas[key] = scope.delta()[name]

        threads = [threading.Thread(target=work, args=("a", 3, 1)),
                   threading.Thread(target=work, args=("b", 0, 5))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert deltas["a"] == {"hits": 3, "misses": 1}
        assert deltas["b"] == {"hits": 0, "misses": 5}
