"""Batch-engine lint integration: per-job payloads and aggregation."""

from repro.batch import BatchJob, compile_many
from repro.batch.engine import BatchReport, execute_job
from repro.batch.jobs import JobResult
from repro.compiler.result import CompiledResult
from repro.ir.circuit import Circuit
from repro.ir.gates import Op
from repro.ir.mapping import Mapping


def job(**kwargs):
    kwargs.setdefault("arch", "line")
    kwargs.setdefault("n_qubits", 6)
    return BatchJob(**kwargs)


class TestExecuteJobLint:
    def test_lint_payload_attached_on_success(self):
        result = execute_job(job(lint=True))
        assert result.ok
        assert result.lint is not None
        assert result.lint["version"] == 1
        assert result.lint["ok"] is True
        assert result.lint["counts"]["error"] == 0

    def test_lint_off_by_default(self):
        result = execute_job(job())
        assert result.ok
        assert result.lint is None

    def test_lint_survives_validation_failure(self, monkeypatch):
        # A compiler that drops a problem gate: lint reports RL013,
        # and the payload must survive the validator then rejecting
        # the circuit (lint runs first).
        def broken_compiler(coupling, problem, **kwargs):
            u, v = sorted(problem.edges)[0]
            circuit = Circuit(coupling.n_qubits, [Op.cphase(u, v)])
            return CompiledResult(circuit=circuit,
                                  initial_mapping=Mapping.trivial(
                                      coupling.n_qubits),
                                  method="broken")

        import repro.batch.jobs as jobs_module
        monkeypatch.setattr(jobs_module, "resolve_compiler",
                            lambda name: broken_compiler)
        result = execute_job(job(lint=True, validate=True, density=0.5))
        assert not result.ok
        assert result.error_type == "ValidationError"
        assert result.lint is not None
        assert result.lint["ok"] is False
        assert "RL013" in result.lint["by_rule"]


class TestBatchAggregation:
    def test_compile_many_serial_with_lint(self):
        report = compile_many([job(lint=True, seed=s) for s in (0, 1)],
                              executor="serial")
        assert len(report.ok) == 2
        totals = report.lint_totals()
        assert totals["counts"].get("error", 0) == 0
        assert report.lint_errors == 0
        assert "lint: 0 error(s)" in report.summary()
        payload = report.to_json()
        assert payload["lint_totals"] == totals
        assert all(j["lint"] is not None for j in payload["jobs"])

    def test_summary_omits_lint_line_when_not_requested(self):
        report = compile_many([job()], executor="serial")
        assert "lint:" not in report.summary()

    def test_lint_totals_arithmetic(self):
        def fake(counts, by_rule):
            return JobResult(job=job(), ok=True,
                             lint={"counts": counts, "by_rule": by_rule})

        report = BatchReport(
            results=[
                fake({"error": 2, "warning": 1}, {"RL001": 2, "RL020": 1}),
                fake({"error": 1, "info": 3}, {"RL013": 1, "RL022": 3}),
                JobResult(job=job(), ok=True),  # unlinted job ignored
            ],
            wall_time_s=0.0, workers=1, executor="serial")
        totals = report.lint_totals()
        assert totals["counts"] == {"error": 3, "info": 3, "warning": 1}
        assert totals["by_rule"] == {"RL001": 2, "RL013": 1,
                                     "RL020": 1, "RL022": 3}
        assert report.lint_errors == 3
        assert "lint: 3 error(s), 1 warning(s)" in report.summary()
        assert "RL001x2" in report.summary()
