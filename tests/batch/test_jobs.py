"""Tests for the picklable batch job specifications."""

import pickle

import pytest

from repro.batch import BatchJob, JobResult, resolve_compiler


class TestBatchJobSpec:
    def test_picklable_round_trip(self):
        job = BatchJob(arch="grid", n_qubits=16, density=0.4, seed=3,
                       method="ata", options=(("alpha", 0.7),))
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job

    def test_name_encodes_instance(self):
        job = BatchJob(arch="heavyhex", n_qubits=20, workload="rand",
                       density=0.3, seed=2, method="hybrid")
        assert job.name == "heavyhex/rand-20-0.3-s2/hybrid"

    def test_clique_name_omits_density(self):
        job = BatchJob(arch="grid", n_qubits=9, workload="clique")
        assert "clique-9" in job.name

    def test_label_overrides_name(self):
        assert BatchJob(arch="grid", n_qubits=9, label="mine").name == "mine"

    def test_with_options_merges(self):
        job = BatchJob(arch="grid", n_qubits=9, options=(("alpha", 0.5),))
        updated = job.with_options(max_predictions=4)
        assert dict(updated.options) == {"alpha": 0.5, "max_predictions": 4}

    def test_build_materializes_instance(self):
        coupling, problem, noise = BatchJob(
            arch="grid", n_qubits=9, density=0.4).build()
        assert coupling.n_qubits >= 9
        assert problem.n_vertices == 9
        assert noise is None

    def test_noise_flag_builds_model(self):
        _, _, noise = BatchJob(arch="grid", n_qubits=9,
                               use_noise=True).build()
        assert noise is not None


class TestBatchJobValidation:
    def test_zero_qubits_rejected(self):
        with pytest.raises(ValueError, match="n_qubits"):
            BatchJob(arch="grid", n_qubits=0)

    def test_density_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="density"):
            BatchJob(arch="grid", n_qubits=9, density=1.5)
        with pytest.raises(ValueError, match="density"):
            BatchJob(arch="grid", n_qubits=9, density=-0.1)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            BatchJob(arch="grid", n_qubits=9, workload="tree")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            BatchJob(arch="grid", n_qubits=9, method="magic")


class TestResolveCompiler:
    def test_framework_methods_resolve(self):
        for method in ("hybrid", "greedy", "ata"):
            assert callable(resolve_compiler(method))

    def test_baselines_resolve(self):
        for method in ("qaim", "paulihedral", "2qan", "sabre"):
            assert callable(resolve_compiler(method))

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="magic"):
            resolve_compiler("magic")

    def test_resolved_compiler_runs(self):
        coupling, problem, _ = BatchJob(arch="line", n_qubits=6).build()
        result = resolve_compiler("greedy")(coupling, problem)
        result.validate(coupling, problem)


class TestJobResult:
    def test_failure_summary_names_error(self):
        result = JobResult(job=BatchJob(arch="grid", n_qubits=9), ok=False,
                           error="boom", error_type="RuntimeError")
        assert "FAILED" in result.summary()
        assert "RuntimeError" in result.summary()

    def test_telemetry_shortcut(self):
        result = JobResult(job=BatchJob(arch="grid", n_qubits=9), ok=True,
                           record={"depth": 3, "extra": {"timings": {}}})
        assert result.metrics == {"depth": 3}
        assert result.telemetry == {"timings": {}}
