"""Tests for ``compile_many``: fan-out, caching, timeouts, failure capture."""

import json
import os
import time

import pytest

from repro.batch import (BatchJob, compile_many, default_workers,
                         execute_job, jobs_for)
from repro.batch.cache import clear_caches


def mixed_jobs(n_qubits=12, seeds=(0, 1)):
    """16 mixed jobs: 4 architectures x 2 methods x 2 seeds."""
    return [
        BatchJob(arch=arch, n_qubits=n_qubits, density=0.3, seed=seed,
                 method=method)
        for arch in ("line", "grid", "heavyhex", "sycamore")
        for method in ("hybrid", "greedy")
        for seed in seeds
    ]


class TestSerialEngine:
    def test_all_jobs_succeed_in_order(self):
        jobs = mixed_jobs()
        report = compile_many(jobs, executor="serial")
        assert len(report.results) == 16
        assert [r.job for r in report.results] == jobs
        assert not report.failures
        for result in report.results:
            assert result.record["depth"] > 0
            assert result.record["cx"] > 0

    def test_cache_counters_prove_reuse(self):
        clear_caches()
        report = compile_many(mixed_jobs(), executor="serial")
        totals = report.cache_totals()
        # 4 architectures appear 4x each: first build misses, rest hit.
        assert totals["distance_matrix"]["misses"] == 4
        assert totals["distance_matrix"]["hits"] == 12
        assert totals["pattern"]["hits"] > 0

    def test_failing_job_is_captured_not_fatal(self):
        jobs = mixed_jobs()[:3] + [BatchJob(arch="mumbai", n_qubits=100)]
        report = compile_many(jobs, executor="serial")
        assert len(report.ok) == 3
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.error_type == "ArchitectureError"
        assert "mumbai" in failure.error

    def test_stage_totals_aggregate_timings(self):
        report = compile_many(mixed_jobs()[:4], executor="serial")
        totals = report.stage_totals()
        assert "greedy" in totals
        assert totals["greedy"] >= 0.0

    def test_report_json_round_trips(self):
        jobs = mixed_jobs()[:2] + [BatchJob(arch="mumbai", n_qubits=100)]
        report = compile_many(jobs, executor="serial")
        payload = json.loads(json.dumps(report.to_json()))
        assert len(payload["jobs"]) == 3
        assert payload["jobs"][2]["ok"] is False
        assert "cache_totals" in payload


class TestProcessPool:
    def test_matches_serial_results(self):
        jobs = mixed_jobs()
        serial = compile_many(jobs, executor="serial")
        parallel = compile_many(jobs, workers=4, executor="process")
        assert not parallel.failures
        for s, p in zip(serial.results, parallel.results):
            assert s.job == p.job
            assert s.record["depth"] == p.record["depth"]
            assert s.record["cx"] == p.record["cx"]

    def test_failure_captured_across_processes(self):
        jobs = mixed_jobs()[:4] + [BatchJob(arch="mumbai", n_qubits=100)]
        report = compile_many(jobs, workers=2, executor="process")
        assert len(report.ok) == 4
        assert report.failures[0].error_type == "ArchitectureError"

    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="speedup needs >= 4 CPU cores")
    def test_four_workers_at_least_twice_as_fast(self):
        # The ISSUE 1 acceptance criterion: >= 16 mixed instances, 4
        # workers, >= 2x wall-clock over the serial loop.
        jobs = mixed_jobs(n_qubits=32, seeds=(0, 1))
        clear_caches()
        t0 = time.perf_counter()
        compile_many(jobs, executor="serial")
        serial_s = time.perf_counter() - t0
        clear_caches()
        t0 = time.perf_counter()
        report = compile_many(jobs, workers=4, executor="process")
        parallel_s = time.perf_counter() - t0
        assert not report.failures
        assert serial_s / parallel_s >= 2.0


class TestTimeout:
    def test_timeout_surfaces_as_job_failure(self):
        if not hasattr(__import__("signal"), "SIGALRM"):
            pytest.skip("needs SIGALRM")
        # A 48-qubit hybrid compile takes far longer than 1 ms.
        job = BatchJob(arch="heavyhex", n_qubits=48, density=0.5)
        result = execute_job(job, timeout_s=0.001)
        assert not result.ok
        assert result.error_type == "JobTimeoutError"

    def test_generous_timeout_does_not_fire(self):
        job = BatchJob(arch="line", n_qubits=6)
        result = execute_job(job, timeout_s=60.0)
        assert result.ok

    def test_unenforceable_timeout_warns_once_and_counts(self, monkeypatch):
        from repro._telemetry import clear_events, event_info
        from repro.batch import engine

        monkeypatch.setattr(engine, "_alarm_supported", lambda: False)
        monkeypatch.setattr(engine, "_timeout_warning_emitted", False)
        clear_events()
        jobs = [BatchJob(arch="line", n_qubits=4, seed=seed)
                for seed in (0, 1)]
        with pytest.warns(RuntimeWarning, match="SIGALRM"):
            report = compile_many(jobs, timeout_s=5.0, executor="serial")
        assert not report.failures
        assert not report.timeout_enforced
        assert "NOT enforced" in report.summary()
        # One telemetry event per unprotected job, one warning total.
        assert event_info().get("batch.timeout_unavailable") == 2
        import warnings

        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            compile_many(jobs[:1], timeout_s=5.0, executor="serial")
        assert not [w for w in captured
                    if issubclass(w.category, RuntimeWarning)]

    def test_reset_timeout_warning_rearms_the_warning(self, monkeypatch):
        import warnings

        from repro.batch import engine, reset_timeout_warning

        monkeypatch.setattr(engine, "_alarm_supported", lambda: False)
        job = BatchJob(arch="line", n_qubits=4)
        with pytest.warns(RuntimeWarning, match="SIGALRM"):
            reset_timeout_warning()
            compile_many([job], timeout_s=5.0, executor="serial")
        with warnings.catch_warnings(record=True) as captured:
            warnings.simplefilter("always")
            compile_many([job], timeout_s=5.0, executor="serial")
        assert not [w for w in captured
                    if issubclass(w.category, RuntimeWarning)]
        reset_timeout_warning()
        with pytest.warns(RuntimeWarning, match="SIGALRM"):
            compile_many([job], timeout_s=5.0, executor="serial")

    def test_enforced_timeout_emits_no_degradation_note(self):
        job = BatchJob(arch="line", n_qubits=4)
        report = compile_many([job], timeout_s=60.0, executor="serial")
        if report.timeout_enforced:
            assert "NOT enforced" not in report.summary()


class TestHelpers:
    def test_jobs_for_cartesian_product(self):
        jobs = jobs_for(["grid", "line"], 9, methods=("hybrid", "ata"),
                        seeds=(0, 1, 2))
        assert len(jobs) == 2 * 2 * 3
        assert len({job.name for job in jobs}) == len(jobs)

    def test_default_workers_bounded(self):
        assert default_workers(0) == 1
        assert 1 <= default_workers(100) <= (os.cpu_count() or 1)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            compile_many([], executor="gpu")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            compile_many([BatchJob(arch="line", n_qubits=4)], workers=-1)
