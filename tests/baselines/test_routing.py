"""Tests for the shared baseline routing helpers."""


from repro.arch import grid, line
from repro.baselines.routing import (mapping_cost, matching_layers,
                                     route_and_execute)
from repro.ir.circuit import Circuit
from repro.ir.gates import CPHASE
from repro.ir.mapping import Mapping
from repro.ir.validate import validate_compiled
from repro.problems import ProblemGraph, clique


class TestRouteAndExecute:
    def test_adjacent_pair_direct(self):
        coupling = line(3)
        circuit = Circuit(3)
        mapping = Mapping.trivial(3)
        route_and_execute(coupling, circuit, mapping, (0, 1))
        assert circuit.swap_count == 0
        assert circuit.cphase_count == 1

    def test_distant_pair_routes(self):
        coupling = line(5)
        circuit = Circuit(5)
        mapping = Mapping.trivial(5)
        route_and_execute(coupling, circuit, mapping, (0, 4))
        assert circuit.swap_count == 3
        validate_compiled(circuit, coupling.edges, Mapping.trivial(5),
                          [(0, 4)])

    def test_gamma_and_tag(self):
        coupling = line(3)
        circuit = Circuit(3)
        mapping = Mapping.trivial(3)
        route_and_execute(coupling, circuit, mapping, (0, 2), gamma=0.3)
        gate = [op for op in circuit if op.kind == CPHASE][0]
        assert gate.param == 0.3
        assert gate.tag == (0, 2)

    def test_sequence_of_routes_stays_consistent(self):
        coupling = grid(3, 3)
        circuit = Circuit(9)
        mapping = Mapping.trivial(9)
        pairs = [(0, 8), (1, 7), (2, 6)]
        for pair in pairs:
            route_and_execute(coupling, circuit, mapping, pair)
        validate_compiled(circuit, coupling.edges, Mapping.trivial(9),
                          pairs)


class TestMappingCost:
    def test_trivial_line_cost(self):
        coupling = line(4)
        problem = ProblemGraph(4, [(0, 3), (1, 2)])
        cost = mapping_cost(coupling, Mapping.trivial(4), problem)
        assert cost == 3 + 1

    def test_zero_for_empty_problem(self):
        coupling = line(3)
        problem = ProblemGraph(3, [])
        assert mapping_cost(coupling, Mapping.trivial(3), problem) == 0


class TestMatchingLayersExtra:
    def test_clique_layer_count(self):
        # Edge colouring of K_n needs n-1 (even n) or n (odd n) matchings;
        # the greedy layering should stay within 2x of that bound.
        for n in (4, 5, 6, 7):
            layers = matching_layers(clique(n))
            optimal = n - 1 if n % 2 == 0 else n
            assert len(layers) <= 2 * optimal

    def test_empty_problem(self):
        assert matching_layers(ProblemGraph(3, [])) == []
