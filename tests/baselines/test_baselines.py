"""Correctness and behavioural tests for all baseline compilers."""

import pytest

from repro.arch import grid, heavyhex, line, sycamore
from repro.baselines import (compile_olsq, compile_paulihedral, compile_qaim,
                             compile_satmap, compile_twoqan,
                             mapping_cost, matching_layers,
                             quadratic_initial_mapping)
from repro.compiler import compile_qaoa
from repro.problems import (ProblemGraph, clique, random_problem_graph)

BASELINES = {
    "paulihedral": compile_paulihedral,
    "qaim": compile_qaim,
    "2qan": compile_twoqan,
    "satmap": compile_satmap,
}


class TestAllBaselinesValidate:
    @pytest.mark.parametrize("name", BASELINES)
    @pytest.mark.parametrize("factory", [
        lambda: line(10), lambda: grid(4, 4), lambda: sycamore(3, 4),
        lambda: heavyhex(2, 6)])
    def test_random_graph_validates(self, name, factory):
        coupling = factory()
        n = min(coupling.n_qubits, 10)
        problem = random_problem_graph(n, 0.35, seed=4)
        result = BASELINES[name](coupling, problem)
        result.validate(coupling, problem)
        assert result.method == name

    @pytest.mark.parametrize("name", BASELINES)
    def test_clique_validates(self, name):
        coupling = grid(3, 3)
        problem = clique(9)
        result = BASELINES[name](coupling, problem)
        result.validate(coupling, problem)

    @pytest.mark.parametrize("name", BASELINES)
    def test_empty_problem(self, name):
        coupling = line(4)
        problem = ProblemGraph(3, [])
        result = BASELINES[name](coupling, problem)
        assert len(result.circuit) == 0


class TestOlsq:
    def test_small_exact_instance(self):
        coupling = grid(2, 2)
        problem = clique(4)
        result = compile_olsq(coupling, problem)
        result.validate(coupling, problem)
        assert result.extra["exact"] is True

    def test_beam_fallback(self):
        coupling = grid(3, 3)
        problem = random_problem_graph(9, 0.4, seed=1)
        result = compile_olsq(coupling, problem, exact_node_budget=50)
        result.validate(coupling, problem)
        assert result.extra["exact"] is False

    def test_exact_matches_solver_depth_on_tiny(self):
        from repro.solver import solve_depth_optimal
        coupling = line(4)
        problem = clique(4)
        result = compile_olsq(coupling, problem)
        optimal = solve_depth_optimal(coupling, sorted(problem.edges))
        assert result.circuit.depth() <= optimal.depth
        assert result.extra["exact"]


class TestTwoQan:
    def test_quadratic_mapping_improves_cost(self):
        coupling = grid(4, 4)
        problem = random_problem_graph(12, 0.3, seed=2)
        from repro.compiler.mapping import degree_placement
        base = mapping_cost(coupling, degree_placement(coupling, problem),
                            problem)
        improved = mapping_cost(
            coupling, quadratic_initial_mapping(coupling, problem), problem)
        assert improved <= base

    def test_unification_lowers_gate_count(self):
        # 2QAN fuses routing SWAPs with pending gates, so on a dense
        # problem it beats the plain greedy router on CX count.
        coupling = grid(3, 3)
        problem = clique(9)
        twoqan = compile_twoqan(coupling, problem)
        plain = compile_qaoa(coupling, problem, method="greedy")
        assert twoqan.gate_count <= plain.gate_count


class TestBehaviouralOrdering:
    """The relative quality ordering the paper reports must hold."""

    def test_ours_beats_paulihedral_on_dense(self):
        coupling = grid(5, 5)
        problem = random_problem_graph(25, 0.4, seed=3)
        ours = compile_qaoa(coupling, problem, method="hybrid")
        pauli = compile_paulihedral(coupling, problem)
        assert ours.depth() < pauli.depth()
        assert ours.gate_count < pauli.gate_count

    def test_ours_beats_qaim_on_dense(self):
        coupling = grid(5, 5)
        problem = random_problem_graph(25, 0.4, seed=3)
        ours = compile_qaoa(coupling, problem, method="hybrid")
        qaim = compile_qaim(coupling, problem)
        assert ours.depth() <= qaim.depth()

    def test_qaim_beats_paulihedral_depth(self):
        # Commutativity exploitation should pay off on dense graphs.
        coupling = grid(5, 5)
        problem = random_problem_graph(25, 0.5, seed=6)
        qaim = compile_qaim(coupling, problem)
        pauli = compile_paulihedral(coupling, problem)
        assert qaim.depth() < pauli.depth()


class TestMatchingLayers:
    def test_layers_partition_edges(self):
        problem = random_problem_graph(10, 0.4, seed=0)
        layers = matching_layers(problem)
        seen = [e for layer in layers for e in layer]
        assert sorted(seen) == sorted(problem.edges)

    def test_layers_are_matchings(self):
        problem = clique(6)
        for layer in matching_layers(problem):
            qubits = [q for e in layer for q in e]
            assert len(qubits) == len(set(qubits))
