"""Tests for the SABRE-like fixed-order router."""

import pytest

from repro.arch import grid, heavyhex, line
from repro.baselines import compile_sabre
from repro.compiler import compile_qaoa
from repro.problems import ProblemGraph, clique, random_problem_graph


class TestCorrectness:
    @pytest.mark.parametrize("factory", [
        lambda: line(8), lambda: grid(3, 3), lambda: heavyhex(2, 6)])
    def test_random_graph_validates(self, factory):
        coupling = factory()
        n = min(coupling.n_qubits, 8)
        problem = random_problem_graph(n, 0.4, seed=9)
        result = compile_sabre(coupling, problem)
        result.validate(coupling, problem)
        assert result.method == "sabre"

    def test_clique_validates(self, factory=lambda: grid(3, 3)):
        coupling = factory()
        problem = clique(9)
        result = compile_sabre(coupling, problem)
        result.validate(coupling, problem)

    def test_empty_problem(self):
        result = compile_sabre(line(3), ProblemGraph(3, []))
        assert len(result.circuit) == 0

    def test_already_adjacent_gates_need_no_swaps(self):
        coupling = line(4)
        problem = ProblemGraph(4, [(0, 1), (2, 3)])
        from repro.compiler.mapping import trivial_placement
        result = compile_sabre(coupling, problem,
                               initial_mapping=trivial_placement(
                                   coupling, problem))
        assert result.swap_count == 0


class TestCommutativityGap:
    def test_ours_beats_sabre_on_dense_graphs(self):
        """The Section 1 motivation: exploiting permutability wins."""
        coupling = grid(4, 4)
        problem = random_problem_graph(16, 0.5, seed=1)
        ours = compile_qaoa(coupling, problem, method="hybrid")
        sabre = compile_sabre(coupling, problem)
        assert ours.depth() <= sabre.depth()
        assert ours.gate_count <= sabre.gate_count * 1.1
