"""Smoke tests for the package-level public API."""

import repro


def test_version():
    assert repro.__version__


def test_top_level_exports():
    for name in ("Circuit", "Mapping", "Op", "validate_compiled",
                 "compile_qaoa", "ReproError", "ValidationError"):
        assert hasattr(repro, name), name


def test_top_level_compile_qaoa_lazy_wrapper():
    from repro.arch import line
    from repro.problems import clique

    result = repro.compile_qaoa(line(4), clique(4))
    assert result.depth() > 0


def test_exception_hierarchy():
    assert issubclass(repro.ValidationError, repro.ReproError)
    assert issubclass(repro.ArchitectureError, repro.ReproError)
    assert issubclass(repro.CompilationError, repro.ReproError)
    assert issubclass(repro.SolverError, repro.ReproError)


def test_subpackages_importable():
    import repro.analysis
    import repro.arch
    import repro.ata
    import repro.baselines
    import repro.compiler
    import repro.ir
    import repro.problems
    import repro.sim
    import repro.solver
