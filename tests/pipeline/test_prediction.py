"""Direct unit tests for snapshot sampling (moved from framework._sample)."""

from repro.pipeline.prediction import sample_snapshots

SNAPSHOTS = list(range(10))


class TestSampleSnapshots:
    def test_one_keeps_only_pure_ata_endpoint(self):
        # max_predictions == 1 used to ZeroDivisionError in the general
        # formula; it must keep exactly the first (pure-ATA) snapshot.
        assert sample_snapshots(SNAPSHOTS, 1) == [0]

    def test_two_keeps_both_endpoints(self):
        assert sample_snapshots(SNAPSHOTS, 2) == [0, 9]

    def test_exact_length_returns_everything(self):
        assert sample_snapshots(SNAPSHOTS, len(SNAPSHOTS)) == SNAPSHOTS

    def test_more_than_length_returns_everything(self):
        assert sample_snapshots(SNAPSHOTS, len(SNAPSHOTS) + 5) == SNAPSHOTS

    def test_sample_is_evenly_spaced_and_sorted(self):
        sampled = sample_snapshots(list(range(100)), 5)
        assert sampled[0] == 0 and sampled[-1] == 99
        assert sampled == sorted(sampled)
        assert len(sampled) == 5
        gaps = [b - a for a, b in zip(sampled, sampled[1:])]
        assert max(gaps) - min(gaps) <= 1

    def test_no_duplicates_on_tiny_inputs(self):
        for k in range(1, 6):
            sampled = sample_snapshots([0, 1, 2], k)
            assert len(sampled) == len(set(sampled))

    def test_framework_alias_still_importable(self):
        # Back-compat: the pre-pipeline private helper keeps working.
        from repro.compiler.framework import _sample

        assert _sample(SNAPSHOTS, 3) == sample_snapshots(SNAPSHOTS, 3)
